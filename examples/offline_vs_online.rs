//! Off-line optimal versus the on-line heuristics of §4.3.2 on one random
//! instance: how close do the on-line algorithms get to the optimal
//! max-stretch, and what does the System-(2) refinement buy on sum-stretch?
//!
//! ```text
//! cargo run --release -p stretch-core --example offline_vs_online
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use stretch_core::offline::{optimal_max_stretch, OfflineBackend};
use stretch_core::{OfflineScheduler, OnlineScheduler, Scheduler};
use stretch_platform::{PlatformConfig, PlatformGenerator};
use stretch_workload::{WorkloadConfig, WorkloadGenerator};

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);
    let platform = PlatformGenerator::new(PlatformConfig::new(3, 3, 0.6)).generate(&mut rng);
    // Size the arrival window so that about 20 requests arrive at density 2.
    let probe = WorkloadGenerator::new(WorkloadConfig {
        density: 2.0,
        window: 1.0,
        scan_fraction: 1.0,
        ..Default::default()
    });
    let window = (20.0 / probe.expected_job_count(&platform).max(1e-9)).max(1e-3);
    let generator = WorkloadGenerator::new(WorkloadConfig {
        density: 2.0,
        window,
        scan_fraction: 1.0,
        ..Default::default()
    });
    let instance = generator.generate_instance(platform, &mut rng);
    println!("Instance with {} jobs\n", instance.num_jobs());

    // The two off-line back-ends (flow bisection vs the paper's System-(1)
    // LP) must agree on the optimal max-stretch.
    let flow = optimal_max_stretch(&instance, OfflineBackend::Flow).expect("feasible");
    let lp = optimal_max_stretch(&instance, OfflineBackend::Lp).expect("feasible");
    println!(
        "Optimal max-stretch (F/W units): flow back-end {:.6}, LP back-end {:.6}\n",
        flow.stretch, lp.stretch
    );

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(OfflineScheduler::new()),
        Box::new(OnlineScheduler::online()),
        Box::new(OnlineScheduler::online_edf()),
        Box::new(OnlineScheduler::online_egdf()),
        Box::new(OnlineScheduler::non_optimized()),
    ];
    let offline_reference = OfflineScheduler::new()
        .schedule(&instance)
        .expect("schedulable")
        .metrics
        .max_stretch;

    println!(
        "{:<14} {:>14} {:>18} {:>14}",
        "scheduler", "max-stretch", "degradation vs opt", "sum-stretch"
    );
    for scheduler in &schedulers {
        let result = scheduler.schedule(&instance).expect("schedulable");
        println!(
            "{:<14} {:>14.3} {:>18.4} {:>14.3}",
            result.scheduler,
            result.metrics.max_stretch,
            result.metrics.max_stretch / offline_reference,
            result.metrics.sum_stretch
        );
    }
    println!(
        "\nThe Online / Online-EDF variants track the optimal max-stretch closely; the \
         non-optimized variant (no System-(2) refinement) pays for it in sum-stretch, which is \
         the effect Figure 3 quantifies."
    );
}
