//! A miniature GriPPS campaign: generate a random replicated-databank
//! platform and a Poisson flow of requests (as in §5.1 of the paper), run the
//! main schedulers and print a Table-1-style comparison.
//!
//! ```text
//! cargo run --release -p stretch-core --example gripps_campaign
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use stretch_core::{
    Bender98Scheduler, ListScheduler, MctScheduler, OfflineScheduler, OnlineScheduler, Scheduler,
};
use stretch_platform::{PlatformConfig, PlatformGenerator};
use stretch_workload::{WorkloadConfig, WorkloadGenerator};

fn main() {
    let mut rng = SmallRng::seed_from_u64(2006);

    // 3 sites x 10 processors, 3 databanks, 60 % availability (a typical
    // point of the paper's experimental grid).
    let platform = PlatformGenerator::new(PlatformConfig::new(3, 3, 0.6)).generate(&mut rng);
    // Moderate load (density 1.5); the window is sized so that roughly 25
    // requests arrive, keeping the example fast whatever the random databank
    // sizes turn out to be.
    let probe = WorkloadGenerator::new(WorkloadConfig {
        density: 1.5,
        window: 1.0,
        scan_fraction: 1.0,
        ..Default::default()
    });
    let window = (25.0 / probe.expected_job_count(&platform).max(1e-9)).max(1e-3);
    let generator = WorkloadGenerator::new(WorkloadConfig {
        density: 1.5,
        window,
        scan_fraction: 1.0,
        ..Default::default()
    });
    let instance = generator.generate_instance(platform, &mut rng);
    println!(
        "Generated {} requests against {} databanks on {} processors\n",
        instance.num_jobs(),
        instance.platform.num_databanks(),
        instance.platform.num_processors()
    );

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(OfflineScheduler::new()),
        Box::new(OnlineScheduler::online()),
        Box::new(OnlineScheduler::online_edf()),
        Box::new(OnlineScheduler::online_egdf()),
        Box::new(Bender98Scheduler::new()),
        Box::new(ListScheduler::swrpt()),
        Box::new(ListScheduler::srpt()),
        Box::new(ListScheduler::spt()),
        Box::new(ListScheduler::bender02()),
        Box::new(MctScheduler::mct_div()),
        Box::new(MctScheduler::mct()),
    ];

    let mut rows = Vec::new();
    for scheduler in &schedulers {
        let start = std::time::Instant::now();
        let result = scheduler.schedule(&instance).expect("schedulable");
        rows.push((
            result.scheduler.clone(),
            result.metrics.max_stretch,
            result.metrics.sum_stretch,
            start.elapsed().as_secs_f64(),
        ));
    }

    let best_max = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    let best_sum = rows.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);
    println!(
        "{:<14} {:>14} {:>14} {:>14} {:>12}",
        "scheduler", "max-stretch", "vs best", "sum-stretch/best", "time (s)"
    );
    for (name, max_stretch, sum_stretch, time) in rows {
        println!(
            "{:<14} {:>14.3} {:>14.3} {:>14.3} {:>12.4}",
            name,
            max_stretch,
            max_stretch / best_max,
            sum_stretch / best_sum,
            time
        );
    }
    println!(
        "\n(The Offline row is the optimal max-stretch; MCT is the production GriPPS policy.)"
    );
}
