//! Quickstart: build a tiny GriPPS-like platform, submit a handful of motif
//! comparison requests, and compare two schedulers on the stretch metrics.
//!
//! ```text
//! cargo run --release -p stretch-core --example quickstart
//! ```

use stretch_core::{ListScheduler, OnlineScheduler, Scheduler};
use stretch_platform::{Cluster, Databank, Platform, Processor};
use stretch_workload::{Instance, Job};

fn main() {
    // A platform with two sites: a slow one hosting only databank 0, a fast
    // one hosting both databanks.
    let clusters = vec![
        Cluster {
            id: 0,
            speed: 10.0,
            processors: vec![0, 1],
            hosted_databanks: vec![0],
        },
        Cluster {
            id: 1,
            speed: 25.0,
            processors: vec![2, 3],
            hosted_databanks: vec![0, 1],
        },
    ];
    let processors = vec![
        Processor::new(0, 0, 10.0),
        Processor::new(1, 0, 10.0),
        Processor::new(2, 1, 25.0),
        Processor::new(3, 1, 25.0),
    ];
    let databanks = vec![
        Databank::new(0, "swissprot-lite", 150.0),
        Databank::new(1, "trembl-lite", 400.0),
    ];
    let platform = Platform::new(clusters, processors, databanks);

    // A flow of five requests: job sizes are the databank sizes (a motif is
    // matched against the whole databank), release dates a few seconds apart.
    let jobs = vec![
        Job::new(0, 0.0, 150.0, 0),
        Job::new(1, 1.0, 400.0, 1),
        Job::new(2, 2.5, 150.0, 0),
        Job::new(3, 4.0, 400.0, 1),
        Job::new(4, 6.0, 150.0, 0),
    ];
    let instance = Instance::new(platform, jobs);

    println!(
        "Instance: {} jobs, {} processors, aggregate speed {:.0} MB/s\n",
        instance.num_jobs(),
        instance.platform.num_processors(),
        instance.platform.aggregate_speed()
    );

    for scheduler in [
        Box::new(ListScheduler::srpt()) as Box<dyn Scheduler>,
        Box::new(OnlineScheduler::online()),
    ] {
        let result = scheduler.schedule(&instance).expect("schedulable instance");
        println!("=== {} ===", result.scheduler);
        for outcome in &result.outcomes {
            println!(
                "  job {}: released {:>5.1}s  completed {:>6.2}s  flow {:>6.2}s  stretch {:>5.2}",
                outcome.id,
                outcome.release,
                outcome.completion,
                outcome.flow(),
                outcome.stretch()
            );
        }
        println!(
            "  max-stretch {:.3}   sum-stretch {:.3}   makespan {:.2}s\n",
            result.metrics.max_stretch, result.metrics.sum_stretch, result.metrics.makespan
        );
    }
}
