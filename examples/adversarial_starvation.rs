//! Theorem 1 in action: sum-stretch-oriented heuristics starve a large job
//! when a stream of small requests keeps arriving, while max-stretch-oriented
//! scheduling keeps every job's slowdown bounded.
//!
//! ```text
//! cargo run --release -p stretch-core --example adversarial_starvation
//! ```

use stretch_core::adversarial::starvation_instance;
use stretch_core::priority::PriorityRule;
use stretch_core::uniproc::{
    max_stretch_of, optimal_max_stretch, simulate_priority, sum_stretch_of,
};

fn main() {
    let delta = 10.0;
    println!("Starvation stream (Theorem 1): one job of size {delta} + k unit jobs\n");
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14} {:>16}",
        "k", "SRPT max-S", "SWRPT max-S", "FCFS max-S", "optimal max-S", "SRPT sum-S"
    );
    // The starvation effect dominates once k exceeds Δ²: below that point
    // delaying the big job is actually optimal, beyond it the sum-stretch
    // heuristics keep delaying it while the optimal max-stretch stays at
    // 1 + Δ.
    for k in [50usize, 200, 800, 3200] {
        let instance = starvation_instance(delta, k);
        let srpt = simulate_priority(&instance, PriorityRule::Srpt, None);
        let swrpt = simulate_priority(&instance, PriorityRule::Swrpt, None);
        let fcfs = simulate_priority(&instance, PriorityRule::Fcfs, None);
        let optimal = optimal_max_stretch(&instance);
        println!(
            "{:>6} {:>14.2} {:>14.2} {:>14.2} {:>14.2} {:>16.2}",
            k,
            max_stretch_of(&instance, &srpt),
            max_stretch_of(&instance, &swrpt),
            max_stretch_of(&instance, &fcfs),
            optimal,
            sum_stretch_of(&instance, &srpt),
        );
    }
    println!(
        "\nSRPT/SWRPT max-stretch grows linearly with k (the large job starves), while FCFS and \
         the optimal stay bounded by 1 + Δ once k > Δ² — the trade-off Theorem 1 proves \
         unavoidable for any algorithm with a non-trivial sum-stretch guarantee."
    );
}
