//! End-to-end integration tests spanning the whole workspace: platform and
//! workload generation, every scheduler of the paper, and the metrics layer.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use stretch_core::{
    Bender98Scheduler, ListScheduler, MctScheduler, OfflineScheduler, OnlineScheduler, Scheduler,
};
use stretch_experiments::{heuristic_battery, HeuristicKind};
use stretch_metrics::ScheduleMetrics;
use stretch_platform::{fixtures, PlatformConfig, PlatformGenerator};
use stretch_workload::{Instance, Job, WorkloadConfig, WorkloadGenerator};

/// Draws a moderate random instance (~`target` jobs) for integration testing.
fn random_instance(seed: u64, target: usize, sites: usize, availability: f64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let platform =
        PlatformGenerator::new(PlatformConfig::new(sites, 3, availability)).generate(&mut rng);
    let probe = WorkloadGenerator::new(WorkloadConfig {
        density: 1.5,
        window: 1.0,
        scan_fraction: 1.0,
        ..Default::default()
    });
    let window = (target as f64 / probe.expected_job_count(&platform).max(1e-9)).max(1e-3);
    let generator = WorkloadGenerator::new(WorkloadConfig {
        density: 1.5,
        window,
        scan_fraction: 1.0,
        ..Default::default()
    });
    generator.generate_instance(platform, &mut rng)
}

/// Every scheduler of the battery, as trait objects.
fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(OfflineScheduler::new()),
        Box::new(OnlineScheduler::online()),
        Box::new(OnlineScheduler::online_edf()),
        Box::new(OnlineScheduler::online_egdf()),
        Box::new(OnlineScheduler::non_optimized()),
        Box::new(Bender98Scheduler::new()),
        Box::new(ListScheduler::fcfs()),
        Box::new(ListScheduler::srpt()),
        Box::new(ListScheduler::spt()),
        Box::new(ListScheduler::swpt()),
        Box::new(ListScheduler::swrpt()),
        Box::new(ListScheduler::bender02()),
        Box::new(MctScheduler::mct()),
        Box::new(MctScheduler::mct_div()),
    ]
}

#[test]
fn every_scheduler_produces_a_complete_valid_schedule() {
    let instance = random_instance(1, 18, 3, 0.6);
    for scheduler in all_schedulers() {
        let result = scheduler
            .schedule(&instance)
            .unwrap_or_else(|e| panic!("{} failed: {e}", scheduler.name()));
        assert_eq!(
            result.outcomes.len(),
            instance.num_jobs(),
            "{}",
            scheduler.name()
        );
        for outcome in &result.outcomes {
            assert!(
                outcome.completion >= outcome.release - 1e-9,
                "{}: job {} completed before its release",
                scheduler.name(),
                outcome.id
            );
            assert!(outcome.completion.is_finite());
        }
        // The metrics recomputed from the outcomes match the reported ones.
        let recomputed = ScheduleMetrics::from_outcomes(&result.outcomes);
        assert!((recomputed.max_stretch - result.metrics.max_stretch).abs() < 1e-9);
        assert!((recomputed.sum_stretch - result.metrics.sum_stretch).abs() < 1e-9);
    }
}

#[test]
fn offline_optimum_lower_bounds_every_heuristic_max_stretch() {
    for seed in [3u64, 5, 8] {
        let instance = random_instance(seed, 14, 3, 0.6);
        let offline = OfflineScheduler::new().schedule(&instance).unwrap();
        for scheduler in all_schedulers() {
            let result = scheduler.schedule(&instance).unwrap();
            assert!(
                result.metrics.max_stretch >= offline.metrics.max_stretch * (1.0 - 5e-3),
                "seed {seed}: {} achieved {} below the optimum {}",
                scheduler.name(),
                result.metrics.max_stretch,
                offline.metrics.max_stretch
            );
        }
    }
}

#[test]
fn makespan_never_beats_the_work_conservation_bound() {
    // No schedule can finish earlier than (total work) / (aggregate speed)
    // after the first release, nor earlier than the last release.
    let instance = random_instance(11, 16, 3, 0.9);
    let bound = instance.total_work() / instance.platform.aggregate_speed();
    let last_release = instance
        .jobs
        .iter()
        .map(|j| j.release)
        .fold(0.0f64, f64::max);
    for scheduler in all_schedulers() {
        let result = scheduler.schedule(&instance).unwrap();
        assert!(
            result.metrics.makespan >= bound - 1e-6,
            "{}: makespan {} below the conservation bound {}",
            scheduler.name(),
            result.metrics.makespan,
            bound
        );
        assert!(result.metrics.makespan >= last_release - 1e-9);
    }
}

#[test]
fn restricted_availability_instances_are_handled_by_every_scheduler() {
    // Low availability: most databanks live on a single site, which maximally
    // exercises the restricted-availability code paths.
    let instance = random_instance(21, 12, 3, 0.3);
    for scheduler in all_schedulers() {
        let result = scheduler.schedule(&instance).unwrap();
        assert_eq!(result.outcomes.len(), instance.num_jobs());
    }
}

#[test]
fn larger_platforms_run_the_battery_without_bender98() {
    let instance = random_instance(33, 14, 10, 0.6);
    for (kind, scheduler) in heuristic_battery() {
        if !kind.runs_on(10) {
            assert_eq!(kind, HeuristicKind::Bender98);
            continue;
        }
        let result = scheduler.schedule(&instance).unwrap();
        assert_eq!(
            result.outcomes.len(),
            instance.num_jobs(),
            "{}",
            kind.name()
        );
    }
}

#[test]
fn deterministic_schedulers_are_reproducible() {
    let instance = random_instance(55, 12, 3, 0.6);
    for scheduler in all_schedulers() {
        let a = scheduler.schedule(&instance).unwrap();
        let b = scheduler.schedule(&instance).unwrap();
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert!(
                (x.completion - y.completion).abs() < 1e-9,
                "{} is not deterministic",
                scheduler.name()
            );
        }
    }
}

#[test]
fn hand_built_platform_end_to_end() {
    // The deterministic fixture platform, a couple of jobs per databank, and
    // exact expectations on the aggregate behaviour.
    let platform = fixtures::small_platform();
    let jobs = vec![
        Job::new(0, 0.0, 120.0, 0),
        Job::new(1, 0.0, 80.0, 1),
        Job::new(2, 2.0, 60.0, 0),
    ];
    let instance = Instance::new(platform, jobs);
    let srpt = ListScheduler::srpt().schedule(&instance).unwrap();
    let offline = OfflineScheduler::new().schedule(&instance).unwrap();
    // The platform can absorb 260 MB of work at 60 MB/s, so everything is done
    // well before t = 10 under any reasonable schedule.
    assert!(srpt.metrics.makespan < 10.0);
    assert!(offline.metrics.makespan < 10.0);
    // The realised offline schedule works at a hair above the optimal
    // objective (the allocation slack), hence the small relative margin.
    assert!(offline.metrics.max_stretch <= srpt.metrics.max_stretch * (1.0 + 5e-4));
}
