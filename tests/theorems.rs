//! Integration tests for the paper's theoretical results: Lemma 1 (model
//! equivalence), Theorem 1 (max- vs sum-stretch incompatibility) and
//! Theorem 2 (SWRPT lower bound), plus the classical optimality results
//! recalled in §4.1.

use stretch_core::adversarial::{starvation_instance, swrpt_lower_bound_instance};
use stretch_core::priority::PriorityRule;
use stretch_core::uniproc;
use stretch_core::{ListScheduler, Scheduler};
use stretch_platform::{Cluster, Databank, Platform, Processor};
use stretch_workload::{Instance, Job, UniprocInstance};

/// A fully replicated (uniform availability) platform so that Lemma 1 applies
/// exactly.
fn uniform_platform() -> Platform {
    let clusters = vec![
        Cluster {
            id: 0,
            speed: 10.0,
            processors: vec![0, 1],
            hosted_databanks: vec![0],
        },
        Cluster {
            id: 1,
            speed: 30.0,
            processors: vec![2],
            hosted_databanks: vec![0],
        },
    ];
    let processors = vec![
        Processor::new(0, 0, 10.0),
        Processor::new(1, 0, 10.0),
        Processor::new(2, 1, 30.0),
    ];
    let databanks = vec![Databank::new(0, "db", 100.0)];
    Platform::new(clusters, processors, databanks)
}

#[test]
fn lemma1_uniform_divisible_matches_single_processor_preemptive() {
    // On a fully available platform, running a priority heuristic with the §3
    // distribution rule gives exactly the completion times of the same
    // heuristic on the Lemma-1 equivalent single processor.
    let jobs = vec![
        Job::new(0, 0.0, 200.0, 0),
        Job::new(1, 1.0, 50.0, 0),
        Job::new(2, 2.0, 125.0, 0),
        Job::new(3, 4.5, 25.0, 0),
    ];
    let instance = Instance::new(uniform_platform(), jobs);
    assert!(instance.is_fully_available());
    let uni = instance.uniprocessor_equivalent();
    assert!((uni.equivalent_speed - 50.0).abs() < 1e-12);

    for (rule, scheduler) in [
        (PriorityRule::Srpt, ListScheduler::srpt()),
        (PriorityRule::Fcfs, ListScheduler::fcfs()),
        (PriorityRule::Swrpt, ListScheduler::swrpt()),
    ] {
        let multi = scheduler.schedule(&instance).unwrap();
        let single = uniproc::simulate_priority(&uni, rule, None);
        for (job, single_completion) in single.iter().enumerate().take(instance.num_jobs()) {
            assert!(
                (multi.completion(job) - single_completion).abs() < 1e-6,
                "{:?}: job {job} multi {} vs uniproc {}",
                rule,
                multi.completion(job),
                single[job]
            );
        }
    }
}

#[test]
fn lemma1_failsed_equivalence_is_not_claimed_under_restricted_availability() {
    // With restricted availability the transformation is only a heuristic
    // reference: the multi-machine SRPT completion of a restricted job can be
    // later than the equivalent-processor one (it cannot use the whole
    // platform).  This documents the Figure 2 discussion.
    let clusters = vec![
        Cluster {
            id: 0,
            speed: 40.0,
            processors: vec![0],
            hosted_databanks: vec![0],
        },
        Cluster {
            id: 1,
            speed: 10.0,
            processors: vec![1],
            hosted_databanks: vec![0, 1],
        },
    ];
    let processors = vec![Processor::new(0, 0, 40.0), Processor::new(1, 1, 10.0)];
    let databanks = vec![Databank::new(0, "a", 100.0), Databank::new(1, "b", 100.0)];
    let platform = Platform::new(clusters, processors, databanks);
    let instance = Instance::new(platform, vec![Job::new(0, 0.0, 100.0, 1)]);
    assert!(!instance.is_fully_available());
    let multi = ListScheduler::srpt().schedule(&instance).unwrap();
    let uni = instance.uniprocessor_equivalent();
    let single = uniproc::simulate_priority(&uni, PriorityRule::Srpt, None);
    // The restricted job can only use the 10 MB/s site: 10 s, versus 2 s on
    // the 50 MB/s equivalent processor.
    assert!((multi.completion(0) - 10.0).abs() < 1e-6);
    assert!((single[0] - 2.0).abs() < 1e-6);
}

#[test]
fn theorem1_sum_stretch_algorithms_starve_the_large_job() {
    // Δ = 6, and k well beyond Δ²: the optimal max-stretch plateaus at 1 + Δ
    // while SRPT / SWRPT / SPT keep delaying the big job, so the ratio to the
    // optimum grows without bound.
    let delta = 6.0;
    let small = starvation_instance(delta, 72); // k = 2·Δ²
    let large = starvation_instance(delta, 288); // k = 8·Δ²
    let opt_small = uniproc::optimal_max_stretch(&small);
    let opt_large = uniproc::optimal_max_stretch(&large);
    assert!((opt_small - (1.0 + delta)).abs() < 1e-3);
    assert!((opt_large - (1.0 + delta)).abs() < 1e-3);

    for rule in [PriorityRule::Srpt, PriorityRule::Swrpt, PriorityRule::Spt] {
        let ratio_small =
            uniproc::max_stretch_of(&small, &uniproc::simulate_priority(&small, rule, None))
                / opt_small;
        let ratio_large =
            uniproc::max_stretch_of(&large, &uniproc::simulate_priority(&large, rule, None))
                / opt_large;
        assert!(
            ratio_large > 3.0 * ratio_small,
            "{}: ratio should grow with k ({ratio_small} -> {ratio_large})",
            rule.name()
        );
        assert!(ratio_large > 5.0, "{}: ratio {ratio_large}", rule.name());
    }
}

#[test]
fn theorem1_conversely_fcfs_pays_in_sum_stretch() {
    // The other side of the trade-off: FCFS protects the big job but its
    // sum-stretch is much larger than SRPT's on the same stream.
    let inst = starvation_instance(6.0, 288);
    let srpt = uniproc::sum_stretch_of(
        &inst,
        &uniproc::simulate_priority(&inst, PriorityRule::Srpt, None),
    );
    let fcfs = uniproc::sum_stretch_of(
        &inst,
        &uniproc::simulate_priority(&inst, PriorityRule::Fcfs, None),
    );
    assert!(fcfs > 1.5 * srpt, "FCFS {fcfs} vs SRPT {srpt}");
}

#[test]
fn theorem2_swrpt_ratio_exceeds_two_minus_epsilon() {
    for (epsilon, l) in [(0.5, 2000usize), (0.75, 800)] {
        let (inst, params) = swrpt_lower_bound_instance(epsilon, l);
        let srpt = uniproc::sum_stretch_of(
            &inst,
            &uniproc::simulate_priority(&inst, PriorityRule::Srpt, None),
        );
        let swrpt = uniproc::sum_stretch_of(
            &inst,
            &uniproc::simulate_priority(&inst, PriorityRule::Swrpt, None),
        );
        let ratio = swrpt / srpt;
        assert!(
            ratio > 2.0 - epsilon,
            "ε = {epsilon}: ratio {ratio} (params {params:?})"
        );
    }
}

#[test]
fn srpt_optimality_for_sum_flow_on_random_streams() {
    // §4.1: SRPT minimises the sum-flow; spot-check it dominates the other
    // rules on a bank of deterministic pseudo-random instances.
    for seed in 0..12u64 {
        let jobs: Vec<(f64, f64)> = (0..10)
            .map(|i| {
                let x = ((seed * 37 + i * 101) % 97) as f64;
                let release = (i as f64) * 0.7 + (x % 5.0) * 0.3;
                let size = 0.5 + (x % 13.0);
                (release, size)
            })
            .collect();
        let inst = UniprocInstance::from_times(&jobs);
        let srpt_flow = uniproc::metrics_of(
            &inst,
            &uniproc::simulate_priority(&inst, PriorityRule::Srpt, None),
        )
        .sum_flow;
        for rule in [
            PriorityRule::Fcfs,
            PriorityRule::Spt,
            PriorityRule::Swpt,
            PriorityRule::Swrpt,
        ] {
            let flow =
                uniproc::metrics_of(&inst, &uniproc::simulate_priority(&inst, rule, None)).sum_flow;
            assert!(
                srpt_flow <= flow + 1e-6,
                "seed {seed}: SRPT {srpt_flow} vs {} {flow}",
                rule.name()
            );
        }
    }
}

#[test]
fn fcfs_optimality_for_max_flow_on_random_streams() {
    // §4.1: FCFS minimises the max-flow.
    for seed in 0..12u64 {
        let jobs: Vec<(f64, f64)> = (0..10)
            .map(|i| {
                let x = ((seed * 53 + i * 89) % 101) as f64;
                ((i as f64) * 0.9 + (x % 3.0) * 0.2, 0.5 + (x % 7.0))
            })
            .collect();
        let inst = UniprocInstance::from_times(&jobs);
        let fcfs_max_flow = uniproc::metrics_of(
            &inst,
            &uniproc::simulate_priority(&inst, PriorityRule::Fcfs, None),
        )
        .max_flow;
        for rule in [PriorityRule::Srpt, PriorityRule::Spt, PriorityRule::Swrpt] {
            let max_flow =
                uniproc::metrics_of(&inst, &uniproc::simulate_priority(&inst, rule, None)).max_flow;
            assert!(
                fcfs_max_flow <= max_flow + 1e-6,
                "seed {seed}: FCFS {fcfs_max_flow} vs {} {max_flow}",
                rule.name()
            );
        }
    }
}

#[test]
fn srpt_two_competitiveness_for_sum_stretch_holds_empirically() {
    // §4.2 recalls that SRPT is 2-competitive for sum-stretch.  The optimal
    // sum-stretch is unknown (its complexity is open), but it is bounded
    // below by the sum-stretch where every job is alone (all stretches = 1),
    // i.e. by the number of jobs; verify SRPT never exceeds twice the best
    // heuristic we have, which is itself an upper bound on the optimum.
    for seed in 0..8u64 {
        let jobs: Vec<(f64, f64)> = (0..12)
            .map(|i| {
                let x = ((seed * 61 + i * 71) % 113) as f64;
                ((i as f64) * 0.5, 0.5 + (x % 9.0))
            })
            .collect();
        let inst = UniprocInstance::from_times(&jobs);
        let mut best = f64::INFINITY;
        let mut srpt = f64::NAN;
        for rule in [
            PriorityRule::Fcfs,
            PriorityRule::Srpt,
            PriorityRule::Spt,
            PriorityRule::Swrpt,
        ] {
            let s = uniproc::sum_stretch_of(&inst, &uniproc::simulate_priority(&inst, rule, None));
            if rule == PriorityRule::Srpt {
                srpt = s;
            }
            best = best.min(s);
        }
        assert!(
            srpt <= 2.0 * best + 1e-6,
            "seed {seed}: SRPT {srpt} vs best {best}"
        );
    }
}
