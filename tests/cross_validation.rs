//! Cross-validation between the independent back-ends of the workspace:
//!
//! * the flow-based and LP-based solvers of Systems (1) and (2);
//! * the multi-machine off-line optimum and the single-processor optimum on
//!   Lemma-1-uniform instances;
//! * the floating-point and exact-rational simplex.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use stretch_core::deadline::{DeadlineProblem, PendingJob};
use stretch_core::offline::{offline_problem, optimal_max_stretch, OfflineBackend};
use stretch_core::sites::{Site, SiteView};
use stretch_core::system1;
use stretch_core::system2;
use stretch_core::uniproc;
use stretch_platform::{Cluster, Databank, Platform, PlatformConfig, PlatformGenerator, Processor};
use stretch_workload::{Instance, Job, WorkloadConfig, WorkloadGenerator};

fn random_instance(seed: u64, target: usize) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let platform = PlatformGenerator::new(PlatformConfig::new(3, 3, 0.6)).generate(&mut rng);
    let probe = WorkloadGenerator::new(WorkloadConfig {
        density: 1.5,
        window: 1.0,
        scan_fraction: 1.0,
        ..Default::default()
    });
    let window = (target as f64 / probe.expected_job_count(&platform).max(1e-9)).max(1e-3);
    let generator = WorkloadGenerator::new(WorkloadConfig {
        density: 1.5,
        window,
        scan_fraction: 1.0,
        ..Default::default()
    });
    generator.generate_instance(platform, &mut rng)
}

#[test]
fn offline_flow_and_lp_backends_agree_on_random_instances() {
    for seed in [1u64, 2, 3, 4, 5] {
        let instance = random_instance(seed, 10);
        let flow = optimal_max_stretch(&instance, OfflineBackend::Flow).unwrap();
        let lp = optimal_max_stretch(&instance, OfflineBackend::Lp).unwrap();
        assert!(
            (flow.stretch - lp.stretch).abs() <= 2e-3 * flow.stretch.max(1e-9),
            "seed {seed}: flow {} vs LP {}",
            flow.stretch,
            lp.stretch
        );
    }
}

#[test]
fn milestone_search_and_bisection_agree_on_random_instances() {
    for seed in [7u64, 8, 9] {
        let instance = random_instance(seed, 10);
        let problem = offline_problem(&instance);
        let bisect = problem.min_feasible_stretch().unwrap();
        let milestones = problem.min_feasible_stretch_milestones().unwrap();
        assert!(
            (bisect - milestones).abs() <= 2e-3 * bisect.max(1e-9),
            "seed {seed}: bisection {bisect} vs milestones {milestones}"
        );
    }
}

#[test]
fn system2_flow_and_lp_agree_on_random_instances() {
    for seed in [11u64, 13] {
        let instance = random_instance(seed, 8);
        let problem = offline_problem(&instance);
        let stretch = problem.min_feasible_stretch().unwrap() * 1.001;
        let flow_plan = problem.system2_allocation(stretch).expect("flow feasible");
        let lp_plan = system2::solve_system2_lp(&problem, stretch).expect("lp feasible");
        let flow_cost = system2::system2_cost(&problem, &flow_plan);
        let lp_cost = system2::system2_cost(&problem, &lp_plan);
        assert!(
            (flow_cost - lp_cost).abs() <= 5e-3 * flow_cost.max(1.0),
            "seed {seed}: flow {flow_cost} vs LP {lp_cost}"
        );
        for (j, job) in problem.jobs.iter().enumerate() {
            assert!((flow_plan.work_of(j) - job.remaining).abs() < 1e-4);
            assert!((lp_plan.work_of(j) - job.remaining).abs() < 1e-4);
        }
    }
}

/// Fully replicated single-databank platform: the multi-machine optimum must
/// equal the single-processor optimum of the Lemma-1 equivalent instance
/// (after converting between the two stretch conventions).
#[test]
fn multi_machine_optimum_matches_uniprocessor_optimum_when_uniform() {
    let clusters = vec![Cluster {
        id: 0,
        speed: 25.0,
        processors: vec![0, 1],
        hosted_databanks: vec![0],
    }];
    let processors = vec![Processor::new(0, 0, 25.0), Processor::new(1, 0, 25.0)];
    let databanks = vec![Databank::new(0, "db", 100.0)];
    let platform = Platform::new(clusters, processors, databanks);
    let aggregate = platform.aggregate_speed();
    let jobs = vec![
        Job::new(0, 0.0, 120.0, 0),
        Job::new(1, 0.5, 30.0, 0),
        Job::new(2, 1.0, 80.0, 0),
        Job::new(3, 3.0, 20.0, 0),
    ];
    let instance = Instance::new(platform, jobs);
    let multi = optimal_max_stretch(&instance, OfflineBackend::Flow).unwrap();
    let uni = uniproc::optimal_max_stretch(&instance.uniprocessor_equivalent());
    // Multi-machine stretch is F_j / W_j; the single-processor one divides by
    // the processing time W_j / aggregate, so they differ by the factor
    // `aggregate`.
    assert!(
        (multi.stretch * aggregate - uni).abs() < 2e-3 * uni,
        "multi {} (×{aggregate}) vs uniproc {uni}",
        multi.stretch
    );
}

fn two_sites() -> SiteView {
    SiteView {
        sites: vec![
            Site {
                cluster: 0,
                speed: 1.0,
                hosted_databanks: vec![0],
            },
            Site {
                cluster: 1,
                speed: 2.0,
                hosted_databanks: vec![0, 1],
            },
        ],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random small deadline problems: the System-(1) LP on the bracketing
    /// interval agrees with the flow bisection.
    #[test]
    fn system1_lp_matches_flow_on_random_deadline_problems(
        works in proptest::collection::vec(0.5f64..4.0, 1..5),
        releases in proptest::collection::vec(0.0f64..5.0, 1..5),
        banks in proptest::collection::vec(0usize..2, 1..5),
    ) {
        let n = works.len().min(releases.len()).min(banks.len());
        let jobs: Vec<PendingJob> = (0..n)
            .map(|i| PendingJob {
                job_id: i,
                release: releases[i],
                ready: releases[i],
                work: works[i],
                remaining: works[i],
                databank: banks[i],
            })
            .collect();
        let problem = DeadlineProblem::new(jobs, two_sites(), 0.0);
        let flow = problem.min_feasible_stretch();
        let lp = system1::optimal_stretch_lp(&problem);
        match (flow, lp) {
            (Some(f), Some(l)) => {
                prop_assert!((f - l).abs() <= 5e-3 * f.max(1e-6),
                    "flow {f} vs lp {l}");
            }
            (None, None) => {}
            (f, l) => prop_assert!(false, "disagreement: flow {f:?} lp {l:?}"),
        }
    }

    /// The achievable max-stretch never improves when work is added.
    #[test]
    fn optimum_is_monotone_in_the_workload(
        works in proptest::collection::vec(0.5f64..4.0, 2..6),
    ) {
        let make_problem = |count: usize| {
            let jobs: Vec<PendingJob> = works[..count]
                .iter()
                .enumerate()
                .map(|(i, &w)| PendingJob {
                    job_id: i,
                    release: 0.0,
                    ready: 0.0,
                    work: w,
                    remaining: w,
                    databank: 0,
                })
                .collect();
            DeadlineProblem::new(jobs, two_sites(), 0.0)
        };
        let smaller = make_problem(works.len() - 1).min_feasible_stretch().unwrap();
        let larger = make_problem(works.len()).min_feasible_stretch().unwrap();
        // Allow the combined bisection + flow-feasibility tolerance.
        prop_assert!(larger >= smaller * (1.0 - 1e-4),
            "adding a job improved the optimum: {smaller} -> {larger}");
    }
}
