//! Smoke test of the full experimental pipeline: a miniature campaign over a
//! reduced grid must reproduce the *qualitative* findings of §5.3 (who wins,
//! who loses, by roughly what kind of factor), and the Figure 3 sweep and the
//! overhead study must run end to end.

use stretch_experiments::figure3::{run_figure3, Figure3Settings};
use stretch_experiments::{
    reduced_grid, run_campaign, run_overhead_study, table1, tables_by_availability,
    tables_by_databases, tables_by_density, tables_by_sites, CampaignSettings,
};

#[test]
fn miniature_campaign_reproduces_the_qualitative_table1_findings() {
    let settings = CampaignSettings {
        instances_per_config: 2,
        target_jobs: 14,
        base_seed: 123,
        ..CampaignSettings::default()
    };
    let result = run_campaign(&reduced_grid(), settings);
    assert_eq!(
        result.len(),
        reduced_grid().len() * settings.instances_per_config
    );
    let table = table1(&result.observations);

    let mean_max = |name: &str| table.row(name).unwrap().max_stretch.map(|s| s.mean);
    let mean_sum = |name: &str| table.row(name).unwrap().sum_stretch.map(|s| s.mean);

    // Offline is the max-stretch reference.
    let offline = mean_max("Offline").unwrap();
    assert!((offline - 1.0).abs() < 5e-3, "offline mean {offline}");

    // §5.3 finding 1: the on-line LP heuristics are near-optimal for
    // max-stretch (paper: within 0.1 % on average; we allow a much looser
    // bound on this miniature campaign).
    for name in ["Online", "Online-EDF"] {
        let m = mean_max(name).unwrap();
        assert!(m < 1.25, "{name} mean max-stretch degradation {m}");
    }

    // §5.3 finding 2: the greedy, non-preemptive policies (MCT, the
    // production GriPPS policy, and its divisible variant MCT-Div) are far
    // worse than every stretch-aware heuristic for max-stretch.  (The
    // paper's additional observation that MCT is an order of magnitude worse
    // than MCT-Div emerges when the number of jobs far exceeds the number of
    // processors — i.e. at full campaign scale, exercised by the
    // `repro_table1` binary — not on this miniature smoke workload.)
    let mct = mean_max("MCT").unwrap();
    let mct_div = mean_max("MCT-Div").unwrap();
    let srpt = mean_max("SRPT").unwrap();
    assert!(mct > 3.0 * srpt, "MCT {mct} vs SRPT {srpt}");
    assert!(mct_div > 1.5 * srpt, "MCT-Div {mct_div} vs SRPT {srpt}");

    // §5.3 finding 3: SWRPT / SRPT / SPT are excellent for sum-stretch
    // (within a few percent of the best).
    for name in ["SWRPT", "SRPT", "SPT"] {
        let s = mean_sum(name).unwrap();
        assert!(s < 1.15, "{name} mean sum-stretch degradation {s}");
    }
    // ... while MCT is dramatically worse on sum-stretch too.
    assert!(mean_sum("MCT").unwrap() > 2.0);
}

#[test]
fn partitioned_tables_are_consistent_with_the_global_one() {
    let settings = CampaignSettings {
        instances_per_config: 1,
        target_jobs: 10,
        base_seed: 7,
        ..CampaignSettings::default()
    };
    let result = run_campaign(&reduced_grid(), settings);
    let by_sites = tables_by_sites(&result.observations);
    let by_density = tables_by_density(&result.observations);
    let by_db = tables_by_databases(&result.observations);
    let by_avail = tables_by_availability(&result.observations);
    assert_eq!(by_sites.len(), 3);
    assert_eq!(by_density.len(), 6);
    assert_eq!(by_db.len(), 3);
    assert_eq!(by_avail.len(), 3);
    // Every partition's sample counts add up to the total number of
    // observations (for a heuristic that always runs, e.g. MCT = row 10).
    let total: usize = by_sites
        .iter()
        .filter_map(|t| t.row("MCT").and_then(|r| r.max_stretch.map(|s| s.count)))
        .sum();
    assert_eq!(total, result.len());
}

#[test]
fn figure3_sweep_shows_the_optimization_gain_on_average() {
    let settings = Figure3Settings {
        densities: vec![1.0, 2.5],
        instances_per_density: 8,
        target_jobs: 16,
        ..Default::default()
    };
    let points = run_figure3(&settings);
    assert_eq!(points.len(), 2);
    for p in &points {
        assert!(p.instances > 0);
        // Figure 3(a): both variants stay close to the optimal max-stretch
        // (the paper reports at most ~2.5 %; tiny instances are noisier, so
        // the bound here is loose but still "near-optimal").
        assert!(p.optimized_degradation_pct < 30.0);
        assert!(p.non_optimized_degradation_pct < 30.0);
    }
    // Figure 3(b): averaged over the sweep, the System-(2) refinement does
    // not lose sum-stretch relative to the non-optimized version.  The
    // paper's baseline (the raw System-(1) vertex it happened to obtain)
    // pushes work later than our max-flow allocation does, so our measured
    // gain is smaller and noisier than the 2–18 % of the paper (see
    // EXPERIMENTS.md); the smoke assertion only rules out a systematic loss.
    let mean_gain: f64 =
        points.iter().map(|p| p.sum_stretch_gain_pct).sum::<f64>() / points.len() as f64;
    assert!(
        mean_gain > -8.0,
        "the optimized variant should not be systematically worse (gain {mean_gain} %)"
    );
}

#[test]
fn overhead_study_reproduces_the_cost_ranking() {
    let report = run_overhead_study(2, 16, 99);
    let time = |name: &str| report.time_of(name).unwrap();
    // §5.3: the list/greedy heuristics are essentially free, while the
    // optimisation-based algorithms (off-line optimal, the on-line LP
    // heuristics, Bender98) pay for their linear programs.  The paper's
    // further point — Bender98 dwarfing even the other LP-based schedulers —
    // shows up as the workload grows (its per-arrival problem keeps all
    // released jobs); at smoke scale we only assert the cheap-vs-expensive
    // split, the full-scale ranking is printed by `repro_overhead`.
    assert!(time("SRPT") < time("Online"));
    assert!(time("MCT") < time("Offline"));
    assert!(time("Bender98") > time("SRPT") * 5.0);
    assert!(time("Online") > time("MCT-Div"));
}
