//! Umbrella crate of the reproduction of *Minimizing the stretch when
//! scheduling flows of biological requests* (Legrand, Su, Vivien — SPAA 2006).
//!
//! The implementation lives in the `crates/` workspace members; this crate
//! only hosts the repository-level integration tests (`tests/`) and examples
//! (`examples/`), and re-exports the member crates under one roof for
//! convenience.

pub use stretch_core as core;
pub use stretch_experiments as experiments;
pub use stretch_metrics as metrics;
pub use stretch_platform as platform;
pub use stretch_workload as workload;
