//! Offline stand-in for the subset of the
//! [`criterion`](https://docs.rs/criterion) crate used by this workspace.
//!
//! The build container has no access to crates.io, so the benches run against
//! this minimal harness: it executes each benchmark closure for a warm-up
//! iteration plus `sample_size` timed iterations, reports the **minimum**
//! iteration time (the noise-robust estimator on machines with CPU steal —
//! interference only ever adds time), and — unlike the real crate — **merges
//! every measurement into a machine-readable `BENCH_baseline.json`** at the
//! workspace root (override the path with the `STRETCH_BENCH_BASELINE`
//! environment variable, or set it to the empty string to disable).  The
//! file maps `"group/benchmark"` keys to seconds per iteration, giving the
//! repository a perf trajectory that future changes can diff against.
//!
//! Passing `--test` (as `cargo bench -- --test` does for smoke runs) executes
//! every closure exactly once and skips both timing and the baseline write.

use std::time::{Duration, Instant};

/// One measured benchmark: `(full id, mean seconds per iteration)`.
type Measurement = (String, f64);

/// The benchmark driver handed to the functions in `criterion_group!`.
pub struct Criterion {
    test_mode: bool,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run_one(id, 10, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, sample_size: usize, mut f: F) {
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size,
            best: Duration::MAX,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {id} ... ok");
            return;
        }
        let best = if bencher.best == Duration::MAX {
            0.0
        } else {
            bencher.best.as_secs_f64()
        };
        println!("{id:<48} {:>14.6} ms/iter (min)", best * 1e3);
        self.results.push((id, best));
    }

    /// Flushes the collected measurements into the baseline file.
    pub fn finalize(&mut self) {
        if self.test_mode || self.results.is_empty() {
            return;
        }
        if let Some(path) = baseline::path() {
            baseline::upsert(&path, &self.results);
            println!("baseline written to {}", path.display());
        }
        self.results.clear();
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.  The
    /// `STRETCH_BENCH_SAMPLES` environment variable overrides every group's
    /// setting (useful on noisy machines).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = std::env::var("STRETCH_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(n)
            .max(1);
        self
    }

    /// Benchmarks `f` under `group-name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size;
        self.criterion.run_one(full, sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    best: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, keeping the fastest iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        // One untimed warm-up iteration.
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.best = self.best.min(start.elapsed());
        }
    }
}

/// Reading and rewriting the flat `BENCH_baseline.json` map.
///
/// The format implementation lives in [`stretch_metrics::baseline`] (one
/// writer for the whole workspace); this module adds the path resolution
/// the bench harness needs.
pub mod baseline {
    use std::path::PathBuf;
    pub use stretch_metrics::baseline::{parse, render, upsert as upsert_result};

    /// Resolves the baseline path; `None` disables the write.
    ///
    /// Defaults to `BENCH_baseline.json` at the *workspace* root: `cargo
    /// bench` runs bench binaries with the package directory as cwd, so the
    /// topmost ancestor holding a `Cargo.toml` is used.
    pub fn path() -> Option<PathBuf> {
        match std::env::var("STRETCH_BENCH_BASELINE") {
            Ok(p) if p.is_empty() => None,
            Ok(p) => Some(PathBuf::from(p)),
            Err(_) => Some(workspace_root().join("BENCH_baseline.json")),
        }
    }

    /// The topmost ancestor of the current directory containing a
    /// `Cargo.toml` (falls back to the current directory).
    fn workspace_root() -> PathBuf {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        let mut root = cwd.clone();
        for dir in cwd.ancestors() {
            if dir.join("Cargo.toml").is_file() {
                root = dir.to_path_buf();
            }
        }
        root
    }

    /// Merges `updates` into the baseline file (new keys win over old
    /// ones), reporting failures on stderr only.
    pub fn upsert(path: &std::path::Path, updates: &[(String, f64)]) {
        if let Err(err) = upsert_result(path, updates) {
            eprintln!("warning: could not write {}: {err}", path.display());
        }
    }
}

/// Defines a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.finalize();
        }
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trips() {
        let entries = vec![
            ("overhead/Online".to_string(), 1.25e-3),
            ("solvers/maxflow".to_string(), 4.0e-6),
        ];
        let text = baseline::render(&entries);
        let mut parsed = baseline::parse(&text);
        parsed.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "overhead/Online");
        assert!((parsed[0].1 - 1.25e-3).abs() < 1e-12);
        assert!((parsed[1].1 - 4.0e-6).abs() < 1e-15);
    }

    #[test]
    fn groups_measure_and_record() {
        std::env::set_var("STRETCH_BENCH_BASELINE", "");
        let mut c = Criterion {
            test_mode: false,
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].0, "g/noop");
    }
}
