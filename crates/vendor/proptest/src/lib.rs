//! Offline stand-in for the subset of the
//! [`proptest`](https://docs.rs/proptest) crate used by this workspace.
//!
//! The build container has no access to crates.io, so the property tests run
//! against this minimal re-implementation: deterministic seeded case
//! generation (the seed mixes the test name and the case index, so every test
//! sees a stable, independent stream), the [`Strategy`] combinators the tests
//! actually use (ranges, tuples, `prop_map`, `collection::vec`,
//! `bool::ANY`), and `prop_assert!`-style macros that panic like plain
//! `assert!`.  What is intentionally missing compared to the real crate:
//! shrinking (a failing case reports its case index instead of a minimised
//! counter-example — tests that need a minimal reproducer, like the
//! backend differential oracle, shrink by hand) and persistence of failing
//! seeds.
//!
//! # Determinism guarantee
//!
//! Case generation is a **stable contract**: the `(test name, case index)`
//! pair fully determines the drawn values, across runs and platforms, so a
//! reported failing case index is always reproducible by re-running the
//! test.  The `golden_stream_is_stable` test pins the stream of one pair;
//! changing the hash or the generator fails it.

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 stream driving case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one `(test name, case index)` pair.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty usize range strategy");
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
    }
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty u64 range strategy");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Boolean strategies (subset of `proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy generating unbiased booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The unbiased boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < 0.5
        }
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy generating `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// The [`vec()`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// `assert!` with proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` with proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// The `proptest! { ... }` test-definition macro.
///
/// Supports the forms the workspace uses: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn name(arg in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng =
                    $crate::TestRng::for_case(concat!(module_path!(), "::", stringify!($name)), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, usize)> {
        (0.0f64..1.0, 1usize..4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_generate_in_bounds(x in 0.5f64..2.5, n in 2usize..9) {
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!((2..9).contains(&n));
        }

        #[test]
        fn vec_and_map_compose(
            v in crate::collection::vec(0usize..5, 1..6),
            p in pair().prop_map(|(f, u)| f * u as f64),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
            prop_assert!((0.0..4.0).contains(&p));
        }

        #[test]
        fn bools_take_both_values_eventually(b in crate::bool::ANY) {
            // Statistical smoke: just type-checks and runs.
            prop_assert_eq!(b as u8 <= 1, true);
        }
    }

    #[test]
    fn case_streams_are_deterministic() {
        let a = crate::TestRng::for_case("t", 3).next_u64();
        let b = crate::TestRng::for_case("t", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, crate::TestRng::for_case("t", 4).next_u64());
    }

    #[test]
    fn golden_stream_is_stable() {
        // Cross-run/cross-platform determinism (see the crate docs): a
        // failing case index must stay reproducible forever, so the stream
        // of a fixed (name, case) pair is pinned to recorded constants.
        let mut rng = crate::TestRng::for_case("stub::determinism", 0);
        let drawn: Vec<u64> = (0..3)
            .map(|_| Strategy::generate(&(0u64..u64::MAX), &mut rng))
            .collect();
        assert_eq!(
            drawn,
            vec![
                17967997851134940007,
                11191368134859531686,
                4623214003152489802
            ]
        );
    }
}
