//! Offline stand-in for the subset of the [`rand`](https://docs.rs/rand)
//! crate used by this workspace.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the exact API surface it needs: [`Rng::gen_range`] over `usize`/`f64`
//! ranges, [`Rng::gen_bool`], and a seedable small generator
//! ([`rngs::SmallRng`]).  The generator is SplitMix64 — not cryptographic,
//! but statistically solid for Monte-Carlo workload generation and fully
//! deterministic in the seed, which is all the experiments require.
//!
//! # Determinism guarantee
//!
//! The stream of a given seed is part of this stub's **stable contract**:
//! the same seed yields the same sequence across runs, platforms and
//! releases, so every generated workload — and therefore every golden
//! fixture and `BENCH_baseline.json` row keyed to a seed — is reproducible.
//! The `golden_stream_is_stable` test pins the first values of seed 42;
//! changing the generator (and silently invalidating every recorded
//! experiment) fails it.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform `u64` source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// Sampled value type.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// A uniform double in `[0, 1)` built from the top 53 bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as usize
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Floating rounding can land exactly on `end`; fold it back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructing generators from integer seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (SplitMix64).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero fixed point and decorrelate tiny seeds.
            SmallRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn golden_stream_is_stable() {
        // Cross-run/cross-platform determinism (see the crate docs): these
        // constants were recorded once and must never change — seeds index
        // workloads in every recorded experiment and golden fixture.
        let mut rng = SmallRng::seed_from_u64(42);
        let ints: Vec<u64> = (0..3).map(|_| rng.gen_range(0u64..u64::MAX)).collect();
        assert_eq!(
            ints,
            vec![
                2949826092126892291,
                5139283748462763858,
                6349198060258255764
            ]
        );
        let mut rng = SmallRng::seed_from_u64(42);
        let floats: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0f64..1.0)).collect();
        let expected = [0.1599103928769201, 0.27860113025513866, 0.34419071652363753];
        for (f, e) in floats.iter().zip(expected) {
            assert_eq!(*f, e, "f64 stream drifted: {floats:?}");
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(2.0f64..=3.0);
            assert!((2.0..=3.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn unit_doubles_look_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
