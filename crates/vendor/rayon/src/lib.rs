//! Offline stand-in for the subset of the [`rayon`](https://docs.rs/rayon)
//! crate used by this workspace — now backed by a **real thread pool**.
//!
//! The build container has no access to crates.io, so this crate vendors the
//! exact API surface the workspace uses (`par_iter().map(..).collect()`),
//! implemented as a chunk-dealing pool over [`std::thread`]:
//!
//! * every `collect()` writes each item's result into its **original index**
//!   (indexed collect), so the output is byte-identical to what the old
//!   sequential stub produced, whatever the thread count or interleaving;
//! * workers claim fixed-size index chunks from a shared atomic counter, so
//!   load imbalance (one slow instance) never idles the rest of the pool for
//!   longer than one chunk;
//! * a panic in any worker is propagated to the caller once every worker has
//!   drained (via [`std::thread::scope`]), never swallowed.
//!
//! # Thread-count selection
//!
//! The pool size is resolved per `collect()` call, in priority order:
//!
//! 1. a scoped override installed by [`with_threads`] (used by tests to pin
//!    determinism checks to exact counts without touching the environment);
//! 2. the `STRETCH_THREADS` environment variable — malformed values and `0`
//!    **abort loudly** with the offending string rather than silently running
//!    sequentially;
//! 3. [`std::thread::available_parallelism`], the default.
//!
//! A resolved count of 1 (or a single-item input) short-circuits to a plain
//! sequential loop on the calling thread: no threads are spawned, and the
//! result is — by construction — the sequential order.

use std::cell::Cell;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Drop-in for `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Scoped thread-count override installed by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Runs `f` with the pool size pinned to `threads` on this thread.
///
/// Used by the determinism tests ([`STRETCH_THREADS`-style matrix without
/// mutating the process environment) and by benchmarks sweeping thread
/// counts.  Nested calls restore the previous override on exit, including
/// on panic.
pub fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    assert!(threads > 0, "thread count must be at least 1");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|o| o.replace(Some(threads))));
    f()
}

/// The number of worker threads the next `collect()` on this thread will use.
///
/// Resolution order: [`with_threads`] override, then `STRETCH_THREADS`
/// (malformed or zero values panic with the offending string), then
/// [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|o| o.get()) {
        return n;
    }
    match std::env::var("STRETCH_THREADS") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(0) => panic!("STRETCH_THREADS must be at least 1, got `{raw}`"),
            Ok(n) => n,
            Err(_) => panic!("STRETCH_THREADS must be a positive integer, got `{raw}`"),
        },
        Err(std::env::VarError::NotPresent) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Err(std::env::VarError::NotUnicode(_)) => {
            panic!("STRETCH_THREADS must be a positive integer, got non-unicode bytes")
        }
    }
}

/// Write-once output slots shared across workers.
///
/// Each index is claimed by exactly one worker (disjoint chunks handed out
/// by an atomic counter), so concurrent writes never alias; the `scope` join
/// sequences every write before the caller reads the slots back.
struct Slots<'a, R> {
    cells: &'a [UnsafeCell<Option<R>>],
}

// SAFETY: workers write disjoint indices (see `run_indexed`), and the scoped
// join provides the happens-before edge to the final read.
unsafe impl<R: Send> Sync for Slots<'_, R> {}

impl<R> Slots<'_, R> {
    /// Stores the result for index `i`.
    ///
    /// # Safety
    /// `i` must be claimed by exactly one worker and written exactly once
    /// (guaranteed by the disjoint chunk hand-out in `run_indexed`).
    unsafe fn set(&self, i: usize, value: R) {
        *self.cells[i].get() = Some(value);
    }
}

/// Computes `produce(i)` for every `i < len` on the resolved pool and
/// returns the results **in index order**.
fn run_indexed<R: Send>(len: usize, produce: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len <= 1 {
        return (0..len).map(produce).collect();
    }
    let slots: Vec<UnsafeCell<Option<R>>> = (0..len).map(|_| UnsafeCell::new(None)).collect();
    // Chunks several times smaller than a fair share keep the pool busy when
    // item costs are skewed (large instances next to small ones) while still
    // amortising the counter traffic.
    let chunk = (len / (threads * 8)).max(1);
    let next = AtomicUsize::new(0);
    // Set when any worker panics: surviving workers stop claiming chunks
    // instead of draining the remaining (possibly hours of) work before the
    // panic can propagate.
    let poisoned = AtomicBool::new(false);
    let shared = Slots { cells: &slots };
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if poisoned.load(Ordering::Relaxed) {
                    break;
                }
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    for i in start..(start + chunk).min(len) {
                        let value = produce(i);
                        // SAFETY: `i` is owned by this worker alone
                        // (disjoint chunk claims), and each slot is written
                        // exactly once.
                        unsafe { shared.set(i, value) };
                    }
                }));
                if let Err(payload) = outcome {
                    poisoned.store(true, Ordering::Relaxed);
                    // Re-raise on this worker so the scope join propagates
                    // the original panic to the caller.
                    std::panic::resume_unwind(payload);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|c| c.into_inner().expect("every index was claimed"))
        .collect()
}

/// Subset of `rayon::iter::ParallelIterator` (map + collect).
pub trait ParallelIterator: Sized {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Computes item `i`; implementations must be pure in `i` so the indexed
    /// collect can evaluate items in any order.
    fn produce(&self, index: usize) -> Self::Item;

    /// Number of items.
    fn len(&self) -> usize;

    /// `true` when the iterator has no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maps every item through `f` (lazily; runs on the pool at `collect`).
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Runs the pipeline on the thread pool and gathers the results in
    /// **input order** (indexed collect: byte-identical to sequential).
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C
    where
        Self: Sync,
    {
        C::from_par_iter(self)
    }
}

/// Collection types `ParallelIterator::collect` can target
/// (subset of `rayon::iter::FromParallelIterator`).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds the collection by draining `iter` on the pool.
    fn from_par_iter<I: ParallelIterator<Item = T> + Sync>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T> + Sync>(iter: I) -> Self {
        run_indexed(iter.len(), |i| iter.produce(i))
    }
}

/// Borrowing parallel iterator over a slice (the `par_iter()` shape).
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn produce(&self, index: usize) -> &'a T {
        &self.slice[index]
    }

    fn len(&self) -> usize {
        self.slice.len()
    }
}

/// Lazy `map` adaptor.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn produce(&self, index: usize) -> R {
        (self.f)(self.base.produce(index))
    }

    fn len(&self) -> usize {
        self.base.len()
    }
}

/// Drop-in for `rayon`'s `IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The parallel iterator type returned by [`Self::par_iter`].
    type Iter: ParallelIterator;
    /// A parallel iterator over references.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_iter_collects_in_input_order() {
        let v: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let doubled: Vec<usize> =
                with_threads(threads, || v.par_iter().map(|x| x * 2).collect());
            assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_output_is_byte_identical_to_sequential() {
        // f64 results compared bit-for-bit: the indexed collect must not
        // change results with the thread count.
        let v: Vec<f64> = (0..257).map(|i| i as f64 * 0.37).collect();
        let work = |x: &f64| (x.sin() * 1e6).sqrt().to_bits();
        let sequential: Vec<u64> = with_threads(1, || v.par_iter().map(work).collect());
        for threads in [2, 5, 16] {
            let parallel: Vec<u64> = with_threads(threads, || v.par_iter().map(work).collect());
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn pool_actually_fans_out() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let v: Vec<usize> = (0..64).collect();
        let _: Vec<()> = with_threads(4, || {
            v.par_iter()
                .map(|_| {
                    // Long enough that the chunk queue outlives worker spawn
                    // latency, so several workers get to claim chunks.
                    std::thread::sleep(std::time::Duration::from_micros(500));
                    seen.lock().unwrap().insert(std::thread::current().id());
                })
                .collect()
        });
        // 64 items in chunks of 2 (64 / (4·8)): with 4 workers and ~32 ms of
        // queued work, at least two distinct threads must claim chunks.
        assert!(
            seen.lock().unwrap().len() >= 2,
            "expected multiple worker threads"
        );
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let v: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            let _: Vec<usize> = with_threads(4, || {
                v.par_iter()
                    .map(|&x| {
                        if x == 33 {
                            panic!("boom at {x}");
                        }
                        x
                    })
                    .collect()
            });
        });
        assert!(result.is_err(), "panic in a worker must not be swallowed");
    }

    #[test]
    fn worker_panic_cancels_remaining_chunks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let produced = AtomicUsize::new(0);
        let v: Vec<usize> = (0..512).collect();
        let result = std::panic::catch_unwind(|| {
            let _: Vec<()> = with_threads(4, || {
                v.par_iter()
                    .map(|&x| {
                        if x == 0 {
                            panic!("early failure");
                        }
                        std::thread::sleep(std::time::Duration::from_micros(200));
                        produced.fetch_add(1, Ordering::Relaxed);
                    })
                    .collect()
            });
        });
        assert!(result.is_err());
        // Survivors bail at their next chunk claim instead of draining all
        // 512 items; allow generous slack for chunks already in flight.
        let done = produced.load(Ordering::Relaxed);
        assert!(done < 512, "pool drained everything after a panic ({done})");
    }

    #[test]
    fn empty_and_single_item_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn with_threads_restores_the_previous_override() {
        with_threads(3, || {
            assert_eq!(current_num_threads(), 3);
            with_threads(2, || assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 3);
        });
    }
}
