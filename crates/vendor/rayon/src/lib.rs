//! Offline stand-in for the subset of the [`rayon`](https://docs.rs/rayon)
//! crate used by this workspace.
//!
//! The build container has no access to crates.io, so `par_iter()` is
//! provided as a *sequential* iterator with the same call shape: campaign
//! sweeps stay correct (and deterministic), they just do not fan out over
//! threads.  Swap this stub for the real crate to restore parallelism.

/// Drop-in for `rayon::prelude`.
pub mod prelude {
    /// Sequential stand-in for `rayon`'s `IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'a> {
        /// The iterator type returned by [`Self::par_iter`].
        type Iter: Iterator;
        /// A (sequential) "parallel" iterator over references.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_visits_everything_in_order() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }
}
