//! Bounded-memory (streaming) aggregation for paper-scale campaigns.
//!
//! The batch accumulator ([`crate::DegradationAccumulator`]) retains every
//! sample so it can compute exact statistics at the end; at paper scale
//! (hundreds of instances per configuration, thousands of jobs each) that
//! means holding the whole campaign in memory.  This module provides the
//! streaming counterparts used by `run_campaign_streaming`:
//!
//! * [`StreamingStats`] — Welford's online mean/variance plus min/max/count,
//!   numerically stable, **exactly mergeable** (Chan et al.'s pairwise
//!   update), producing the same [`AggregateStats`] the tables print;
//! * [`P2Quantile`] — the P² algorithm of Jain & Chlamtac: a five-marker
//!   quantile sketch in O(1) memory, used by the campaign summary for the
//!   p50/p99 of per-instance job counts (an exact quantile would need the
//!   full sample the streaming engine exists to avoid retaining);
//! * [`StreamingDegradation`] — a drop-in for the degradation-table shape of
//!   [`crate::DegradationAccumulator`], holding one [`StreamingStats`] per
//!   heuristic instead of one `Vec<f64>` per heuristic.

use crate::aggregate::AggregateStats;

/// Welford online summary: count, mean, variance, min, max — O(1) memory,
/// exact merge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamingStats {
    count: usize,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's `M2`).
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingStats {
    /// Same as [`StreamingStats::new`] (the min/max sentinels must be the
    /// infinities, never zeros, or the first observations get clipped).
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingStats {
    /// An empty summary.
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one sample in (Welford's update).
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples folded in.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Running mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (0 for fewer than two samples).
    pub fn sd(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Smallest sample seen.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Merges another summary in (Chan et al. parallel update); exact, so
    /// per-configuration summaries can be combined into partition tables.
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The table-facing summary, or `None` when no sample was folded in.
    pub fn stats(&self) -> Option<AggregateStats> {
        if self.count == 0 {
            None
        } else {
            Some(AggregateStats {
                mean: self.mean,
                sd: self.sd(),
                max: self.max,
                count: self.count,
            })
        }
    }
}

/// P² (piecewise-parabolic) single-quantile sketch: five markers, O(1)
/// memory, no sorting.  Estimates converge as samples accumulate; for five
/// or fewer samples the estimate is the exact nearest-rank order statistic
/// (the markers still hold the raw sorted samples until the sixth
/// observation).  NaN samples are ignored — they carry no rank.
#[derive(Clone, Debug)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (the first `count` entries are sorted samples until
    /// the sketch is primed).
    q: [f64; 5],
    /// Marker positions (1-based ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Position increments per observation.
    dn: [f64; 5],
    count: usize,
}

impl P2Quantile {
    /// A sketch estimating the `p`-quantile (e.g. `0.99`).
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "quantile must be in [0, 1]");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Folds one sample in.  NaN is skipped: it has no rank, and letting it
    /// into the markers used to panic the priming sort (`partial_cmp`
    /// unwrap) or poison every later estimate.
    pub fn observe(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        if self.count < 5 {
            self.q[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.q.sort_by(f64::total_cmp);
            }
            return;
        }
        // Locate the cell containing x and bump the endpoint markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x < self.q[1] {
            0
        } else if x < self.q[2] {
            1
        } else if x < self.q[3] {
            2
        } else if x <= self.q[4] {
            3
        } else {
            self.q[4] = x;
            3
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }
        // Adjust the three interior markers towards their desired positions.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
        self.count += 1;
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Number of samples folded in.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Current quantile estimate, or `None` when empty.
    pub fn value(&self) -> Option<f64> {
        match self.count {
            0 => None,
            // Exact small-sample quantile (nearest-rank).  The bound is
            // `<= 5`, not `< 5`: at exactly five samples the markers still
            // *are* the five sorted samples (the first P² adjustment happens
            // on the sixth observation), and the old `q[2]` arm returned the
            // median for every `p` — a p99 over a short-lived service's 5
            // decisions reported its median latency as the tail.
            c if c <= 5 => {
                let mut head: Vec<f64> = self.q[..c].to_vec();
                head.sort_by(f64::total_cmp);
                let rank = ((self.p * c as f64).ceil() as usize).clamp(1, c);
                Some(head[rank - 1])
            }
            _ => Some(self.q[2]),
        }
    }
}

/// Streaming counterpart of [`crate::DegradationAccumulator`]: per-heuristic
/// degradation ratios aggregated online, O(heuristics) memory however many
/// instances are folded in.
#[derive(Clone, Debug)]
pub struct StreamingDegradation {
    names: Vec<String>,
    summaries: Vec<StreamingStats>,
}

impl StreamingDegradation {
    /// Creates an accumulator for the given heuristic names.
    pub fn new(names: &[&str]) -> Self {
        StreamingDegradation {
            names: names.iter().map(|s| s.to_string()).collect(),
            summaries: vec![StreamingStats::new(); names.len()],
        }
    }

    /// Heuristic names, in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Records one instance; same semantics as
    /// [`crate::DegradationAccumulator::record`]: each heuristic's sample is
    /// `value / reference`, the reference defaulting to the best finite
    /// value among the heuristics; non-finite values are skipped.
    pub fn record(&mut self, values: &[f64], reference: Option<f64>) {
        assert_eq!(values.len(), self.names.len(), "one value per heuristic");
        let finite_min = values
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(f64::INFINITY, f64::min);
        let reference = reference.unwrap_or(finite_min);
        if !reference.is_finite() || reference <= 0.0 {
            return;
        }
        for (k, &v) in values.iter().enumerate() {
            if v.is_finite() {
                self.summaries[k].observe(v / reference);
            }
        }
    }

    /// Number of instances recorded for heuristic `k`.
    pub fn count(&self, k: usize) -> usize {
        self.summaries[k].count()
    }

    /// Aggregate statistics for heuristic `k`, or `None` when it never
    /// produced a finite value.
    pub fn stats(&self, k: usize) -> Option<AggregateStats> {
        self.summaries[k].stats()
    }

    /// All per-heuristic statistics, in column order.
    pub fn all_stats(&self) -> Vec<(String, Option<AggregateStats>)> {
        self.names
            .iter()
            .cloned()
            .zip(self.summaries.iter().map(|s| s.stats()))
            .collect()
    }

    /// Merges another accumulator (same heuristics, e.g. another
    /// configuration of the same partition) into this one; exact.
    pub fn merge(&mut self, other: &StreamingDegradation) {
        assert_eq!(
            self.names, other.names,
            "accumulators must share heuristics"
        );
        for (mine, theirs) in self.summaries.iter_mut().zip(&other.summaries) {
            mine.merge(theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::DegradationAccumulator;

    #[test]
    fn streaming_stats_match_the_batch_formulas() {
        let samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = StreamingStats::new();
        for &x in &samples {
            s.observe(x);
        }
        let batch = AggregateStats::from_samples(&samples);
        let streamed = s.stats().unwrap();
        assert!((streamed.mean - batch.mean).abs() < 1e-12);
        assert!((streamed.sd - batch.sd).abs() < 1e-12);
        assert_eq!(streamed.max, batch.max);
        assert_eq!(streamed.count, batch.count);
        assert_eq!(s.min(), 1.0);
    }

    #[test]
    fn merge_equals_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin() + 2.0).collect();
        let mut whole = StreamingStats::new();
        xs.iter().for_each(|&x| whole.observe(x));
        let mut left = StreamingStats::new();
        let mut right = StreamingStats::new();
        xs[..37].iter().for_each(|&x| left.observe(x));
        xs[37..].iter().for_each(|&x| right.observe(x));
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.sd() - whole.sd()).abs() < 1e-12);
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        let s = StreamingStats::new();
        assert!(s.stats().is_none());
        let mut t = StreamingStats::new();
        t.observe(2.5);
        let stats = t.stats().unwrap();
        assert_eq!(stats.mean, 2.5);
        assert_eq!(stats.sd, 0.0);
        assert_eq!(stats.count, 1);
        // Merging empty in either direction is the identity.
        let mut u = t;
        u.merge(&StreamingStats::new());
        assert_eq!(u, t);
        let mut v = StreamingStats::new();
        v.merge(&t);
        assert_eq!(v, t);
    }

    #[test]
    fn p2_median_converges_on_uniform_ramp() {
        let mut sketch = P2Quantile::new(0.5);
        for i in 0..10_001 {
            sketch.observe(i as f64 / 10_000.0);
        }
        let est = sketch.value().unwrap();
        assert!((est - 0.5).abs() < 0.02, "median estimate {est}");
    }

    #[test]
    fn p2_tail_quantile_tracks_the_upper_tail() {
        // Uniform ramp in [0, 1): the p-quantile is p itself.
        let mut sketch = P2Quantile::new(0.9);
        // Deterministic shuffle (golden-ratio stride) so the sketch sees the
        // values in a scrambled order, as a real stream would.
        for i in 0..10_000u64 {
            let x = (i.wrapping_mul(7919) % 10_000) as f64 / 10_000.0;
            sketch.observe(x);
        }
        let est = sketch.value().unwrap();
        assert!((est - 0.9).abs() < 0.03, "p90 estimate {est}");
    }

    #[test]
    fn p2_small_samples_are_exact() {
        let mut sketch = P2Quantile::new(0.5);
        assert!(sketch.value().is_none());
        sketch.observe(7.0);
        assert_eq!(sketch.value(), Some(7.0));
        sketch.observe(1.0);
        sketch.observe(9.0);
        // Nearest-rank median of {1, 7, 9} is 7.
        assert_eq!(sketch.value(), Some(7.0));
    }

    #[test]
    fn p2_five_samples_honour_the_quantile_not_the_median() {
        // Regression: at exactly five samples the sketch returned the median
        // marker q[2] for every p, so a p99 over five observations reported
        // the median.  With five samples {1..5}, nearest-rank p99 is the
        // max and nearest-rank p10 is the min.
        let samples = [3.0, 1.0, 5.0, 2.0, 4.0];
        for (p, expected) in [(0.99, 5.0), (0.5, 3.0), (0.1, 1.0)] {
            let mut sketch = P2Quantile::new(p);
            for &x in &samples {
                sketch.observe(x);
            }
            assert_eq!(sketch.count(), 5);
            assert_eq!(sketch.value(), Some(expected), "p = {p}");
        }
    }

    #[test]
    fn p2_ignores_nan_samples() {
        // NaN used to panic the priming sort (partial_cmp unwrap) when it
        // was among the first five samples, and to poison the top marker
        // afterwards.  It carries no rank, so it is skipped entirely.
        let mut sketch = P2Quantile::new(0.99);
        sketch.observe(f64::NAN);
        assert_eq!(sketch.count(), 0);
        assert!(sketch.value().is_none());
        for x in [2.0, f64::NAN, 1.0, 4.0, f64::NAN, 3.0, 5.0] {
            sketch.observe(x);
        }
        assert_eq!(sketch.count(), 5);
        assert_eq!(sketch.value(), Some(5.0));
        // Post-priming NaNs are skipped too, leaving the estimate finite.
        sketch.observe(f64::NAN);
        for i in 0..100 {
            sketch.observe(f64::from(i) / 100.0);
        }
        assert!(sketch.value().unwrap().is_finite());
    }

    #[test]
    fn streaming_degradation_matches_batch_accumulator() {
        let names = ["a", "b", "c"];
        let mut batch = DegradationAccumulator::new(&names);
        let mut stream = StreamingDegradation::new(&names);
        let rows = [
            ([2.0, 4.0, f64::INFINITY], None),
            ([3.0, 3.0, 6.0], None),
            ([5.0, 10.0, 2.5], Some(2.0)),
            ([f64::NAN, 1.0, 2.0], None),
        ];
        for (values, reference) in rows {
            batch.record(&values, reference);
            stream.record(&values, reference);
        }
        for k in 0..names.len() {
            match (batch.stats(k), stream.stats(k)) {
                (None, None) => {}
                (Some(b), Some(s)) => {
                    assert!((b.mean - s.mean).abs() < 1e-12, "heuristic {k}");
                    assert!((b.sd - s.sd).abs() < 1e-12, "heuristic {k}");
                    assert_eq!(b.max, s.max);
                    assert_eq!(b.count, s.count);
                }
                (b, s) => panic!("presence mismatch for {k}: {b:?} vs {s:?}"),
            }
        }
    }

    #[test]
    fn streaming_degradation_merge_combines_configurations() {
        let names = ["h"];
        let mut a = StreamingDegradation::new(&names);
        a.record(&[2.0], Some(1.0));
        let mut b = StreamingDegradation::new(&names);
        b.record(&[4.0], Some(1.0));
        a.merge(&b);
        let s = a.stats(0).unwrap();
        assert_eq!(s.count, 2);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.max, 4.0);
    }
}
