//! Paper-style result tables.
//!
//! Tables 1–16 of the paper all share the same layout: one row per heuristic,
//! and `Mean / SD / Max` columns for the max-stretch and sum-stretch
//! degradations.  [`MetricsTable`] renders that layout as aligned plain text
//! so the reproduction binaries print something directly comparable to the
//! paper.

use crate::aggregate::AggregateStats;
use std::fmt;

/// One row of a results table.
#[derive(Clone, Debug, PartialEq)]
pub struct TableRow {
    /// Heuristic name.
    pub name: String,
    /// Max-stretch degradation statistics (`None` when the heuristic was not
    /// run, e.g. Bender98 on large platforms).
    pub max_stretch: Option<AggregateStats>,
    /// Sum-stretch degradation statistics.
    pub sum_stretch: Option<AggregateStats>,
}

/// A full table: a caption plus rows in display order.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsTable {
    /// Caption printed above the table (e.g. "Table 1: aggregate statistics
    /// over all 162 platform/application configurations").
    pub caption: String,
    /// Rows in the order they should be displayed.
    pub rows: Vec<TableRow>,
}

impl MetricsTable {
    /// Creates an empty table with a caption.
    pub fn new(caption: impl Into<String>) -> Self {
        MetricsTable {
            caption: caption.into(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(
        &mut self,
        name: impl Into<String>,
        max_stretch: Option<AggregateStats>,
        sum_stretch: Option<AggregateStats>,
    ) {
        self.rows.push(TableRow {
            name: name.into(),
            max_stretch,
            sum_stretch,
        });
    }

    /// Finds a row by heuristic name.
    pub fn row(&self, name: &str) -> Option<&TableRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

fn fmt_stat(stat: &Option<AggregateStats>) -> (String, String, String) {
    match stat {
        Some(s) => (
            format!("{:.4}", s.mean),
            format!("{:.4}", s.sd),
            format!("{:.4}", s.max),
        ),
        None => ("-".into(), "-".into(), "-".into()),
    }
}

impl fmt::Display for MetricsTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.caption)?;
        writeln!(
            f,
            "{:<14} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
            "", "Max Mean", "Max SD", "Max Max", "Sum Mean", "Sum SD", "Sum Max"
        )?;
        writeln!(f, "{}", "-".repeat(14 + 3 + 6 * 11 + 3))?;
        for row in &self.rows {
            let (m1, m2, m3) = fmt_stat(&row.max_stretch);
            let (s1, s2, s3) = fmt_stat(&row.sum_stretch);
            writeln!(
                f,
                "{:<14} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
                row.name, m1, m2, m3, s1, s2, s3
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(mean: f64) -> AggregateStats {
        AggregateStats {
            mean,
            sd: 0.1,
            max: mean * 2.0,
            count: 10,
        }
    }

    #[test]
    fn build_and_lookup() {
        let mut t = MetricsTable::new("Table X");
        t.push_row("SRPT", Some(stats(1.1)), Some(stats(1.0)));
        t.push_row("MCT", Some(stats(27.0)), None);
        assert_eq!(t.rows.len(), 2);
        assert!(t.row("SRPT").is_some());
        assert!(t.row("FCFS").is_none());
        assert_eq!(t.row("MCT").unwrap().sum_stretch, None);
    }

    #[test]
    fn display_contains_all_rows_and_caption() {
        let mut t = MetricsTable::new("Table 1: aggregate");
        t.push_row("Offline", Some(stats(1.0)), Some(stats(1.67)));
        t.push_row("Bender98", None, None);
        let s = format!("{t}");
        assert!(s.contains("Table 1: aggregate"));
        assert!(s.contains("Offline"));
        assert!(s.contains("Bender98"));
        assert!(s.contains("1.6700"));
        assert!(s.contains('-'));
    }
}
