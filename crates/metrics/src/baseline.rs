//! The flat `BENCH_baseline.json` perf-trajectory format.
//!
//! The repository records performance as a flat JSON map from
//! `"section/name"` keys to mean seconds, so successive PRs can diff perf
//! with a one-line `jq`/`diff`.  Two producers merge into the same file —
//! the vendored Criterion harness (after every `cargo bench`) and the
//! `repro_overhead` binary (per-event scheduler means) — and both delegate
//! to this module so the format has exactly one implementation.

use std::path::Path;

/// Parses the flat `{"key": number, ...}` format written by [`render`].
pub fn parse(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((key, value)) = rest.split_once("\":") else {
            continue;
        };
        if let Ok(v) = value.trim().parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

/// Serialises entries as a flat JSON object, keys sorted.
pub fn render(entries: &[(String, f64)]) -> String {
    let mut sorted: Vec<_> = entries.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::from("{\n");
    for (i, (k, v)) in sorted.iter().enumerate() {
        let sep = if i + 1 == sorted.len() { "" } else { "," };
        out.push_str(&format!("  \"{k}\": {v:.9e}{sep}\n"));
    }
    out.push_str("}\n");
    out
}

/// Merges `updates` into the baseline file at `path` (updates win).
pub fn upsert(path: &Path, updates: &[(String, f64)]) -> std::io::Result<()> {
    let mut entries = std::fs::read_to_string(path)
        .map(|t| parse(&t))
        .unwrap_or_default();
    for (key, value) in updates {
        if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
            e.1 = *value;
        } else {
            entries.push((key.clone(), *value));
        }
    }
    std::fs::write(path, render(&entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_inverts_render() {
        let entries = vec![
            ("overhead_per_event/Online".to_string(), 2.5e-4),
            ("overhead_per_event/SRPT".to_string(), 1.0e-6),
        ];
        let mut round = parse(&render(&entries));
        round.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(round.len(), 2);
        assert!((round[0].1 - 2.5e-4).abs() < 1e-15);
    }

    #[test]
    fn upsert_merges_sections() {
        let dir = std::env::temp_dir().join("stretch_metrics_baseline_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_baseline.json");
        let _ = std::fs::remove_file(&path);
        upsert(&path, &[("a/x".to_string(), 1.0)]).unwrap();
        upsert(&path, &[("b/y".to_string(), 2.0), ("a/x".to_string(), 3.0)]).unwrap();
        let entries = parse(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(entries.len(), 2);
        assert_eq!(entries.iter().find(|(k, _)| k == "a/x").unwrap().1, 3.0);
        let _ = std::fs::remove_file(&path);
    }
}
