//! # stretch-metrics
//!
//! Objective functions and statistics for the scheduling experiments.
//!
//! §3 of the paper reviews the candidate objectives — makespan, flow,
//! weighted flow, stretch, in max- and sum- flavours — and argues for
//! max-stretch as the fairness metric of choice.  This crate computes all of
//! them from per-job outcomes, and implements the *degradation* statistics
//! used throughout the evaluation section: each heuristic's metric is divided
//! by the best (or optimal) value observed on the same instance, then
//! aggregated as mean / standard deviation / max over many instances —
//! exactly the columns of Tables 1–16.

pub mod aggregate;
pub mod baseline;
pub mod objectives;
pub mod outcome;
pub mod streaming;
pub mod table;

pub use aggregate::{AggregateStats, DegradationAccumulator};
pub use objectives::ScheduleMetrics;
pub use outcome::JobOutcome;
pub use streaming::{P2Quantile, StreamingDegradation, StreamingStats};
pub use table::{MetricsTable, TableRow};
