//! Per-job outcomes, the raw material of every metric.

/// What happened to one job in one simulated schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobOutcome {
    /// Job identifier (index in the instance).
    pub id: usize,
    /// Release date `r_j`.
    pub release: f64,
    /// Job size `W_j`, in the same unit for every job of the instance
    /// (megabytes of databank in the GriPPS scenario).
    pub work: f64,
    /// Reference processing time used as the stretch denominator: the time
    /// the job would take alone on the reference (equivalent) processor.
    pub reference_time: f64,
    /// Completion time `C_j` in the evaluated schedule.
    pub completion: f64,
}

impl JobOutcome {
    /// Creates an outcome, checking the basic sanity constraints
    /// (`C_j >= r_j`, positive work and reference time).
    pub fn new(id: usize, release: f64, work: f64, reference_time: f64, completion: f64) -> Self {
        assert!(work > 0.0, "work must be positive");
        assert!(reference_time > 0.0, "reference time must be positive");
        assert!(
            completion >= release - 1e-9,
            "completion {completion} before release {release}"
        );
        JobOutcome {
            id,
            release,
            work,
            reference_time,
            completion,
        }
    }

    /// Flow time `F_j = C_j - r_j`.
    pub fn flow(&self) -> f64 {
        (self.completion - self.release).max(0.0)
    }

    /// Stretch `S_j = F_j / p_j`, the slowdown the job experienced relative
    /// to having the reference processor to itself.
    ///
    /// A stretch below 1 is possible in the divisible multi-machine setting
    /// (several sites can serve the same job simultaneously), which is why
    /// the evaluation reports ratios to the best heuristic rather than
    /// absolute values.
    pub fn stretch(&self) -> f64 {
        self.flow() / self.reference_time
    }

    /// Weighted flow `w_j · F_j` for an arbitrary weight.
    pub fn weighted_flow(&self, weight: f64) -> f64 {
        weight * self.flow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_and_stretch() {
        let o = JobOutcome::new(0, 10.0, 50.0, 5.0, 25.0);
        assert_eq!(o.flow(), 15.0);
        assert_eq!(o.stretch(), 3.0);
        assert_eq!(o.weighted_flow(0.1), 1.5);
    }

    #[test]
    fn completion_at_release_gives_zero_flow() {
        let o = JobOutcome::new(0, 5.0, 1.0, 1.0, 5.0);
        assert_eq!(o.flow(), 0.0);
        assert_eq!(o.stretch(), 0.0);
    }

    #[test]
    #[should_panic(expected = "before release")]
    fn completion_before_release_rejected() {
        JobOutcome::new(0, 5.0, 1.0, 1.0, 4.0);
    }
}
