//! The objective functions of §3, computed from a set of job outcomes.

use crate::outcome::JobOutcome;

/// All the §3 metrics of one schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduleMetrics {
    /// Makespan `max_j C_j` (system-centric).
    pub makespan: f64,
    /// Maximum flow `max_j F_j`.
    pub max_flow: f64,
    /// Sum (total) flow `Σ_j F_j`.
    pub sum_flow: f64,
    /// Maximum stretch `max_j S_j` — the paper's metric of choice.
    pub max_stretch: f64,
    /// Sum stretch `Σ_j S_j`.
    pub sum_stretch: f64,
    /// Number of jobs in the schedule.
    pub num_jobs: usize,
}

impl ScheduleMetrics {
    /// Computes every metric from the per-job outcomes.
    ///
    /// Panics on an empty outcome set: an experiment without jobs has no
    /// well-defined stretch and indicates a bug in the harness.
    pub fn from_outcomes(outcomes: &[JobOutcome]) -> Self {
        assert!(
            !outcomes.is_empty(),
            "cannot compute metrics of an empty schedule"
        );
        let mut makespan: f64 = 0.0;
        let mut max_flow: f64 = 0.0;
        let mut sum_flow = 0.0;
        let mut max_stretch: f64 = 0.0;
        let mut sum_stretch = 0.0;
        for o in outcomes {
            makespan = makespan.max(o.completion);
            let flow = o.flow();
            let stretch = o.stretch();
            max_flow = max_flow.max(flow);
            sum_flow += flow;
            max_stretch = max_stretch.max(stretch);
            sum_stretch += stretch;
        }
        ScheduleMetrics {
            makespan,
            max_flow,
            sum_flow,
            max_stretch,
            sum_stretch,
            num_jobs: outcomes.len(),
        }
    }

    /// Mean flow `Σ F_j / n`.
    pub fn mean_flow(&self) -> f64 {
        self.sum_flow / self.num_jobs as f64
    }

    /// Mean stretch `Σ S_j / n`.
    pub fn mean_stretch(&self) -> f64 {
        self.sum_stretch / self.num_jobs as f64
    }

    /// Maximum weighted flow for arbitrary weights (generalisation used by
    /// the off-line solver); `weights[k]` must correspond to `outcomes[k]`.
    pub fn max_weighted_flow(outcomes: &[JobOutcome], weights: &[f64]) -> f64 {
        assert_eq!(outcomes.len(), weights.len());
        outcomes
            .iter()
            .zip(weights)
            .map(|(o, &w)| o.weighted_flow(w))
            .fold(0.0, f64::max)
    }

    /// Sum of weighted flows for arbitrary weights.
    pub fn sum_weighted_flow(outcomes: &[JobOutcome], weights: &[f64]) -> f64 {
        assert_eq!(outcomes.len(), weights.len());
        outcomes
            .iter()
            .zip(weights)
            .map(|(o, &w)| o.weighted_flow(w))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcomes() -> Vec<JobOutcome> {
        vec![
            // id, release, work, reference_time, completion
            JobOutcome::new(0, 0.0, 10.0, 1.0, 2.0), // flow 2, stretch 2
            JobOutcome::new(1, 1.0, 20.0, 2.0, 5.0), // flow 4, stretch 2
            JobOutcome::new(2, 2.0, 5.0, 0.5, 3.0),  // flow 1, stretch 2
        ]
    }

    #[test]
    fn all_metrics() {
        let m = ScheduleMetrics::from_outcomes(&outcomes());
        assert_eq!(m.makespan, 5.0);
        assert_eq!(m.max_flow, 4.0);
        assert_eq!(m.sum_flow, 7.0);
        assert_eq!(m.max_stretch, 2.0);
        assert_eq!(m.sum_stretch, 6.0);
        assert_eq!(m.num_jobs, 3);
        assert!((m.mean_flow() - 7.0 / 3.0).abs() < 1e-12);
        assert!((m.mean_stretch() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_flow_generalisation() {
        let o = outcomes();
        let weights = [1.0, 0.5, 2.0];
        assert_eq!(ScheduleMetrics::max_weighted_flow(&o, &weights), 2.0);
        assert_eq!(
            ScheduleMetrics::sum_weighted_flow(&o, &weights),
            2.0 + 2.0 + 2.0
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_outcomes_rejected() {
        ScheduleMetrics::from_outcomes(&[]);
    }
}
