//! Degradation statistics across many instances (the columns of Tables 1–16).

/// Mean / standard deviation / max summary of a series of ratios.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AggregateStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub sd: f64,
    /// Maximum.
    pub max: f64,
    /// Number of samples aggregated.
    pub count: usize,
}

impl AggregateStats {
    /// Computes the summary of a nonempty sample.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot aggregate an empty sample");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        AggregateStats {
            mean,
            sd: var.sqrt(),
            max,
            count: samples.len(),
        }
    }
}

/// Accumulates, per heuristic, the ratio of its metric to the best value
/// observed on each instance — the *degradation from best* of the paper's
/// tables (the off-line optimal plays the role of "best" for max-stretch).
#[derive(Clone, Debug, Default)]
pub struct DegradationAccumulator {
    names: Vec<String>,
    samples: Vec<Vec<f64>>,
}

impl DegradationAccumulator {
    /// Creates an accumulator for the given heuristic names.
    pub fn new(names: &[&str]) -> Self {
        DegradationAccumulator {
            names: names.iter().map(|s| s.to_string()).collect(),
            samples: vec![Vec::new(); names.len()],
        }
    }

    /// Heuristic names, in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Records one instance: `values[k]` is the metric achieved by heuristic
    /// `k`.  Each heuristic's sample becomes `value / reference` where
    /// `reference` is either the supplied baseline (e.g. the optimal) or, if
    /// `None`, the best value among the heuristics themselves.
    ///
    /// Non-finite values (a heuristic that failed on this instance) are
    /// skipped: no sample is recorded for that heuristic.
    pub fn record(&mut self, values: &[f64], reference: Option<f64>) {
        assert_eq!(values.len(), self.names.len(), "one value per heuristic");
        let finite_min = values
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(f64::INFINITY, f64::min);
        let reference = reference.unwrap_or(finite_min);
        if !reference.is_finite() || reference <= 0.0 {
            return;
        }
        for (k, &v) in values.iter().enumerate() {
            if v.is_finite() {
                self.samples[k].push(v / reference);
            }
        }
    }

    /// Number of instances recorded for heuristic `k`.
    pub fn count(&self, k: usize) -> usize {
        self.samples[k].len()
    }

    /// Aggregate statistics for heuristic `k`, or `None` when it never
    /// produced a finite value.
    pub fn stats(&self, k: usize) -> Option<AggregateStats> {
        if self.samples[k].is_empty() {
            None
        } else {
            Some(AggregateStats::from_samples(&self.samples[k]))
        }
    }

    /// All per-heuristic statistics, in column order.
    pub fn all_stats(&self) -> Vec<(String, Option<AggregateStats>)> {
        self.names
            .iter()
            .cloned()
            .zip((0..self.samples.len()).map(|k| self.stats(k)))
            .collect()
    }

    /// Merges another accumulator (same heuristics, e.g. from a parallel
    /// worker) into this one.
    pub fn merge(&mut self, other: &DegradationAccumulator) {
        assert_eq!(
            self.names, other.names,
            "accumulators must share heuristics"
        );
        for (mine, theirs) in self.samples.iter_mut().zip(&other.samples) {
            mine.extend_from_slice(theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_stats_basics() {
        let s = AggregateStats::from_samples(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.sd - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn degradation_relative_to_best() {
        let mut acc = DegradationAccumulator::new(&["a", "b"]);
        acc.record(&[2.0, 4.0], None);
        acc.record(&[3.0, 3.0], None);
        let a = acc.stats(0).unwrap();
        let b = acc.stats(1).unwrap();
        assert!((a.mean - 1.0).abs() < 1e-12);
        assert!((b.mean - 1.5).abs() < 1e-12);
        assert_eq!(b.max, 2.0);
    }

    #[test]
    fn degradation_relative_to_optimal_reference() {
        let mut acc = DegradationAccumulator::new(&["a"]);
        acc.record(&[3.0], Some(2.0));
        assert!((acc.stats(0).unwrap().mean - 1.5).abs() < 1e-12);
    }

    #[test]
    fn non_finite_values_are_skipped() {
        let mut acc = DegradationAccumulator::new(&["a", "b"]);
        acc.record(&[f64::INFINITY, 2.0], None);
        assert_eq!(acc.count(0), 0);
        assert_eq!(acc.count(1), 1);
        assert!(acc.stats(0).is_none());
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = DegradationAccumulator::new(&["h"]);
        a.record(&[2.0], Some(1.0));
        let mut b = DegradationAccumulator::new(&["h"]);
        b.record(&[4.0], Some(1.0));
        a.merge(&b);
        let s = a.stats(0).unwrap();
        assert_eq!(s.count, 2);
        assert!((s.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_rejected() {
        AggregateStats::from_samples(&[]);
    }
}
