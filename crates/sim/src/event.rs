//! A deterministic time-ordered event queue.
//!
//! The fluid engine mostly derives its events analytically (next release /
//! next completion), but schedulers that want to re-evaluate their allocation
//! at chosen instants (e.g. interval boundaries of the System-(2) plan) push
//! *checkpoints* through this queue.  Ties are broken by insertion order so
//! simulations are reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a given simulated time carrying a payload.
#[derive(Clone, Debug)]
struct QueuedEvent<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for QueuedEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for QueuedEvent<T> {}

impl<T> Ord for QueuedEvent<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to pop the earliest event first,
        // breaking ties by insertion sequence for determinism.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for QueuedEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-priority queue of `(time, payload)` events with FIFO tie-breaking.
#[derive(Clone, Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<QueuedEvent<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: f64, payload: T) {
        assert!(time.is_finite(), "event time must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent { time, seq, payload });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no event is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(1.0, 1);
        q.push(1.0, 2);
        q.push(1.0, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.push(0.5, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_non_finite_times() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }
}
