//! # stretch-sim
//!
//! A discrete-event **fluid** simulation engine for divisible-load scheduling.
//! It plays the role SimGrid plays in the paper's evaluation: given a set of
//! machines, a set of jobs (release date + amount of work) and a scheduling
//! *policy*, it computes the exact completion time of every job.
//!
//! The model is the one of §2 of the paper:
//!
//! * jobs are **divisible**: at any instant a job may be processed by any
//!   number of machines simultaneously, each contributing work at its own
//!   speed;
//! * **preemption is free**: the allocation can change at any event;
//! * **communication is negligible**: moving a job between machines costs
//!   nothing.
//!
//! The engine is *event driven*: between two events (job release, job
//!   completion, or a policy-requested checkpoint) the allocation is constant,
//! so remaining work decreases linearly and the next completion is computed
//! in closed form — no time stepping, no rounding drift proportional to a
//! step size.
//!
//! The engine knows nothing about databanks or clusters; eligibility
//! restrictions are entirely the policy's business (the policy simply never
//! allocates an ineligible machine to a job).

pub mod engine;
pub mod event;
pub mod policy;
pub mod trace;
pub mod world;

pub use engine::{EngineError, FluidEngine};
pub use policy::{Allocation, RatePolicy};
pub use trace::{CompletionRecord, ExecutionTrace, Segment};
pub use world::{JobSpec, JobState, MachineSpec, MachineState};

/// Numerical tolerance on simulated time and remaining work.
pub const SIM_EPS: f64 = 1e-9;
