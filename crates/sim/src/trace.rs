//! Execution traces produced by the fluid engine.

/// A constant-allocation slice of the execution: between `start` and `end`,
/// machine `machine` devoted a fraction `share` of its time to job `job`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Machine position (index in the engine's machine array).
    pub machine: usize,
    /// Job position (index in the engine's job array).
    pub job: usize,
    /// Start of the slice (seconds).
    pub start: f64,
    /// End of the slice (seconds).
    pub end: f64,
    /// Fraction of the machine devoted to the job during the slice.
    pub share: f64,
}

impl Segment {
    /// Amount of work performed during the slice on a machine of speed `speed`.
    pub fn work_done(&self, speed: f64) -> f64 {
        (self.end - self.start) * self.share * speed
    }
}

/// Completion record for one job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompletionRecord {
    /// Job position.
    pub job: usize,
    /// The caller-supplied job identifier.
    pub job_id: usize,
    /// Release date `r_j`.
    pub release: f64,
    /// Total work `W_j`.
    pub work: f64,
    /// Completion time `C_j`.
    pub completion: f64,
}

impl CompletionRecord {
    /// Flow time `F_j = C_j - r_j`.
    pub fn flow(&self) -> f64 {
        self.completion - self.release
    }
}

/// The full output of a simulation run.
#[derive(Clone, Debug, Default)]
pub struct ExecutionTrace {
    /// Per-job completion records, in job-array order.
    pub completions: Vec<CompletionRecord>,
    /// Constant-allocation segments (only recorded when tracing is enabled).
    pub segments: Vec<Segment>,
    /// Number of events processed by the engine.
    pub events: usize,
    /// Time of the last completion (the makespan of the schedule).
    pub makespan: f64,
}

impl ExecutionTrace {
    /// Completion time of job at position `job`.
    pub fn completion_of(&self, job: usize) -> Option<f64> {
        self.completions
            .iter()
            .find(|c| c.job == job)
            .map(|c| c.completion)
    }

    /// Total work executed for `job` according to the recorded segments
    /// (requires segment tracing; `speeds` maps machine position to speed).
    pub fn executed_work(&self, job: usize, speeds: &[f64]) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.job == job)
            .map(|s| s.work_done(speeds[s.machine]))
            .sum()
    }

    /// Checks that no machine is ever allocated more than 100 % (within
    /// `tol`); only meaningful when segment tracing is enabled.
    pub fn machines_never_oversubscribed(&self, num_machines: usize, tol: f64) -> bool {
        // Collect segment boundaries and test the load of each machine on
        // every elementary interval.
        let mut times: Vec<f64> = self
            .segments
            .iter()
            .flat_map(|s| [s.start, s.end])
            .collect();
        times.sort_by(|a, b| a.total_cmp(b));
        times.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        for w in times.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let mid = 0.5 * (lo + hi);
            for m in 0..num_machines {
                let load: f64 = self
                    .segments
                    .iter()
                    .filter(|s| s.machine == m && s.start <= mid && mid < s.end)
                    .map(|s| s.share)
                    .sum();
                if load > 1.0 + tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_work_and_flow() {
        let s = Segment {
            machine: 0,
            job: 1,
            start: 2.0,
            end: 5.0,
            share: 0.5,
        };
        assert!((s.work_done(4.0) - 6.0).abs() < 1e-12);

        let c = CompletionRecord {
            job: 1,
            job_id: 10,
            release: 2.0,
            work: 6.0,
            completion: 5.0,
        };
        assert_eq!(c.flow(), 3.0);
    }

    #[test]
    fn executed_work_sums_segments() {
        let trace = ExecutionTrace {
            completions: vec![],
            segments: vec![
                Segment {
                    machine: 0,
                    job: 0,
                    start: 0.0,
                    end: 1.0,
                    share: 1.0,
                },
                Segment {
                    machine: 1,
                    job: 0,
                    start: 0.0,
                    end: 2.0,
                    share: 0.5,
                },
                Segment {
                    machine: 0,
                    job: 1,
                    start: 1.0,
                    end: 2.0,
                    share: 1.0,
                },
            ],
            events: 0,
            makespan: 2.0,
        };
        let speeds = [2.0, 1.0];
        assert!((trace.executed_work(0, &speeds) - (2.0 + 1.0)).abs() < 1e-12);
        assert!((trace.executed_work(1, &speeds) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn oversubscription_detection() {
        let ok = ExecutionTrace {
            segments: vec![
                Segment {
                    machine: 0,
                    job: 0,
                    start: 0.0,
                    end: 1.0,
                    share: 0.6,
                },
                Segment {
                    machine: 0,
                    job: 1,
                    start: 0.0,
                    end: 1.0,
                    share: 0.4,
                },
            ],
            ..Default::default()
        };
        assert!(ok.machines_never_oversubscribed(1, 1e-9));
        let bad = ExecutionTrace {
            segments: vec![
                Segment {
                    machine: 0,
                    job: 0,
                    start: 0.0,
                    end: 1.0,
                    share: 0.8,
                },
                Segment {
                    machine: 0,
                    job: 1,
                    start: 0.5,
                    end: 1.0,
                    share: 0.5,
                },
            ],
            ..Default::default()
        };
        assert!(!bad.machines_never_oversubscribed(1, 1e-9));
    }
}
