//! The policy interface the fluid engine drives.

use crate::world::{JobState, MachineState};

/// A share assignment decided by a policy, valid until the next event.
///
/// Each entry `(machine_index, job_index, share)` means *machine
/// `machine_index` devotes a fraction `share` of its time to job
/// `job_index`*.  Shares for a machine must sum to at most 1; a job's total
/// processing rate is `Σ share · speed` over the machines allocated to it
/// (divisible load: simultaneous execution on several machines is allowed).
///
/// Indices refer to positions in the engine's machine and job arrays (the
/// order in which specs were supplied), not to the opaque `id` fields.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Allocation {
    shares: Vec<(usize, usize, f64)>,
}

impl Allocation {
    /// An empty allocation (every machine idle).
    pub fn idle() -> Self {
        Allocation { shares: Vec::new() }
    }

    /// Creates an allocation from raw `(machine, job, share)` triples.
    pub fn from_shares(shares: Vec<(usize, usize, f64)>) -> Self {
        Allocation { shares }
    }

    /// Adds a share of `machine` devoted to `job`.
    pub fn assign(&mut self, machine: usize, job: usize, share: f64) -> &mut Self {
        assert!(
            share >= 0.0 && share.is_finite(),
            "share must be nonnegative"
        );
        if share > 0.0 {
            self.shares.push((machine, job, share));
        }
        self
    }

    /// Dedicates the whole of `machine` to `job`.
    pub fn assign_full(&mut self, machine: usize, job: usize) -> &mut Self {
        self.assign(machine, job, 1.0)
    }

    /// Iterates over `(machine, job, share)` triples.
    pub fn shares(&self) -> &[(usize, usize, f64)] {
        &self.shares
    }

    /// `true` when nothing is allocated.
    pub fn is_idle(&self) -> bool {
        self.shares.is_empty()
    }

    /// Total share handed to each machine (indexed by machine position).
    pub fn machine_loads(&self, num_machines: usize) -> Vec<f64> {
        let mut loads = vec![0.0; num_machines];
        for &(m, _, s) in &self.shares {
            loads[m] += s;
        }
        loads
    }

    /// Processing rate (work per second) each job receives under this
    /// allocation, given the machine states.
    pub fn job_rates(&self, machines: &[MachineState], num_jobs: usize) -> Vec<f64> {
        let mut rates = vec![0.0; num_jobs];
        for &(m, j, s) in &self.shares {
            rates[j] += s * machines[m].spec.speed;
        }
        rates
    }
}

/// A scheduling policy driven by the fluid engine.
///
/// The engine calls [`RatePolicy::allocate`] at every event (job release, job
/// completion, requested checkpoint) and keeps the returned allocation
/// constant until the next event.
pub trait RatePolicy {
    /// Decides the machine shares at time `now`.
    ///
    /// `jobs` contains *all* jobs (released or not, completed or not) so that
    /// clairvoyant policies (the off-line optimal) can look ahead; honest
    /// on-line policies must only inspect jobs with `released == true`.
    fn allocate(&mut self, now: f64, jobs: &[JobState], machines: &[MachineState]) -> Allocation;

    /// The next instant at which the policy wants to be re-invoked even if no
    /// release/completion occurs (e.g. an interval boundary of a precomputed
    /// plan).  `None` means "only wake me on releases and completions".
    fn next_checkpoint(&self, _now: f64) -> Option<f64> {
        None
    }

    /// A short human-readable name used in traces and experiment tables.
    fn name(&self) -> &str {
        "unnamed-policy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{MachineSpec, MachineState};

    fn machines(speeds: &[f64]) -> Vec<MachineState> {
        speeds
            .iter()
            .enumerate()
            .map(|(i, &s)| MachineState {
                spec: MachineSpec::new(i, s),
                utilisation: 0.0,
            })
            .collect()
    }

    #[test]
    fn job_rates_accumulate_over_machines() {
        let ms = machines(&[2.0, 3.0]);
        let mut a = Allocation::idle();
        a.assign(0, 0, 1.0).assign(1, 0, 0.5).assign(1, 1, 0.5);
        let rates = a.job_rates(&ms, 2);
        assert!((rates[0] - (2.0 + 1.5)).abs() < 1e-12);
        assert!((rates[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn machine_loads_accumulate_over_jobs() {
        let mut a = Allocation::idle();
        a.assign(0, 0, 0.25).assign(0, 1, 0.5);
        let loads = a.machine_loads(2);
        assert!((loads[0] - 0.75).abs() < 1e-12);
        assert_eq!(loads[1], 0.0);
    }

    #[test]
    fn zero_shares_are_dropped() {
        let mut a = Allocation::idle();
        a.assign(0, 0, 0.0);
        assert!(a.is_idle());
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_share_rejected() {
        Allocation::idle().assign(0, 0, -0.5);
    }
}
