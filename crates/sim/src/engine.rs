//! The event-driven fluid engine.

use crate::policy::RatePolicy;
use crate::trace::{CompletionRecord, ExecutionTrace, Segment};
use crate::world::{JobSpec, JobState, MachineSpec, MachineState};
use crate::SIM_EPS;

/// Errors the engine can report.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// The policy allocated a machine or job index that does not exist.
    InvalidIndex {
        /// Machine index in the faulty share.
        machine: usize,
        /// Job index in the faulty share.
        job: usize,
    },
    /// The policy allocated work to a job that is not released or is done.
    InactiveJob {
        /// Index of the faulty job.
        job: usize,
    },
    /// A machine was allocated more than 100 % of its time.
    Oversubscribed {
        /// Index of the oversubscribed machine.
        machine: usize,
        /// Total share that was requested.
        load: f64,
    },
    /// Jobs remain but no allocation, release or checkpoint can advance time.
    Stalled {
        /// Simulated time at which progress stopped.
        at: f64,
    },
    /// Defensive bound on the number of processed events was exceeded.
    TooManyEvents,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidIndex { machine, job } => {
                write!(
                    f,
                    "allocation references invalid machine {machine} or job {job}"
                )
            }
            EngineError::InactiveJob { job } => {
                write!(f, "allocation gives work to inactive job {job}")
            }
            EngineError::Oversubscribed { machine, load } => {
                write!(f, "machine {machine} allocated {load} > 1.0")
            }
            EngineError::Stalled { at } => {
                write!(
                    f,
                    "simulation stalled at t = {at}: active jobs but no progress possible"
                )
            }
            EngineError::TooManyEvents => write!(f, "event budget exceeded"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The fluid divisible-load simulator.
#[derive(Clone, Debug)]
pub struct FluidEngine {
    machines: Vec<MachineState>,
    jobs: Vec<JobState>,
    record_segments: bool,
    max_events: usize,
}

impl FluidEngine {
    /// Creates an engine over the given machines and jobs.
    pub fn new(machines: Vec<MachineSpec>, jobs: Vec<JobSpec>) -> Self {
        let machines = machines
            .into_iter()
            .map(|spec| MachineState {
                spec,
                utilisation: 0.0,
            })
            .collect();
        let jobs: Vec<JobState> = jobs.into_iter().map(JobState::new).collect();
        let n = jobs.len().max(1);
        FluidEngine {
            machines,
            jobs,
            record_segments: false,
            // Each event either completes a job, releases a job, or is a
            // policy checkpoint; quadratic slack is plenty for the policies in
            // this workspace and still catches runaway loops.
            max_events: 200 * n * n + 10_000,
        }
    }

    /// Enables recording of per-interval segments in the trace (needed by the
    /// conservation/oversubscription checks; off by default to save memory).
    pub fn with_segment_tracing(mut self, enabled: bool) -> Self {
        self.record_segments = enabled;
        self
    }

    /// Overrides the defensive event budget.
    pub fn with_event_budget(mut self, budget: usize) -> Self {
        self.max_events = budget;
        self
    }

    /// Read access to the job states (mainly for tests and policies built on
    /// top of a partially run engine).
    pub fn jobs(&self) -> &[JobState] {
        &self.jobs
    }

    /// Read access to the machine states.
    pub fn machines(&self) -> &[MachineState] {
        &self.machines
    }

    /// Runs the simulation to completion under `policy`.
    pub fn run(&mut self, policy: &mut dyn RatePolicy) -> Result<ExecutionTrace, EngineError> {
        let mut trace = ExecutionTrace::default();
        if self.jobs.is_empty() {
            return Ok(trace);
        }

        // Start the clock at the earliest release date.
        let mut now = self
            .jobs
            .iter()
            .map(|j| j.spec.release)
            .fold(f64::INFINITY, f64::min);
        self.mark_releases(now);
        self.sweep_completions(now, &mut trace);

        while self.jobs.iter().any(|j| j.completion.is_none()) {
            trace.events += 1;
            if trace.events > self.max_events {
                return Err(EngineError::TooManyEvents);
            }

            let allocation = policy.allocate(now, &self.jobs, &self.machines);
            self.validate(&allocation)?;
            let rates = allocation.job_rates(&self.machines, self.jobs.len());
            for (m, load) in allocation
                .machine_loads(self.machines.len())
                .into_iter()
                .enumerate()
            {
                self.machines[m].utilisation = load;
            }

            // Next release of a not-yet-released job.
            let next_release = self
                .jobs
                .iter()
                .filter(|j| !j.released)
                .map(|j| j.spec.release)
                .fold(f64::INFINITY, f64::min);
            // Next completion under the current rates.
            let next_completion = self
                .jobs
                .iter()
                .enumerate()
                .filter(|(_, j)| j.is_active())
                .filter(|(idx, _)| rates[*idx] > SIM_EPS)
                .map(|(idx, j)| now + j.remaining / rates[idx])
                .fold(f64::INFINITY, f64::min);
            // Next policy checkpoint strictly after `now`.
            let next_checkpoint = policy
                .next_checkpoint(now)
                .filter(|&t| t > now + SIM_EPS)
                .unwrap_or(f64::INFINITY);

            let next_event = next_release.min(next_completion).min(next_checkpoint);
            if !next_event.is_finite() {
                return Err(EngineError::Stalled { at: now });
            }

            let dt = (next_event - now).max(0.0);
            if dt > 0.0 {
                for (idx, job) in self.jobs.iter_mut().enumerate() {
                    if job.is_active() && rates[idx] > SIM_EPS {
                        job.remaining = (job.remaining - rates[idx] * dt).max(0.0);
                    }
                }
                if self.record_segments {
                    for &(m, j, share) in allocation.shares() {
                        trace.segments.push(Segment {
                            machine: m,
                            job: j,
                            start: now,
                            end: next_event,
                            share,
                        });
                    }
                }
            }
            now = next_event;
            self.mark_releases(now);
            self.sweep_completions(now, &mut trace);
        }

        trace.makespan = trace
            .completions
            .iter()
            .map(|c| c.completion)
            .fold(0.0, f64::max);
        Ok(trace)
    }

    fn mark_releases(&mut self, now: f64) {
        for job in &mut self.jobs {
            if !job.released && job.spec.release <= now + SIM_EPS {
                job.released = true;
            }
        }
    }

    fn sweep_completions(&mut self, now: f64, trace: &mut ExecutionTrace) {
        for (idx, job) in self.jobs.iter_mut().enumerate() {
            if job.released && job.completion.is_none() && job.remaining <= SIM_EPS {
                job.remaining = 0.0;
                job.completion = Some(now);
                trace.completions.push(CompletionRecord {
                    job: idx,
                    job_id: job.spec.id,
                    release: job.spec.release,
                    work: job.spec.work,
                    completion: now,
                });
            }
        }
    }

    fn validate(&self, allocation: &crate::policy::Allocation) -> Result<(), EngineError> {
        let mut loads = vec![0.0; self.machines.len()];
        for &(m, j, share) in allocation.shares() {
            if m >= self.machines.len() || j >= self.jobs.len() {
                return Err(EngineError::InvalidIndex { machine: m, job: j });
            }
            if !self.jobs[j].is_active() {
                return Err(EngineError::InactiveJob { job: j });
            }
            loads[m] += share;
        }
        for (m, &load) in loads.iter().enumerate() {
            if load > 1.0 + 1e-6 {
                return Err(EngineError::Oversubscribed { machine: m, load });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Allocation, RatePolicy};

    /// Serve the lowest-index active job on every machine (a trivial policy
    /// exercising preemption and divisibility).
    struct LowestIndexFirst;
    impl RatePolicy for LowestIndexFirst {
        fn allocate(
            &mut self,
            _now: f64,
            jobs: &[JobState],
            machines: &[MachineState],
        ) -> Allocation {
            let mut a = Allocation::idle();
            if let Some((idx, _)) = jobs.iter().enumerate().find(|(_, j)| j.is_active()) {
                for m in 0..machines.len() {
                    a.assign_full(m, idx);
                }
            }
            a
        }
        fn name(&self) -> &str {
            "lowest-index-first"
        }
    }

    /// Processor-sharing: split every machine equally among active jobs.
    struct ProcessorSharing;
    impl RatePolicy for ProcessorSharing {
        fn allocate(
            &mut self,
            _now: f64,
            jobs: &[JobState],
            machines: &[MachineState],
        ) -> Allocation {
            let active: Vec<usize> = jobs
                .iter()
                .enumerate()
                .filter(|(_, j)| j.is_active())
                .map(|(i, _)| i)
                .collect();
            let mut a = Allocation::idle();
            if active.is_empty() {
                return a;
            }
            let share = 1.0 / active.len() as f64;
            for m in 0..machines.len() {
                for &j in &active {
                    a.assign(m, j, share);
                }
            }
            a
        }
    }

    fn machines(speeds: &[f64]) -> Vec<MachineSpec> {
        speeds
            .iter()
            .enumerate()
            .map(|(i, &s)| MachineSpec::new(i, s))
            .collect()
    }

    #[test]
    fn single_job_single_machine() {
        let mut engine = FluidEngine::new(machines(&[2.0]), vec![JobSpec::new(0, 1.0, 10.0)]);
        let trace = engine.run(&mut LowestIndexFirst).unwrap();
        // Released at 1, 10 units of work at speed 2 -> completes at 6.
        assert!((trace.completion_of(0).unwrap() - 6.0).abs() < 1e-9);
        assert!((trace.makespan - 6.0).abs() < 1e-9);
    }

    #[test]
    fn divisible_job_uses_aggregate_speed() {
        // Lemma 1: several machines act as one of speed Σ 1/p_i.
        let mut engine =
            FluidEngine::new(machines(&[1.0, 2.0, 3.0]), vec![JobSpec::new(0, 0.0, 12.0)]);
        let trace = engine.run(&mut LowestIndexFirst).unwrap();
        assert!((trace.completion_of(0).unwrap() - 12.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_jobs_queue_behind_each_other() {
        let mut engine = FluidEngine::new(
            machines(&[1.0]),
            vec![JobSpec::new(0, 0.0, 4.0), JobSpec::new(1, 0.0, 2.0)],
        );
        let trace = engine.run(&mut LowestIndexFirst).unwrap();
        assert!((trace.completion_of(0).unwrap() - 4.0).abs() < 1e-9);
        assert!((trace.completion_of(1).unwrap() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn idle_gap_before_late_release_is_skipped() {
        let mut engine = FluidEngine::new(machines(&[1.0]), vec![JobSpec::new(0, 5.0, 1.0)]);
        let trace = engine.run(&mut LowestIndexFirst).unwrap();
        assert!((trace.completion_of(0).unwrap() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn zero_work_job_completes_at_release() {
        let mut engine = FluidEngine::new(
            machines(&[1.0]),
            vec![JobSpec::new(0, 2.0, 0.0), JobSpec::new(1, 0.0, 3.0)],
        );
        let trace = engine.run(&mut LowestIndexFirst).unwrap();
        assert!((trace.completion_of(0).unwrap() - 2.0).abs() < 1e-9);
        assert!((trace.completion_of(1).unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn processor_sharing_work_conservation() {
        let jobs = vec![
            JobSpec::new(0, 0.0, 3.0),
            JobSpec::new(1, 0.5, 2.0),
            JobSpec::new(2, 1.0, 1.0),
        ];
        let mut engine =
            FluidEngine::new(machines(&[1.0, 0.5]), jobs.clone()).with_segment_tracing(true);
        let trace = engine.run(&mut ProcessorSharing).unwrap();
        let speeds = [1.0, 0.5];
        for (idx, job) in jobs.iter().enumerate() {
            let executed = trace.executed_work(idx, &speeds);
            assert!(
                (executed - job.work).abs() < 1e-6,
                "job {idx}: executed {executed} of {}",
                job.work
            );
        }
        assert!(trace.machines_never_oversubscribed(2, 1e-6));
        // All completions recorded.
        assert_eq!(trace.completions.len(), 3);
    }

    #[test]
    fn stalls_when_policy_never_allocates() {
        struct Lazy;
        impl RatePolicy for Lazy {
            fn allocate(&mut self, _: f64, _: &[JobState], _: &[MachineState]) -> Allocation {
                Allocation::idle()
            }
        }
        let mut engine = FluidEngine::new(machines(&[1.0]), vec![JobSpec::new(0, 0.0, 1.0)]);
        assert!(matches!(
            engine.run(&mut Lazy),
            Err(EngineError::Stalled { .. })
        ));
    }

    #[test]
    fn rejects_oversubscription() {
        struct Greedy;
        impl RatePolicy for Greedy {
            fn allocate(&mut self, _: f64, jobs: &[JobState], _: &[MachineState]) -> Allocation {
                let mut a = Allocation::idle();
                for (i, j) in jobs.iter().enumerate() {
                    if j.is_active() {
                        a.assign(0, i, 1.0);
                    }
                }
                a
            }
        }
        let mut engine = FluidEngine::new(
            machines(&[1.0]),
            vec![JobSpec::new(0, 0.0, 1.0), JobSpec::new(1, 0.0, 1.0)],
        );
        assert!(matches!(
            engine.run(&mut Greedy),
            Err(EngineError::Oversubscribed { .. })
        ));
    }

    #[test]
    fn rejects_allocation_to_unreleased_job() {
        struct Clairvoyant;
        impl RatePolicy for Clairvoyant {
            fn allocate(&mut self, _: f64, _: &[JobState], _: &[MachineState]) -> Allocation {
                let mut a = Allocation::idle();
                a.assign(0, 1, 1.0); // job 1 is released much later
                a
            }
        }
        let mut engine = FluidEngine::new(
            machines(&[1.0]),
            vec![JobSpec::new(0, 0.0, 1.0), JobSpec::new(1, 100.0, 1.0)],
        );
        assert!(matches!(
            engine.run(&mut Clairvoyant),
            Err(EngineError::InactiveJob { job: 1 })
        ));
    }

    #[test]
    fn rejects_out_of_range_indices() {
        struct Bad;
        impl RatePolicy for Bad {
            fn allocate(&mut self, _: f64, _: &[JobState], _: &[MachineState]) -> Allocation {
                let mut a = Allocation::idle();
                a.assign(7, 0, 1.0);
                a
            }
        }
        let mut engine = FluidEngine::new(machines(&[1.0]), vec![JobSpec::new(0, 0.0, 1.0)]);
        assert!(matches!(
            engine.run(&mut Bad),
            Err(EngineError::InvalidIndex { .. })
        ));
    }

    #[test]
    fn empty_job_list_gives_empty_trace() {
        let mut engine = FluidEngine::new(machines(&[1.0]), vec![]);
        let trace = engine.run(&mut LowestIndexFirst).unwrap();
        assert!(trace.completions.is_empty());
        assert_eq!(trace.makespan, 0.0);
    }

    #[test]
    fn event_budget_is_enforced() {
        let mut engine = FluidEngine::new(
            machines(&[1.0]),
            vec![JobSpec::new(0, 0.0, 1.0), JobSpec::new(1, 0.25, 1.0)],
        )
        .with_event_budget(1);
        assert!(matches!(
            engine.run(&mut LowestIndexFirst),
            Err(EngineError::TooManyEvents)
        ));
    }
}
