//! Static descriptions (specs) and dynamic states of machines and jobs.

/// Static description of a machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineSpec {
    /// Opaque identifier chosen by the caller (e.g. index into a platform).
    pub id: usize,
    /// Processing speed in units of work per second (`1 / p_i` in the paper's
    /// notation, where `p_i` is in seconds per unit of work).
    pub speed: f64,
}

impl MachineSpec {
    /// Creates a machine spec; `speed` must be strictly positive and finite.
    pub fn new(id: usize, speed: f64) -> Self {
        assert!(
            speed > 0.0 && speed.is_finite(),
            "machine speed must be positive"
        );
        MachineSpec { id, speed }
    }
}

/// Static description of a job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobSpec {
    /// Opaque identifier chosen by the caller.
    pub id: usize,
    /// Release date `r_j` (seconds).
    pub release: f64,
    /// Total amount of work `W_j` (e.g. Mflop); must be nonnegative.
    pub work: f64,
}

impl JobSpec {
    /// Creates a job spec with basic validity checks.
    pub fn new(id: usize, release: f64, work: f64) -> Self {
        assert!(
            release >= 0.0 && release.is_finite(),
            "release date must be nonnegative"
        );
        assert!(work >= 0.0 && work.is_finite(), "work must be nonnegative");
        JobSpec { id, release, work }
    }
}

/// Dynamic state of a machine during a simulation.
#[derive(Clone, Copy, Debug)]
pub struct MachineState {
    /// The immutable spec.
    pub spec: MachineSpec,
    /// Fraction of the machine currently allocated (sum of shares), in `[0, 1]`.
    pub utilisation: f64,
}

/// Dynamic state of a job during a simulation.
#[derive(Clone, Copy, Debug)]
pub struct JobState {
    /// The immutable spec.
    pub spec: JobSpec,
    /// Remaining amount of work.
    pub remaining: f64,
    /// `true` once `release <= now`.
    pub released: bool,
    /// Completion time, if the job has finished.
    pub completion: Option<f64>,
}

impl JobState {
    /// Creates the initial state for a job spec.
    pub fn new(spec: JobSpec) -> Self {
        JobState {
            spec,
            remaining: spec.work,
            released: false,
            completion: None,
        }
    }

    /// `true` when the job is released and not yet completed.
    pub fn is_active(&self) -> bool {
        self.released && self.completion.is_none()
    }

    /// Original processing time on a machine of the given speed.
    pub fn processing_time(&self, speed: f64) -> f64 {
        self.spec.work / speed
    }

    /// Remaining processing time on a machine of the given speed.
    pub fn remaining_time(&self, speed: f64) -> f64 {
        self.remaining / speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_state_lifecycle() {
        let spec = JobSpec::new(3, 1.0, 10.0);
        let mut s = JobState::new(spec);
        assert!(!s.is_active());
        s.released = true;
        assert!(s.is_active());
        s.completion = Some(5.0);
        assert!(!s.is_active());
    }

    #[test]
    fn processing_times_scale_with_speed() {
        let s = JobState::new(JobSpec::new(0, 0.0, 12.0));
        assert_eq!(s.processing_time(4.0), 3.0);
        assert_eq!(s.remaining_time(2.0), 6.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_machine_rejected() {
        MachineSpec::new(0, 0.0);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_work_rejected() {
        JobSpec::new(0, 0.0, -1.0);
    }
}
