//! Property-based tests of the fluid engine: work conservation, completion
//! ordering, and oversubscription rejection on randomly generated worlds and
//! processor-sharing policies.

use proptest::prelude::*;
use stretch_sim::{
    Allocation, FluidEngine, JobSpec, JobState, MachineSpec, MachineState, RatePolicy,
};

/// Equal processor sharing among all active jobs.
struct ProcessorSharing;
impl RatePolicy for ProcessorSharing {
    fn allocate(&mut self, _now: f64, jobs: &[JobState], machines: &[MachineState]) -> Allocation {
        let active: Vec<usize> = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.is_active())
            .map(|(i, _)| i)
            .collect();
        let mut a = Allocation::idle();
        if active.is_empty() {
            return a;
        }
        let share = 1.0 / active.len() as f64;
        for m in 0..machines.len() {
            for &j in &active {
                a.assign(m, j, share);
            }
        }
        a
    }
}

/// Serve the job with the least remaining work on every machine.
struct GreedySrpt;
impl RatePolicy for GreedySrpt {
    fn allocate(&mut self, _now: f64, jobs: &[JobState], machines: &[MachineState]) -> Allocation {
        let best = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.is_active())
            .min_by(|a, b| a.1.remaining.total_cmp(&b.1.remaining))
            .map(|(i, _)| i);
        let mut a = Allocation::idle();
        if let Some(job) = best {
            for m in 0..machines.len() {
                a.assign_full(m, job);
            }
        }
        a
    }
}

fn world_strategy() -> impl Strategy<Value = (Vec<MachineSpec>, Vec<JobSpec>)> {
    (
        proptest::collection::vec(0.5f64..20.0, 1..4),
        proptest::collection::vec((0.0f64..20.0, 0.5f64..50.0), 1..8),
    )
        .prop_map(|(speeds, jobs)| {
            let machines = speeds
                .into_iter()
                .enumerate()
                .map(|(i, s)| MachineSpec::new(i, s))
                .collect();
            let jobs = jobs
                .into_iter()
                .enumerate()
                .map(|(i, (r, w))| JobSpec::new(i, r, w))
                .collect();
            (machines, jobs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn processor_sharing_conserves_work((machines, jobs) in world_strategy()) {
        let speeds: Vec<f64> = machines.iter().map(|m| m.speed).collect();
        let mut engine = FluidEngine::new(machines, jobs.clone()).with_segment_tracing(true);
        let trace = engine.run(&mut ProcessorSharing).unwrap();
        prop_assert_eq!(trace.completions.len(), jobs.len());
        for (idx, job) in jobs.iter().enumerate() {
            let executed = trace.executed_work(idx, &speeds);
            prop_assert!((executed - job.work).abs() < 1e-6 * job.work.max(1.0),
                "job {idx}: executed {executed} of {}", job.work);
        }
        prop_assert!(trace.machines_never_oversubscribed(speeds.len(), 1e-6));
    }

    #[test]
    fn completions_never_precede_releases_and_makespan_is_bounded(
        (machines, jobs) in world_strategy()
    ) {
        let total_work: f64 = jobs.iter().map(|j| j.work).sum();
        let total_speed: f64 = machines.iter().map(|m| m.speed).sum();
        let last_release = jobs.iter().map(|j| j.release).fold(0.0f64, f64::max);
        let mut engine = FluidEngine::new(machines, jobs.clone());
        let trace = engine.run(&mut GreedySrpt).unwrap();
        for c in &trace.completions {
            prop_assert!(c.completion >= c.release - 1e-9);
        }
        // The makespan can never beat the work-conservation bound, and a
        // never-idle policy finishes by last_release + total_work/total_speed.
        prop_assert!(trace.makespan >= total_work / total_speed - 1e-6);
        prop_assert!(trace.makespan <= last_release + total_work / total_speed + 1e-6);
    }

    #[test]
    fn srpt_like_policy_weakly_dominates_sharing_on_mean_flow(
        (machines, jobs) in world_strategy()
    ) {
        // A sanity cross-policy property: serving one job at a time with the
        // whole platform (SRPT-like) never yields a larger makespan than
        // processor sharing, because both are work-conserving.
        let mut e1 = FluidEngine::new(machines.clone(), jobs.clone());
        let mut e2 = FluidEngine::new(machines, jobs);
        let srpt = e1.run(&mut GreedySrpt).unwrap();
        let sharing = e2.run(&mut ProcessorSharing).unwrap();
        prop_assert!((srpt.makespan - sharing.makespan).abs() < 1e-6 * srpt.makespan.max(1.0),
            "both work-conserving policies must have the same makespan: {} vs {}",
            srpt.makespan, sharing.makespan);
    }
}
