//! # stretch-bench
//!
//! Shared fixtures for the Criterion benchmarks that reproduce the paper's
//! tables and figures at a reduced scale.  The benches themselves live in
//! `benches/`:
//!
//! | bench | reproduces |
//! |---|---|
//! | `table1_aggregate` | Table 1 (aggregate heuristic comparison) |
//! | `tables_partitions` | Tables 2–16 (partitioned statistics) |
//! | `figure3_online_optimization` | Figure 3 (optimized vs non-optimized on-line heuristic) |
//! | `scheduler_overhead` | the §5.3 scheduling-overhead comparison |
//! | `solvers` | the LP / flow substrates (micro-benchmarks) |
//! | `adversarial` | the Theorem 1 and Theorem 2 instances |
//! | `exact_vs_float` | the exact-rational vs floating-point simplex ablation |

use rand::rngs::SmallRng;
use rand::SeedableRng;
use stretch_platform::{PlatformConfig, PlatformGenerator};
use stretch_workload::{Instance, WorkloadConfig, WorkloadGenerator};

/// Draws a deterministic random instance of roughly `target_jobs` jobs on a
/// platform with the given number of sites.
pub fn bench_instance(sites: usize, databanks: usize, target_jobs: usize, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let platform =
        PlatformGenerator::new(PlatformConfig::new(sites, databanks, 0.6)).generate(&mut rng);
    let probe = WorkloadGenerator::new(WorkloadConfig {
        density: 1.5,
        window: 1.0,
        scan_fraction: 1.0,
        ..Default::default()
    });
    let rate = probe.expected_job_count(&platform).max(1e-9);
    let generator = WorkloadGenerator::new(WorkloadConfig {
        density: 1.5,
        window: (target_jobs as f64 / rate).max(1e-3),
        scan_fraction: 1.0,
        ..Default::default()
    });
    generator.generate_instance(platform, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_instance_is_deterministic_and_nonempty() {
        let a = bench_instance(3, 3, 12, 1);
        let b = bench_instance(3, 3, 12, 1);
        assert_eq!(a.num_jobs(), b.num_jobs());
        assert!(a.num_jobs() > 0);
    }
}
