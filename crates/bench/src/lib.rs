//! # stretch-bench
//!
//! Shared fixtures for the Criterion benchmarks that reproduce the paper's
//! tables and figures at a reduced scale.  The benches themselves live in
//! `benches/`:
//!
//! | bench | reproduces |
//! |---|---|
//! | `table1_aggregate` | Table 1 (aggregate heuristic comparison) |
//! | `tables_partitions` | Tables 2–16 (partitioned statistics) |
//! | `figure3_online_optimization` | Figure 3 (optimized vs non-optimized on-line heuristic) |
//! | `scheduler_overhead` | the §5.3 scheduling-overhead comparison |
//! | `solvers` | the LP / flow substrates (micro-benchmarks) |
//! | `adversarial` | the Theorem 1 and Theorem 2 instances |
//! | `exact_vs_float` | the exact-rational vs floating-point simplex ablation |

use stretch_workload::Instance;

/// Draws a deterministic random instance of roughly `target_jobs` jobs on a
/// platform with the given number of sites.
///
/// Thin alias of [`stretch_core::refstream::reference_instance`] — the
/// single implementation the benches, the CI perf-drift gate and the
/// detector regression tests all draw from, so their workloads can never
/// silently diverge.
pub fn bench_instance(sites: usize, databanks: usize, target_jobs: usize, seed: u64) -> Instance {
    stretch_core::refstream::reference_instance(sites, databanks, target_jobs, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_instance_is_deterministic_and_nonempty() {
        let a = bench_instance(3, 3, 12, 1);
        let b = bench_instance(3, 3, 12, 1);
        assert_eq!(a.num_jobs(), b.num_jobs());
        assert!(a.num_jobs() > 0);
    }
}
