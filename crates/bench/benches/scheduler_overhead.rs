//! The §5.3 scheduling-overhead comparison as a Criterion benchmark: how much
//! wall-clock time each scheduler spends making decisions on a 3-cluster
//! platform.  The paper reports ~0.28 s for the on-line heuristics, ~0.54 s
//! for the off-line optimal and ~19.8 s for Bender98 on 15-minute workloads;
//! here the workload is scaled down but the ranking (list/greedy ≪ on-line LP
//! ≤ off-line < Bender98) must be preserved.
//!
//! The `engine` group compares the parametric deadline solver (frozen
//! milestone-bracket topology, warm-started allocation-free probes) against
//! the from-scratch reference path that rebuilds a transportation instance
//! per probe — both end-to-end on the on-line per-event loop and on a single
//! off-line min-stretch solve.  Every measurement is merged into
//! `BENCH_baseline.json`, the repository's perf trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::hint::black_box;
use stretch_bench::bench_instance;
use stretch_core::deadline::{AllocationPlan, DeadlineProblem, PendingJob, STRETCH_TOL};
use stretch_core::online::run_online_with;
use stretch_core::plan::{execute_sequences, PieceOrdering};
use stretch_core::{
    Bender98Scheduler, ListScheduler, MctScheduler, OfflineScheduler, OnlineScheduler,
    OnlineVariant, ParametricDeadlineSolver, Scheduler, SiteView, SolverConfig,
};
use stretch_experiments::run_overhead_study;
use stretch_flow::{FlowNetwork, FlowWorkspace, TransportInstance};
use stretch_workload::Instance;

// ---------------------------------------------------------------------------
// Seed replica: the deadline engine exactly as the repository's seed
// implemented it, kept verbatim (modulo visibility) as the measured baseline
// of the parametric-engine speedup.  Every probe rebuilds the transportation
// network; feasibility runs a *full* max-flow; the feasible upper bound is
// found by blind doubling; the System-(2) solve allocates its Dijkstra
// scratch per augmentation and never terminates early.
// ---------------------------------------------------------------------------

#[derive(PartialEq)]
struct SeedHeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for SeedHeapEntry {}
impl Ord for SeedHeapEntry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| self.node.cmp(&other.node))
    }
}
impl PartialOrd for SeedHeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

/// The seed's successive-shortest-paths loop: one full Dijkstra — with
/// freshly allocated `dist`/`prev_edge`/heap — per augmenting path.
fn seed_min_cost_max_flow(network: &mut FlowNetwork, source: usize, sink: usize) -> (f64, f64) {
    const FLOW_EPS: f64 = 1e-9;
    let n = network.num_nodes();
    let mut potential = vec![0.0f64; n];
    for _ in 0..n {
        let mut changed = false;
        for u in 0..n {
            for &eid in network.edges_from(u) {
                let e = network.edge(eid);
                if e.cap > FLOW_EPS && potential[u] + e.cost < potential[e.to] - 1e-12 {
                    potential[e.to] = potential[u] + e.cost;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut total_flow = 0.0;
    let mut total_cost = 0.0;
    loop {
        let mut dist = vec![f64::INFINITY; n];
        let mut prev_edge = vec![usize::MAX; n];
        dist[source] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(SeedHeapEntry {
            dist: 0.0,
            node: source,
        });
        while let Some(SeedHeapEntry { dist: d, node: u }) = heap.pop() {
            if d > dist[u] + 1e-12 {
                continue;
            }
            for &eid in network.edges_from(u) {
                let e = network.edge(eid);
                if e.cap <= FLOW_EPS {
                    continue;
                }
                let reduced = (e.cost + potential[u] - potential[e.to]).max(0.0);
                let nd = d + reduced;
                if nd + 1e-12 < dist[e.to] {
                    dist[e.to] = nd;
                    prev_edge[e.to] = eid;
                    heap.push(SeedHeapEntry {
                        dist: nd,
                        node: e.to,
                    });
                }
            }
        }
        if dist[sink].is_infinite() {
            break;
        }
        for v in 0..n {
            if dist[v].is_finite() {
                potential[v] += dist[v];
            }
        }
        let mut bottleneck = f64::INFINITY;
        let mut v = sink;
        while v != source {
            let eid = prev_edge[v];
            bottleneck = bottleneck.min(network.edge(eid).cap);
            v = network.edge(eid ^ 1).to;
        }
        if bottleneck <= FLOW_EPS || !bottleneck.is_finite() {
            break;
        }
        let mut v = sink;
        while v != source {
            let eid = prev_edge[v];
            total_cost += bottleneck * network.edge(eid).cost;
            network.push(eid, bottleneck);
            v = network.edge(eid ^ 1).to;
        }
        total_flow += bottleneck;
    }
    (total_flow, total_cost)
}

/// Rebuilds the transport's flow network (the seed did this per probe).
fn seed_network(t: &TransportInstance) -> (FlowNetwork, Vec<usize>, usize, usize) {
    let ns = t.num_sources();
    let nb = t.num_bins();
    let source = ns + nb;
    let sink = ns + nb + 1;
    let mut g = FlowNetwork::new(ns + nb + 2);
    for j in 0..ns {
        if t.demand(j) > 0.0 {
            g.add_edge(source, j, t.demand(j), 0.0);
        }
    }
    for b in 0..nb {
        if t.capacity(b) > 0.0 {
            g.add_edge(ns + b, sink, t.capacity(b), 0.0);
        }
    }
    let mut route_edges = Vec::with_capacity(t.routes().len());
    for &(j, b, cost) in t.routes() {
        route_edges.push(g.add_edge(j, ns + b, t.demand(j), cost));
    }
    (g, route_edges, source, sink)
}

/// The seed's feasibility probe: a full max flow, no early exit.
fn seed_feasible(problem: &DeadlineProblem, stretch: f64) -> bool {
    let (t, _) = problem.transport(stretch, |_, _| 0.0);
    let demand = t.total_demand();
    if demand <= 1e-9 {
        return true;
    }
    let (mut g, _, s, k) = seed_network(&t);
    let shipped = stretch_flow::maxflow::max_flow(&mut g, s, k).value;
    shipped >= demand - 1e-6_f64.max(demand * 1e-6)
}

/// The seed's `min_feasible_stretch`: blind exponential search for a
/// feasible upper bound, then bisection of from-scratch probes.
fn seed_min_feasible_stretch(problem: &DeadlineProblem) -> Option<f64> {
    if problem.is_trivial() {
        return Some(0.0);
    }
    let lo_bound = problem.stretch_lower_bound();
    if !lo_bound.is_finite() {
        return None;
    }
    if seed_feasible(problem, lo_bound) {
        return Some(lo_bound);
    }
    let mut hi = lo_bound.max(1e-6) * 2.0;
    let mut tries = 0;
    while !seed_feasible(problem, hi) {
        hi *= 2.0;
        tries += 1;
        if tries > 80 {
            return None;
        }
    }
    let mut lo = lo_bound;
    while (hi - lo) > STRETCH_TOL * hi.max(1.0) {
        let mid = 0.5 * (lo + hi);
        if seed_feasible(problem, mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// The seed's System-(2) solve: fresh network, seed SSP loop.
fn seed_system2_allocation(problem: &DeadlineProblem, stretch: f64) -> Option<AllocationPlan> {
    let (t, intervals) = problem.transport(stretch, |job_idx, (start, end)| {
        0.5 * (start + end) / problem.jobs[job_idx].work
    });
    let (mut g, route_edges, s, k) = seed_network(&t);
    let (flow, _cost) = seed_min_cost_max_flow(&mut g, s, k);
    let demand = t.total_demand();
    if flow < demand - 1e-6_f64.max(demand * 1e-9) {
        return None;
    }
    let num_intervals = intervals.len();
    let pieces = t
        .routes()
        .iter()
        .enumerate()
        .filter_map(|(idx, &(j, b, _))| {
            let amount = g.flow_on(route_edges[idx]);
            (amount > 1e-9).then(|| stretch_core::deadline::Piece {
                job_index: j,
                job_id: problem.jobs[j].job_id,
                site: b / num_intervals,
                interval: b % num_intervals,
                work: amount,
            })
        })
        .collect();
    Some(AllocationPlan { intervals, pieces })
}

/// The seed's per-site serialisation: the sort comparators call the
/// `O(pieces)` linear scans of [`AllocationPlan`] directly (the current code
/// indexes the plan once instead).
fn seed_site_sequences(
    problem: &DeadlineProblem,
    plan: &AllocationPlan,
    ordering: PieceOrdering,
) -> Vec<Vec<(usize, f64)>> {
    let num_sites = problem.sites.len();
    let swrpt_key =
        |job_index: usize| problem.jobs[job_index].remaining * problem.jobs[job_index].work;
    let mut sequences = vec![Vec::new(); num_sites];
    for (site, sequence) in sequences.iter_mut().enumerate() {
        match ordering {
            PieceOrdering::Online => {
                let mut pieces: Vec<(usize, usize, f64)> = plan
                    .pieces
                    .iter()
                    .filter(|p| p.site == site && p.work > 1e-12)
                    .map(|p| (p.interval, p.job_index, p.work))
                    .collect();
                pieces.sort_by(|a, b| {
                    let terminal_a = plan.completion_interval_on_site(a.1, site) == Some(a.0);
                    let terminal_b = plan.completion_interval_on_site(b.1, site) == Some(b.0);
                    a.0.cmp(&b.0)
                        .then_with(|| terminal_b.cmp(&terminal_a))
                        .then_with(|| swrpt_key(a.1).total_cmp(&swrpt_key(b.1)))
                        .then_with(|| a.1.cmp(&b.1))
                });
                *sequence = pieces.into_iter().map(|(_, j, w)| (j, w)).collect();
            }
            PieceOrdering::OnlineEdf => {
                let mut per_job: std::collections::BTreeMap<usize, f64> =
                    std::collections::BTreeMap::new();
                for p in plan.pieces.iter().filter(|p| p.site == site) {
                    *per_job.entry(p.job_index).or_insert(0.0) += p.work;
                }
                let mut jobs: Vec<(usize, f64)> =
                    per_job.into_iter().filter(|&(_, w)| w > 1e-12).collect();
                jobs.sort_by(|a, b| {
                    let ia = plan.completion_interval_on_site(a.0, site).unwrap_or(0);
                    let ib = plan.completion_interval_on_site(b.0, site).unwrap_or(0);
                    ia.cmp(&ib)
                        .then_with(|| swrpt_key(a.0).total_cmp(&swrpt_key(b.0)))
                        .then_with(|| a.0.cmp(&b.0))
                });
                *sequence = jobs;
            }
        }
    }
    sequences
}

/// The on-line per-event loop exactly as the seed ran it.
fn run_online_from_scratch(instance: &Instance, ordering: PieceOrdering) -> f64 {
    let sites = SiteView::of(instance);
    let mut remaining: Vec<f64> = instance.jobs.iter().map(|j| j.work).collect();
    let mut last_completion = 0.0f64;
    let mut events: Vec<f64> = instance.jobs.iter().map(|j| j.release).collect();
    events.sort_by(|a, b| a.total_cmp(b));
    events.dedup_by(|a, b| (*a - *b).abs() <= 1e-12);

    for (e, &now) in events.iter().enumerate() {
        let horizon = events.get(e + 1).copied().unwrap_or(f64::INFINITY);
        let pending: Vec<PendingJob> = instance
            .jobs
            .iter()
            .filter(|j| j.release <= now + 1e-12 && remaining[j.id] > 1e-9)
            .map(|j| PendingJob {
                job_id: j.id,
                release: j.release,
                ready: now,
                work: j.work,
                remaining: remaining[j.id],
                databank: j.databank,
            })
            .collect();
        if pending.is_empty() {
            continue;
        }
        let problem = DeadlineProblem::new(pending, sites.clone(), now);
        let best = seed_min_feasible_stretch(&problem).expect("feasible");
        let slack = best * (1.0 + 1e-4) + 1e-9;
        let plan = seed_system2_allocation(&problem, slack).expect("feasible");
        let sequences = seed_site_sequences(&problem, &plan, ordering);
        let execution = execute_sequences(&problem, &sequences, now, horizon);
        for (pending_idx, job) in problem.jobs.iter().enumerate() {
            remaining[job.job_id] =
                (remaining[job.job_id] - execution.executed[pending_idx]).max(0.0);
            if let Some(&c) = execution.completions.get(&pending_idx) {
                remaining[job.job_id] = 0.0;
                last_completion = last_completion.max(c);
            }
        }
    }
    last_completion
}

fn bench_scheduler_overhead(c: &mut Criterion) {
    let report = run_overhead_study(2, 20, 11);
    println!("\n{}\n", report.render());

    let instance = bench_instance(3, 3, 20, 3);
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(MctScheduler::mct()),
        Box::new(MctScheduler::mct_div()),
        Box::new(ListScheduler::srpt()),
        Box::new(ListScheduler::swrpt()),
        Box::new(ListScheduler::bender02()),
        Box::new(OnlineScheduler::online()),
        Box::new(OnlineScheduler::online_edf()),
        Box::new(OnlineScheduler::online_egdf()),
        Box::new(OfflineScheduler::new()),
        Box::new(Bender98Scheduler::new()),
    ];
    let mut group = c.benchmark_group("overhead");
    group.sample_size(10);
    for scheduler in &schedulers {
        group.bench_function(scheduler.name(), |b| {
            b.iter(|| {
                let r = scheduler.schedule(black_box(&instance)).unwrap();
                black_box(r.metrics.max_stretch)
            })
        });
    }
    group.finish();

    // The parametric engine against the seed's from-scratch engine: the
    // on-line per-event loop (the hot path of the paper's heuristics, the
    // `overhead/Online*` rows above are its parametric counterpart) and a
    // single off-line min-stretch solve.
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("online-loop/seed", |b| {
        b.iter(|| black_box(run_online_from_scratch(&instance, PieceOrdering::Online)))
    });
    group.bench_function("online-edf-loop/seed", |b| {
        b.iter(|| black_box(run_online_from_scratch(&instance, PieceOrdering::OnlineEdf)))
    });
    let offline = stretch_core::offline::offline_problem(&instance);
    group.bench_function("min-stretch/seed", |b| {
        b.iter(|| black_box(seed_min_feasible_stretch(&offline).unwrap()))
    });
    group.bench_function("min-stretch/from-scratch", |b| {
        b.iter(|| black_box(offline.min_feasible_stretch_reference().unwrap()))
    });
    group.bench_function("min-stretch/parametric", |b| {
        let mut solver = ParametricDeadlineSolver::new();
        b.iter(|| black_box(solver.min_feasible_stretch(&offline).unwrap()))
    });

    // Min-cost backend comparison on the same 3-cluster workload: the
    // captured per-event System-(2) solves (where the backends actually
    // differ — the feasibility probes are backend-independent) and the full
    // on-line loop end to end.  One row per backend, measured **cold across
    // events** (no cross-event solver memory — the PR 2 baseline semantics),
    // plus `-warm` rows with the cross-event memory on: basis remapping for
    // the System-(2) sweep, basis remapping *and* residual carry-over for
    // the full loop.  Warm and cold produce bit-identical schedules (pinned
    // by the differential-oracle suite), so the row pairs measure the same
    // work — only the solver state differs.  The CI bench-smoke step checks
    // all of these keys exist in BENCH_baseline.json.
    // The captured per-event System-(2) instances — the exact min-cost
    // workload the backends compete on (shared with the CI perf-drift gate
    // through `stretch_core::refstream`, so both measure identical work).
    let system2_events = stretch_core::refstream::capture_system2_events(&instance);
    assert!(!system2_events.is_empty());
    for config in SolverConfig::all_backends() {
        let cold = config.with_warm_start(false);
        let mut backend = cold.instantiate();
        let mut ws = FlowWorkspace::new();
        group.bench_function(format!("system2-events/{}", cold.backend.name()), |b| {
            b.iter(|| {
                let mut pieces = 0usize;
                for (problem, slack) in &system2_events {
                    let plan = problem
                        .system2_allocation_with_backend(*slack, backend.as_mut(), &mut ws)
                        .expect("feasible at the captured objective");
                    pieces += plan.pieces.len();
                }
                black_box(pieces)
            })
        });
        group.bench_function(format!("online-loop/{}", cold.backend.name()), |b| {
            b.iter(|| {
                black_box(
                    run_online_with(&instance, OnlineVariant::Online, cold)
                        .expect("schedulable")
                        .len(),
                )
            })
        });
        group.bench_function(format!("online-loop/{}-warm", config.backend.name()), |b| {
            b.iter(|| {
                black_box(
                    run_online_with(&instance, OnlineVariant::Online, config)
                        .expect("schedulable")
                        .len(),
                )
            })
        });
    }
    // The warm System-(2) sweep only exists for the basis-carrying backends
    // (the primal-dual kernel is stateless, so its warm row would re-measure
    // the cold one).  Derived from the backend list — the same rule the
    // drift gate's `engine_row_keys()` and the CI completeness list encode —
    // so a future backend records its warm row without touching this file.
    for warm in SolverConfig::all_backends()
        .filter(|config| config.backend != stretch_flow::BackendKind::PrimalDual)
    {
        let mut backend = warm.instantiate();
        let mut ws = FlowWorkspace::new();
        group.bench_function(
            format!("system2-events/{}-warm", warm.backend.name()),
            |b| {
                b.iter(|| {
                    let mut pieces = 0usize;
                    for (problem, slack) in &system2_events {
                        let plan = problem
                            .system2_allocation_with_backend(*slack, backend.as_mut(), &mut ws)
                            .expect("feasible at the captured objective");
                        pieces += plan.pieces.len();
                    }
                    black_box(pieces)
                })
            },
        );
    }
    // The incremental System-(2) sweep: one persistent solver per backend
    // with the delta engine on (`STRETCH_INCREMENTAL`, the default), so
    // every event's solve runs through the persistent `System2Arena` —
    // instance, intervals, keys and flow network reused across events
    // instead of reallocated.  Identical work and bit-identical plans
    // (pinned by the differential-oracle suite); measured against the
    // `-warm` rows above, which rebuild those buffers per event.
    for config in SolverConfig::all_backends() {
        let mut solver = ParametricDeadlineSolver::with_config(config.with_incremental(true));
        group.bench_function(
            format!("system2-events/{}-incremental", config.backend.name()),
            |b| {
                b.iter(|| {
                    let mut pieces = 0usize;
                    for (problem, slack) in &system2_events {
                        let plan = solver
                            .system2_allocation(problem, *slack)
                            .expect("feasible at the captured objective");
                        pieces += plan.pieces.len();
                    }
                    black_box(pieces)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler_overhead);
criterion_main!(benches);
