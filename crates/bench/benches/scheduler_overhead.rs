//! The §5.3 scheduling-overhead comparison as a Criterion benchmark: how much
//! wall-clock time each scheduler spends making decisions on a 3-cluster
//! platform.  The paper reports ~0.28 s for the on-line heuristics, ~0.54 s
//! for the off-line optimal and ~19.8 s for Bender98 on 15-minute workloads;
//! here the workload is scaled down but the ranking (list/greedy ≪ on-line LP
//! ≤ off-line < Bender98) must be preserved.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stretch_bench::bench_instance;
use stretch_core::{
    Bender98Scheduler, ListScheduler, MctScheduler, OfflineScheduler, OnlineScheduler, Scheduler,
};
use stretch_experiments::run_overhead_study;

fn bench_scheduler_overhead(c: &mut Criterion) {
    let report = run_overhead_study(2, 20, 11);
    println!("\n{}\n", report.render());

    let instance = bench_instance(3, 3, 20, 3);
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(MctScheduler::mct()),
        Box::new(MctScheduler::mct_div()),
        Box::new(ListScheduler::srpt()),
        Box::new(ListScheduler::swrpt()),
        Box::new(ListScheduler::bender02()),
        Box::new(OnlineScheduler::online()),
        Box::new(OnlineScheduler::online_edf()),
        Box::new(OnlineScheduler::online_egdf()),
        Box::new(OfflineScheduler::new()),
        Box::new(Bender98Scheduler::new()),
    ];
    let mut group = c.benchmark_group("overhead");
    group.sample_size(10);
    for scheduler in &schedulers {
        group.bench_function(scheduler.name(), |b| {
            b.iter(|| {
                let r = scheduler.schedule(black_box(&instance)).unwrap();
                black_box(r.metrics.max_stretch)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler_overhead);
criterion_main!(benches);
