//! Micro-benchmarks of the optimisation substrates the schedulers rely on:
//! the dense simplex of `stretch-lp` and the max-flow / min-cost-flow of
//! `stretch-flow`, on transportation problems shaped like the paper's
//! System (1) and System (2).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stretch_flow::maxflow::max_flow;
use stretch_flow::{FlowNetwork, TransportInstance};
use stretch_lp::problem::{Problem, Relation, Sense};

/// Builds a jobs × bins transportation LP (the System-(2) shape).
fn transport_lp(jobs: usize, bins: usize) -> Problem {
    let mut p = Problem::new(Sense::Minimize);
    let mut vars = vec![vec![0usize; bins]; jobs];
    for (j, row) in vars.iter_mut().enumerate() {
        for (b, v) in row.iter_mut().enumerate() {
            *v = p.add_var(format!("x_{j}_{b}"));
            p.set_objective_coeff(*v, (b + 1) as f64 / (j + 1) as f64);
        }
    }
    for (j, row) in vars.iter().enumerate() {
        let coeffs: Vec<_> = row.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint_coeffs(&coeffs, Relation::Eq, 1.0 + j as f64 * 0.5);
    }
    for b in 0..bins {
        let coeffs: Vec<_> = vars.iter().map(|row| (row[b], 1.0)).collect();
        p.add_constraint_coeffs(&coeffs, Relation::Le, 2.0 + b as f64);
    }
    p
}

/// Builds the same problem as a flow transportation instance.
fn transport_flow(jobs: usize, bins: usize) -> TransportInstance {
    let mut t = TransportInstance::new(jobs, bins);
    for j in 0..jobs {
        t.set_demand(j, 1.0 + j as f64 * 0.5);
    }
    for b in 0..bins {
        t.set_capacity(b, 2.0 + b as f64);
    }
    for j in 0..jobs {
        for b in 0..bins {
            t.add_route(j, b, (b + 1) as f64 / (j + 1) as f64);
        }
    }
    t
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers");
    group.sample_size(20);

    let lp = transport_lp(8, 10);
    group.bench_function("simplex/transportation-8x10", |b| {
        b.iter(|| black_box(lp.solve().unwrap().objective))
    });

    let flow = transport_flow(8, 10);
    group.bench_function("mincost-flow/transportation-8x10", |b| {
        b.iter(|| black_box(flow.solve_min_cost().unwrap().cost))
    });
    let big = transport_flow(40, 60);
    group.bench_function("mincost-flow/transportation-40x60", |b| {
        b.iter(|| black_box(big.solve_min_cost().unwrap().cost))
    });
    group.bench_function("maxflow/feasibility-40x60", |b| {
        b.iter(|| black_box(big.is_feasible()))
    });

    group.bench_function("dinic/layered-graph", |b| {
        b.iter(|| {
            let mut g = FlowNetwork::new(64);
            for i in 0..62 {
                g.add_edge(i, i + 1, 1.0 + (i % 5) as f64, 0.0);
                g.add_edge(i, 63, 0.5, 0.0);
            }
            black_box(max_flow(&mut g, 0, 63).value)
        })
    });
    // The two back-ends must agree (the property the scheduler depends on).
    let lp_cost = lp.solve().unwrap().objective;
    let flow_cost = flow.solve_min_cost().unwrap().cost;
    assert!(
        (lp_cost - flow_cost).abs() < 1e-4 * lp_cost.max(1.0),
        "LP {lp_cost} vs flow {flow_cost}"
    );
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
