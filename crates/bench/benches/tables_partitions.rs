//! Tables 2–16 reproduction bench: measures the cost of running a reduced
//! campaign and of assembling every partitioned table (by sites, density,
//! databank count and availability), and prints the scaled-down tables once.
//!
//! The full-scale tables are produced by the `repro_tables_by_*` binaries of
//! `stretch-experiments`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stretch_experiments::{
    reduced_grid, run_campaign, tables_by_availability, tables_by_databases, tables_by_density,
    tables_by_sites, CampaignSettings,
};

fn bench_partitioned_tables(c: &mut Criterion) {
    let result = run_campaign(&reduced_grid(), CampaignSettings::smoke());

    // Print the scaled-down versions once for eyeballing against the paper.
    for table in tables_by_sites(&result.observations) {
        println!("{table}");
    }
    for table in tables_by_availability(&result.observations) {
        println!("{table}");
    }

    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("campaign/reduced-grid", |b| {
        b.iter(|| {
            let r = run_campaign(black_box(&reduced_grid()), CampaignSettings::smoke());
            black_box(r.len())
        })
    });
    group.bench_function("partition/by-sites", |b| {
        b.iter(|| black_box(tables_by_sites(&result.observations).len()))
    });
    group.bench_function("partition/by-density", |b| {
        b.iter(|| black_box(tables_by_density(&result.observations).len()))
    });
    group.bench_function("partition/by-databases", |b| {
        b.iter(|| black_box(tables_by_databases(&result.observations).len()))
    });
    group.bench_function("partition/by-availability", |b| {
        b.iter(|| black_box(tables_by_availability(&result.observations).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_partitioned_tables);
criterion_main!(benches);
