//! Table 1 reproduction bench: runs the full heuristic battery of the paper
//! on a small random GriPPS instance and checks the qualitative ordering the
//! paper reports (the on-line LP heuristics are near-optimal for max-stretch,
//! MCT is far worse), while Criterion measures the cost of each scheduler.
//!
//! A scaled-down Table 1 is printed once at the beginning of the run; the
//! full-scale table is produced by
//! `cargo run --release -p stretch-experiments --bin repro_table1`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stretch_bench::bench_instance;
use stretch_experiments::{heuristic_battery, HeuristicKind};
use stretch_experiments::{reduced_grid, run_campaign, table1, CampaignSettings};

fn print_scaled_down_table1() {
    let result = run_campaign(&reduced_grid(), CampaignSettings::smoke());
    let table = table1(&result.observations);
    println!("\n{table}\n");
    // Qualitative shape of Table 1: the off-line optimal is the max-stretch
    // reference and MCT degrades it by a large factor.
    let offline = table.row("Offline").unwrap().max_stretch.unwrap();
    let mct = table.row("MCT").unwrap().max_stretch.unwrap();
    assert!(offline.mean <= 1.01);
    assert!(
        mct.mean > 1.5,
        "MCT should degrade max-stretch substantially (got {})",
        mct.mean
    );
}

fn bench_heuristic_battery(c: &mut Criterion) {
    print_scaled_down_table1();

    let instance = bench_instance(3, 3, 15, 42);
    let mut group = c.benchmark_group("table1/heuristics");
    group.sample_size(10);
    for (kind, scheduler) in heuristic_battery() {
        if !kind.runs_on(3) {
            continue;
        }
        // Bender98 is far slower than the rest; keep it but on the same tiny
        // instance so the bench stays tractable (the paper's overhead section
        // makes the same concession).
        let label = kind.name();
        group.bench_function(label, |b| {
            b.iter(|| {
                let result = scheduler
                    .schedule(black_box(&instance))
                    .expect("schedulable");
                black_box(result.metrics.max_stretch)
            })
        });
        if kind == HeuristicKind::Bender98 {
            // One sanity check outside the timing loop: Bender98 never beats
            // the off-line optimum.
            let offline = HeuristicKind::Offline
                .scheduler()
                .schedule(&instance)
                .unwrap()
                .metrics
                .max_stretch;
            let bender = scheduler.schedule(&instance).unwrap().metrics.max_stretch;
            assert!(bender >= offline * 0.999);
        }
    }
    group.finish();
}

criterion_group!(benches, bench_heuristic_battery);
criterion_main!(benches);
