//! Ablation: floating-point versus exact-rational simplex.
//!
//! §5.3 reports that the off-line optimal is occasionally "beaten" by an
//! on-line heuristic because floating-point rounding merges two nearly equal
//! milestones.  The exact rational mode of `stretch-lp` removes that failure
//! mode; this bench quantifies its cost on System-(1)-shaped LPs so DESIGN.md
//! can state the trade-off.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stretch_lp::problem::{Problem, Relation, Sense};

/// A small deadline-feasibility-shaped LP: minimise F subject to interval
/// capacities that grow affinely with F.
fn system1_like(jobs: usize) -> Problem {
    let mut p = Problem::new(Sense::Minimize);
    let f = p.add_var("F");
    p.set_objective_coeff(f, 1.0);
    for j in 0..jobs {
        let alloc_early = p.add_var(format!("a{j}_early"));
        let alloc_late = p.add_var(format!("a{j}_late"));
        // Work of each job fully allocated.
        p.add_constraint_coeffs(
            &[(alloc_early, 1.0), (alloc_late, 1.0)],
            Relation::Eq,
            1.0 + j as f64 * 0.25,
        );
        // Early interval capacity does not depend on F; the late one grows
        // with F (duration = deadline - constant).
        p.add_constraint_coeffs(&[(alloc_early, 1.0)], Relation::Le, 0.5);
        let mut expr = stretch_lp::LinExpr::term(alloc_late, 1.0);
        expr.add_term(f, -(1.0 + j as f64 * 0.25));
        p.add_constraint(expr, Relation::Le, 0.0);
    }
    p
}

fn bench_exact_vs_float(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_vs_float");
    group.sample_size(20);
    for jobs in [4usize, 8, 12] {
        let lp = system1_like(jobs);
        group.bench_function(format!("float/{jobs}-jobs"), |b| {
            b.iter(|| black_box(lp.solve().unwrap().objective))
        });
        group.bench_function(format!("exact/{jobs}-jobs"), |b| {
            b.iter(|| black_box(lp.solve_exact().unwrap().objective))
        });
        let float = lp.solve().unwrap().objective;
        let exact = lp.solve_exact().unwrap().objective;
        assert!(
            (float - exact).abs() < 1e-6 * exact.max(1.0),
            "float {float} vs exact {exact}"
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact_vs_float);
criterion_main!(benches);
