//! The theoretical instances of the paper as benchmarks: the Theorem-1
//! starvation stream and the Theorem-2 SWRPT lower-bound sequence.  Besides
//! timing the single-processor simulator on them, the benches assert the
//! qualitative results (SRPT starves the large job; SWRPT's sum-stretch ratio
//! approaches 2).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stretch_core::adversarial::{starvation_instance, swrpt_lower_bound_instance};
use stretch_core::priority::PriorityRule;
use stretch_core::uniproc::{max_stretch_of, simulate_priority, sum_stretch_of};

fn bench_adversarial(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversarial");
    group.sample_size(20);

    // k must exceed Δ² for the starvation effect to dominate (below that
    // point delaying the big job is actually optimal).
    let starvation = starvation_instance(10.0, 400);
    group.bench_function("theorem1/srpt", |b| {
        b.iter(|| {
            let completions = simulate_priority(black_box(&starvation), PriorityRule::Srpt, None);
            black_box(max_stretch_of(&starvation, &completions))
        })
    });
    group.bench_function("theorem1/fcfs", |b| {
        b.iter(|| {
            let completions = simulate_priority(black_box(&starvation), PriorityRule::Fcfs, None);
            black_box(max_stretch_of(&starvation, &completions))
        })
    });
    // Qualitative check (Theorem 1): SRPT's max-stretch on the starvation
    // stream is far above FCFS's.
    let srpt_ms = max_stretch_of(
        &starvation,
        &simulate_priority(&starvation, PriorityRule::Srpt, None),
    );
    let fcfs_ms = max_stretch_of(
        &starvation,
        &simulate_priority(&starvation, PriorityRule::Fcfs, None),
    );
    assert!(srpt_ms > 2.0 * fcfs_ms);

    let (lower_bound, _) = swrpt_lower_bound_instance(0.5, 800);
    group.bench_function("theorem2/swrpt", |b| {
        b.iter(|| {
            let completions = simulate_priority(black_box(&lower_bound), PriorityRule::Swrpt, None);
            black_box(sum_stretch_of(&lower_bound, &completions))
        })
    });
    group.bench_function("theorem2/srpt", |b| {
        b.iter(|| {
            let completions = simulate_priority(black_box(&lower_bound), PriorityRule::Srpt, None);
            black_box(sum_stretch_of(&lower_bound, &completions))
        })
    });
    let swrpt = sum_stretch_of(
        &lower_bound,
        &simulate_priority(&lower_bound, PriorityRule::Swrpt, None),
    );
    let srpt = sum_stretch_of(
        &lower_bound,
        &simulate_priority(&lower_bound, PriorityRule::Srpt, None),
    );
    assert!(swrpt / srpt > 1.4, "ratio {}", swrpt / srpt);

    group.finish();
}

criterion_group!(benches, bench_adversarial);
criterion_main!(benches);
