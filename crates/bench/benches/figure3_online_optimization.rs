//! Figure 3 reproduction bench: the optimized versus non-optimized on-line
//! heuristic.  Criterion measures both schedulers on the same instance (the
//! optimisation of System (2) costs extra scheduling time); the scaled-down
//! Figure 3 series is printed once.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stretch_bench::bench_instance;
use stretch_core::{OnlineScheduler, Scheduler};
use stretch_experiments::figure3::{render_figure3, run_figure3, Figure3Settings};

fn bench_online_optimization(c: &mut Criterion) {
    let points = run_figure3(&Figure3Settings::smoke());
    println!("\n{}\n", render_figure3(&points));

    let instance = bench_instance(3, 3, 15, 7);
    let mut group = c.benchmark_group("figure3");
    group.sample_size(10);
    group.bench_function("online/optimized", |b| {
        b.iter(|| {
            let r = OnlineScheduler::online()
                .schedule(black_box(&instance))
                .unwrap();
            black_box((r.metrics.max_stretch, r.metrics.sum_stretch))
        })
    });
    group.bench_function("online/non-optimized", |b| {
        b.iter(|| {
            let r = OnlineScheduler::non_optimized()
                .schedule(black_box(&instance))
                .unwrap();
            black_box((r.metrics.max_stretch, r.metrics.sum_stretch))
        })
    });
    group.bench_function("figure3/smoke-sweep", |b| {
        b.iter(|| black_box(run_figure3(&Figure3Settings::smoke()).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_online_optimization);
criterion_main!(benches);
