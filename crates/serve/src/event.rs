//! Events of the serve layer: submissions, journal records and typed
//! rejection reasons.
//!
//! A [`Submission`] is what clients put on the bus — a job request *before*
//! validation, so every field is allowed to be garbage (NaN work, unknown
//! databank, …).  Validation turns it either into an accepted job (journaled
//! as [`JournalEvent::Submitted`]) or into a [`RejectReason`] carried by the
//! dead-letter queue.  Nothing on this path panics: the acceptance contract
//! of the serve layer is "malformed input is data, not a crash".

use stretch_core::BackendKind;
use stretch_platform::Platform;
use stretch_workload::{Job, JobValidationError};

/// A raw job submission, as received from a client.
///
/// Unlike [`stretch_workload::Job`] this type carries no invariants: it is
/// the *input* of validation, not its output.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Submission {
    /// Claimed release date (seconds).  Submissions must arrive in
    /// nondecreasing release order (the on-line model); late arrivals are
    /// dead-lettered as [`RejectReason::OutOfOrder`].
    pub release: f64,
    /// Claimed work (MB of databank to scan).
    pub work: f64,
    /// Target databank id.
    pub databank: usize,
}

impl Submission {
    /// Convenience constructor.
    pub fn new(release: f64, work: f64, databank: usize) -> Self {
        Submission {
            release,
            work,
            databank,
        }
    }
}

/// Why a submission was dead-lettered instead of scheduled.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RejectReason {
    /// The job fields themselves are malformed (NaN/negative release,
    /// non-positive or non-finite work).
    InvalidJob(JobValidationError),
    /// The databank id is not known to the platform.
    UnknownDatabank {
        /// The offending databank id.
        databank: usize,
        /// How many databanks the platform actually has.
        num_databanks: usize,
    },
    /// The databank exists but no cluster hosts it: the job could never run
    /// and no finite stretch would be achievable.
    UnhostedDatabank {
        /// The offending databank id.
        databank: usize,
    },
    /// The submission's release date is behind the scheduler's decision
    /// frontier: accepting it would rewrite the past.
    OutOfOrder {
        /// The submission's release date.
        release: f64,
        /// The scheduler's current frontier (last decision instant).
        frontier: f64,
    },
    /// The service has already been finished (drained to completion) and
    /// accepts no further submissions.
    Closed,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::InvalidJob(e) => write!(f, "invalid job: {e}"),
            RejectReason::UnknownDatabank {
                databank,
                num_databanks,
            } => write!(
                f,
                "unknown databank {databank} (platform has {num_databanks})"
            ),
            RejectReason::UnhostedDatabank { databank } => {
                write!(f, "databank {databank} is hosted by no cluster")
            }
            RejectReason::OutOfOrder { release, frontier } => write!(
                f,
                "release {release} is behind the decision frontier {frontier}"
            ),
            RejectReason::Closed => write!(f, "service is closed"),
        }
    }
}

impl std::error::Error for RejectReason {}

/// Validates the *content* of a submission against a platform (field sanity
/// and databank eligibility).  Ordering is checked separately by the service,
/// which knows the scheduler frontier.
pub fn validate_submission(s: &Submission, platform: &Platform) -> Result<(), RejectReason> {
    Job::try_new(0, s.release, s.work, s.databank).map_err(RejectReason::InvalidJob)?;
    let num_databanks = platform.num_databanks();
    if s.databank >= num_databanks {
        return Err(RejectReason::UnknownDatabank {
            databank: s.databank,
            num_databanks,
        });
    }
    if platform.eligible_processors(s.databank).is_empty() {
        return Err(RejectReason::UnhostedDatabank {
            databank: s.databank,
        });
    }
    Ok(())
}

/// One rung of the degradation ladder: which engine produced a scheduling
/// decision.
///
/// The tier chosen live (after timeouts, fallbacks and circuit breaking) is
/// written to the journal, so replay re-runs exactly the same engine and
/// reproduces the degradation bit for bit — wall-clock never participates in
/// recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolveTier {
    /// Monge/greedy product-form min-cost backend (fastest).
    Monge,
    /// Network simplex backend.
    Simplex,
    /// Primal-dual reference backend (slowest, most robust).
    PrimalDual,
    /// Earliest-virtual-deadline-first heuristic: the load-shedding tier,
    /// used when every solver tier failed or the circuit breaker is open.
    /// Never fails.
    Edf,
}

impl SolveTier {
    /// Every tier, in ladder order (fast → robust → shed).
    pub const ALL: [SolveTier; 4] = [
        SolveTier::Monge,
        SolveTier::Simplex,
        SolveTier::PrimalDual,
        SolveTier::Edf,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            SolveTier::Monge => "monge",
            SolveTier::Simplex => "simplex",
            SolveTier::PrimalDual => "primal-dual",
            SolveTier::Edf => "edf",
        }
    }

    /// Stable one-byte code used in the journal encoding.
    pub fn code(&self) -> u8 {
        match self {
            SolveTier::Monge => 0,
            SolveTier::Simplex => 1,
            SolveTier::PrimalDual => 2,
            SolveTier::Edf => 3,
        }
    }

    /// Inverse of [`SolveTier::code`].
    pub fn from_code(code: u8) -> Option<SolveTier> {
        SolveTier::ALL.into_iter().find(|t| t.code() == code)
    }

    /// The min-cost backend this tier solves with (`None` for the EDF shed
    /// tier, which uses no flow solver at all).
    pub fn backend(&self) -> Option<BackendKind> {
        match self {
            SolveTier::Monge => Some(BackendKind::Monge),
            SolveTier::Simplex => Some(BackendKind::NetworkSimplex),
            SolveTier::PrimalDual => Some(BackendKind::PrimalDual),
            SolveTier::Edf => None,
        }
    }

    /// The tier that solves with `backend`.
    pub fn of_backend(backend: BackendKind) -> SolveTier {
        match backend {
            BackendKind::Monge => SolveTier::Monge,
            BackendKind::NetworkSimplex => SolveTier::Simplex,
            BackendKind::PrimalDual => SolveTier::PrimalDual,
        }
    }
}

/// The replay-relevant payload of a journal record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JournalEvent {
    /// An accepted submission, staged into the scheduler *after* this record
    /// is durable (write-ahead).
    Submitted {
        /// Monotone per-journal sequence number (detects splices).
        seq: u64,
        /// Validated release date.
        release: f64,
        /// Validated work.
        work: f64,
        /// Validated databank id.
        databank: u64,
    },
    /// The intent record of a scheduling decision: which tier the ladder
    /// settled on.  Written *before* the decision is installed, so a crash
    /// between the two replays to the identical decision (exactly-once).
    Decision {
        /// The tier that produced the decision.
        tier: SolveTier,
    },
}

/// A full journal record: wall-clock stamp (debugging only — replay must
/// never read it) plus the replayed event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JournalRecord {
    /// Microseconds since the Unix epoch at append time.  **Debugging only**:
    /// recovery ignores this field entirely, pinned by the zeroed-timestamp
    /// replay test.
    pub wall_micros: u64,
    /// The replayed event.
    pub event: JournalEvent,
}

/// Why a record payload failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadError {
    /// Empty payload (no tag byte).
    Empty,
    /// Unknown tag byte.
    UnknownTag(u8),
    /// Payload length does not match the tag's fixed frame.
    BadLength {
        /// The tag whose frame was violated.
        tag: u8,
        /// Expected payload length.
        expected: usize,
        /// Actual payload length.
        actual: usize,
    },
    /// A decision record carries an unknown tier code.
    UnknownTier(u8),
}

impl std::fmt::Display for PayloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PayloadError::Empty => write!(f, "empty payload"),
            PayloadError::UnknownTag(t) => write!(f, "unknown record tag {t}"),
            PayloadError::BadLength {
                tag,
                expected,
                actual,
            } => write!(
                f,
                "tag {tag} payload must be {expected} bytes, got {actual}"
            ),
            PayloadError::UnknownTier(c) => write!(f, "unknown solve-tier code {c}"),
        }
    }
}

impl std::error::Error for PayloadError {}

const TAG_SUBMITTED: u8 = 1;
const TAG_DECISION: u8 = 2;
/// `tag + wall + seq + release + work + databank`.
const SUBMITTED_LEN: usize = 1 + 8 + 8 + 8 + 8 + 8;
/// `tag + wall + tier`.
const DECISION_LEN: usize = 1 + 8 + 1;

/// Encodes a record payload (the checksummed bytes between the frame header
/// and the next record).  Floats are stored as IEEE-754 bit patterns so the
/// round trip is exact — replay determinism depends on it.
pub fn encode_payload(record: &JournalRecord) -> Vec<u8> {
    match record.event {
        JournalEvent::Submitted {
            seq,
            release,
            work,
            databank,
        } => {
            let mut out = Vec::with_capacity(SUBMITTED_LEN);
            out.push(TAG_SUBMITTED);
            out.extend_from_slice(&record.wall_micros.to_le_bytes());
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&release.to_bits().to_le_bytes());
            out.extend_from_slice(&work.to_bits().to_le_bytes());
            out.extend_from_slice(&databank.to_le_bytes());
            out
        }
        JournalEvent::Decision { tier } => {
            let mut out = Vec::with_capacity(DECISION_LEN);
            out.push(TAG_DECISION);
            out.extend_from_slice(&record.wall_micros.to_le_bytes());
            out.push(tier.code());
            out
        }
    }
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(buf)
}

/// Decodes a record payload; strict about frame lengths so a checksum
/// collision on garbage still surfaces as a typed error, never a panic.
pub fn decode_payload(bytes: &[u8]) -> Result<JournalRecord, PayloadError> {
    let &tag = bytes.first().ok_or(PayloadError::Empty)?;
    match tag {
        TAG_SUBMITTED => {
            if bytes.len() != SUBMITTED_LEN {
                return Err(PayloadError::BadLength {
                    tag,
                    expected: SUBMITTED_LEN,
                    actual: bytes.len(),
                });
            }
            Ok(JournalRecord {
                wall_micros: read_u64(bytes, 1),
                event: JournalEvent::Submitted {
                    seq: read_u64(bytes, 9),
                    release: f64::from_bits(read_u64(bytes, 17)),
                    work: f64::from_bits(read_u64(bytes, 25)),
                    databank: read_u64(bytes, 33),
                },
            })
        }
        TAG_DECISION => {
            if bytes.len() != DECISION_LEN {
                return Err(PayloadError::BadLength {
                    tag,
                    expected: DECISION_LEN,
                    actual: bytes.len(),
                });
            }
            let tier = SolveTier::from_code(bytes[9]).ok_or(PayloadError::UnknownTier(bytes[9]))?;
            Ok(JournalRecord {
                wall_micros: read_u64(bytes, 1),
                event: JournalEvent::Decision { tier },
            })
        }
        other => Err(PayloadError::UnknownTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stretch_platform::fixtures::small_platform;

    #[test]
    fn payload_round_trips_exactly() {
        let records = [
            JournalRecord {
                wall_micros: 123_456,
                event: JournalEvent::Submitted {
                    seq: 7,
                    release: 1.5e-3,
                    work: 300.25,
                    databank: 1,
                },
            },
            JournalRecord {
                wall_micros: 0,
                event: JournalEvent::Decision {
                    tier: SolveTier::Edf,
                },
            },
        ];
        for r in records {
            let bytes = encode_payload(&r);
            assert_eq!(decode_payload(&bytes), Ok(r));
        }
    }

    #[test]
    fn decode_rejects_malformed_payloads_with_typed_errors() {
        assert_eq!(decode_payload(&[]), Err(PayloadError::Empty));
        assert_eq!(decode_payload(&[99]), Err(PayloadError::UnknownTag(99)));
        assert!(matches!(
            decode_payload(&[TAG_SUBMITTED, 0, 0]),
            Err(PayloadError::BadLength { .. })
        ));
        let mut decision = vec![TAG_DECISION];
        decision.extend_from_slice(&0u64.to_le_bytes());
        decision.push(77);
        assert_eq!(
            decode_payload(&decision),
            Err(PayloadError::UnknownTier(77))
        );
    }

    #[test]
    fn tier_codes_round_trip_and_map_to_backends() {
        for tier in SolveTier::ALL {
            assert_eq!(SolveTier::from_code(tier.code()), Some(tier));
            if let Some(backend) = tier.backend() {
                assert_eq!(SolveTier::of_backend(backend), tier);
            }
        }
        assert_eq!(SolveTier::from_code(200), None);
    }

    #[test]
    fn validation_dead_letters_each_malformed_shape() {
        let platform = small_platform();
        let cases = [
            (
                Submission::new(f64::NAN, 10.0, 0),
                "invalid job: release must be finite",
            ),
            (
                Submission::new(-1.0, 10.0, 0),
                "invalid job: release must be nonnegative",
            ),
            (
                Submission::new(0.0, -5.0, 0),
                "invalid job: work must be positive",
            ),
            (Submission::new(0.0, 10.0, 99), "unknown databank 99"),
        ];
        for (submission, needle) in cases {
            let err = validate_submission(&submission, &platform).unwrap_err();
            let rendered = err.to_string();
            assert!(
                rendered.contains(needle),
                "expected {rendered:?} to contain {needle:?}"
            );
        }
        assert!(validate_submission(&Submission::new(0.0, 10.0, 0), &platform).is_ok());
    }
}
