//! The long-lived serve loop: validation → dead-letter queue, write-ahead
//! journaling, the degradation ladder with retry/backoff and a circuit
//! breaker, and crash recovery by journal replay.
//!
//! ## The write-ahead contract
//!
//! Every state transition of the [`ServeScheduler`] is journaled *before* it
//! is applied:
//!
//! * a decision is journaled as [`JournalEvent::Decision`] (the tier the
//!   ladder settled on) before [`ServeScheduler::install`];
//! * an accepted submission is journaled as [`JournalEvent::Submitted`]
//!   before [`ServeScheduler::stage`] — and any decision/advance *caused* by
//!   the submission (the frontier moving to its release date) happens, and
//!   is journaled, first, so the journal order is exactly the transition
//!   order.
//!
//! Replay applies the same transitions in the same order, so a recovered
//! process reaches bit-identical scheduler state.  Timing, fallbacks and
//! circuit breaking are *live-only policy*: their outcome (which tier
//! decided) is journaled, the wall clock never is consulted on replay.
//!
//! ## The degradation ladder
//!
//! A decision tries the solver tiers from the configured backend's rung
//! downwards (monge → simplex → primal-dual), each rung with an escalating
//! (`retry_backoff`×) time budget.  A rung that fails (infeasible /
//! certification failure / injected chaos) or overruns its budget falls
//! through to the next; the last rung keeps its result even when late
//! (a late decision beats none).  When every rung fails, or when the circuit
//! breaker is open after `breaker_threshold` consecutive over-budget
//! decisions, the EDF shed tier — plain list scheduling by virtual
//! deadlines, no flow solve — takes the decision instead.
//!
//! ## Bounded-replay recovery
//!
//! The journal is a *directory* of rotated segments plus scheduler-state
//! snapshots (see [`journal`] and [`snapshot`]).  After
//! each applied record the service checks the [`RotationPolicy`] threshold;
//! when due, the active segment is sealed, a snapshot of the exact
//! post-record state may be published (every `snapshot_every`th seal), and
//! sealed segments wholly covered by the oldest retained snapshot are
//! garbage-collected — so recovery work and disk stay bounded however long
//! the stream runs.
//!
//! [`StretchServe::recover`] walks a candidate ladder:
//!
//! 1. **newest snapshot first** — decode it (CRC), rebuild the scheduler,
//!    recompute the FNV-1a state digest against the embedded one, and
//!    replay only the segment suffix past the snapshot's record count;
//! 2. any failure (unreadable/corrupt snapshot, digest mismatch, missing
//!    suffix segments, a suffix record that does not replay) **rejects the
//!    candidate with a typed [`SnapshotRejectReason`]** and recovery falls
//!    back to the next-older snapshot;
//! 3. the final candidate is **full replay** from segment 0 — exactly the
//!    pre-rotation recovery path — available as long as segment 0 has not
//!    been garbage-collected.
//!
//! Whatever candidate wins, the recovered state is bit-identical to the
//! uninterrupted run (the same digest-compare contract as before; extended
//! by the rotation tests to every crash point of the seal → snapshot →
//! reopen sequence).

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use stretch_core::{SiteView, SolverConfig};
use stretch_platform::Platform;

use crate::dlq::{DeadLetter, DeadLetterQueue};
use crate::event::{
    validate_submission, JournalEvent, JournalRecord, RejectReason, SolveTier, Submission,
};
use crate::journal::{
    self, JournalError, RotationCrashPoint, RotationPolicy, SegmentScan, SegmentedJournal,
    TailStatus, TornReason,
};
use crate::metrics::ServeMetrics;
use crate::scheduler::{PreparedDecision, ServeScheduler, SolveFailure, EVENT_TOL};
use crate::snapshot::{self, ServiceCounters, Snapshot, SnapshotError};

/// Configuration of the serve loop.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Primary solver configuration: the backend names the *top* rung of the
    /// degradation ladder, `warm_start` is forwarded to every tier.
    pub solver: SolverConfig,
    /// Time budget of the first ladder rung.
    pub solve_budget: Duration,
    /// Budget multiplier applied at each fallback rung (retry with backoff).
    pub retry_backoff: u32,
    /// Consecutive over-budget decisions that trip the circuit breaker.
    pub breaker_threshold: u32,
    /// Decisions shed to EDF while the breaker is open, before it closes
    /// again.
    pub breaker_cooldown: u32,
    /// Dead-letter queue retention.
    pub dlq_capacity: usize,
    /// When the active journal segment rotates (record/byte threshold).
    pub rotation: RotationPolicy,
    /// Snapshot cadence in seals: a snapshot is published at every
    /// `snapshot_every`th segment seal (1 = every seal).  Must be nonzero.
    pub snapshot_every: u64,
    /// Snapshots retained on disk; older snapshots — and the sealed
    /// segments wholly covered by the oldest retained one — are
    /// garbage-collected at rotation and after recovery.  Clamped to ≥ 1.
    pub snapshot_retain: usize,
    /// Chaos injection for tests: `(decision_index, tier)` pairs that force
    /// the given solver rung to fail at the given decision.  Only solver
    /// rungs are affected (the EDF tier cannot fail).
    pub chaos_tier_failures: Vec<(u64, SolveTier)>,
    /// Chaos injection for tests: abort the process at the given point of
    /// the rotation sealing segment `index` — the deterministic stand-in
    /// for a crash landing inside the seal → snapshot → reopen window.
    pub chaos_rotation_abort: Option<(u64, RotationCrashPoint)>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            solver: SolverConfig::default(),
            solve_budget: Duration::from_millis(250),
            retry_backoff: 2,
            breaker_threshold: 3,
            breaker_cooldown: 4,
            dlq_capacity: 1024,
            rotation: RotationPolicy::default(),
            snapshot_every: 1,
            snapshot_retain: 2,
            chaos_tier_failures: Vec::new(),
            chaos_rotation_abort: None,
        }
    }
}

impl ServeConfig {
    /// Default config on an explicit solver configuration.
    pub fn with_solver(solver: SolverConfig) -> Self {
        ServeConfig {
            solver,
            ..Default::default()
        }
    }

    /// A config read from the environment: the solver from
    /// `STRETCH_MINCOST_BACKEND` / `STRETCH_WARM_START`, the rotation and
    /// snapshot knobs from
    ///
    /// * `STRETCH_SERVE_SEGMENT_RECORDS` — records per segment before
    ///   rotation (default 1024),
    /// * `STRETCH_SERVE_SEGMENT_BYTES` — frame bytes per segment before
    ///   rotation (default 1 MiB),
    /// * `STRETCH_SERVE_SNAPSHOT_EVERY` — snapshot cadence in seals
    ///   (default 1),
    /// * `STRETCH_SERVE_SNAPSHOT_RETAIN` — snapshots retained (default 2).
    ///
    /// All four follow the strict `STRETCH_*` parse policy: unset falls
    /// back to the default; `0`, overflow, garbage or non-unicode values
    /// abort loudly with the offending string
    /// (see [`SolverConfig::env_u64_nonzero`]).
    pub fn from_env() -> Self {
        let defaults = RotationPolicy::default();
        let mut config = ServeConfig::with_solver(SolverConfig::from_env());
        config.rotation = RotationPolicy {
            max_records: SolverConfig::env_u64_nonzero(
                "STRETCH_SERVE_SEGMENT_RECORDS",
                defaults.max_records,
            ),
            max_bytes: SolverConfig::env_u64_nonzero(
                "STRETCH_SERVE_SEGMENT_BYTES",
                defaults.max_bytes,
            ),
        };
        config.snapshot_every = SolverConfig::env_u64_nonzero("STRETCH_SERVE_SNAPSHOT_EVERY", 1);
        config.snapshot_retain = usize::try_from(SolverConfig::env_u64_nonzero(
            "STRETCH_SERVE_SNAPSHOT_RETAIN",
            2,
        ))
        .unwrap_or_else(|_| {
            panic!("STRETCH_SERVE_SNAPSHOT_RETAIN overflows usize on this platform")
        });
        config
    }

    /// The solver rungs of the degradation ladder: the suffix of
    /// monge → simplex → primal-dual starting at the configured backend.
    /// (The EDF shed tier sits below and is handled separately.)
    pub fn solve_ladder(&self) -> Vec<SolveTier> {
        const RUNGS: [SolveTier; 3] = [SolveTier::Monge, SolveTier::Simplex, SolveTier::PrimalDual];
        let top = SolveTier::of_backend(self.solver.backend);
        let start = RUNGS.iter().position(|&t| t == top).unwrap_or(0);
        RUNGS[start..].to_vec()
    }
}

/// What [`StretchServe::submit`] did with a submission.  Rejection is normal
/// flow (the letter is parked in the DLQ), not an error; the `Err` channel
/// of `submit` is reserved for journal I/O failures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SubmitOutcome {
    /// Validated, journaled and staged; carries the assigned job id.
    Accepted(u64),
    /// Dead-lettered with this reason.
    Rejected(RejectReason),
}

impl SubmitOutcome {
    /// `true` for [`SubmitOutcome::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, SubmitOutcome::Accepted(_))
    }
}

/// Why a snapshot candidate was rejected during recovery — one entry per
/// skipped snapshot in [`RecoveryReport::rejected_snapshots`].
#[derive(Clone, Debug, PartialEq)]
pub enum SnapshotRejectReason {
    /// The snapshot file could not be read or decoded (I/O, bad magic,
    /// truncation, checksum mismatch, malformed payload).
    Decode(SnapshotError),
    /// The snapshot decoded, but the scheduler rebuilt from it does not
    /// reproduce the embedded FNV-1a state digest — the state is not the
    /// one it claims to be (checksum collision or encoder/decoder skew).
    DigestMismatch {
        /// The digest embedded in the snapshot.
        expected: u64,
        /// The digest of the rebuilt scheduler.
        actual: u64,
    },
    /// The segment suffix past the snapshot has a gap: segment `needed` is
    /// neither on disk nor covered by the snapshot.
    MissingSegments {
        /// The first missing segment index.
        needed: u64,
    },
    /// A mid-chain sealed segment of the suffix is torn or unreadable —
    /// sealed data is fsynced before the rename, so this is disk
    /// corruption, not a crash artefact.
    Segment {
        /// The offending segment index.
        segment: u64,
        /// What was wrong.
        reason: String,
    },
    /// A suffix record does not replay on top of the restored state.
    Replay {
        /// Journal-global index of the offending record.
        record: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for SnapshotRejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotRejectReason::Decode(e) => write!(f, "{e}"),
            SnapshotRejectReason::DigestMismatch { expected, actual } => write!(
                f,
                "state digest mismatch: snapshot claims {expected:#018x}, rebuilt state is {actual:#018x}"
            ),
            SnapshotRejectReason::MissingSegments { needed } => {
                write!(f, "segment {needed} of the replay suffix is missing")
            }
            SnapshotRejectReason::Segment { segment, reason } => {
                write!(f, "sealed segment {segment} is corrupt: {reason}")
            }
            SnapshotRejectReason::Replay { record, reason } => {
                write!(f, "record {record} does not replay: {reason}")
            }
        }
    }
}

/// Why recovery failed.
#[derive(Clone, Debug, PartialEq)]
pub enum RecoverError {
    /// The journal directory could not be read or is not a journal.
    Journal(JournalError),
    /// The journal parsed but its record sequence is semantically impossible
    /// (bad sequence number, out-of-order releases, a decision that does not
    /// replay) — checksum-valid garbage or a foreign file.
    Corrupt {
        /// Journal-global index of the offending record.
        record: usize,
        /// What was wrong.
        reason: String,
    },
    /// Every candidate failed: each snapshot was rejected for the paired
    /// typed reason, and full replay was impossible (segment 0 has been
    /// garbage-collected — its records exist only inside the snapshots).
    Unrecoverable {
        /// The rejected snapshots, newest first.
        rejected: Vec<(u64, SnapshotRejectReason)>,
    },
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Journal(e) => write!(f, "{e}"),
            RecoverError::Corrupt { record, reason } => {
                write!(f, "journal record {record} is corrupt: {reason}")
            }
            RecoverError::Unrecoverable { rejected } => {
                write!(
                    f,
                    "no recovery candidate survived ({} snapshots rejected",
                    rejected.len()
                )?;
                for (upto, reason) in rejected {
                    write!(f, "; snapshot {upto}: {reason}")?;
                }
                write!(f, ") and segment 0 is garbage-collected")
            }
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<JournalError> for RecoverError {
    fn from(e: JournalError) -> Self {
        RecoverError::Journal(e)
    }
}

/// Summary of a successful recovery.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryReport {
    /// Records accounted for in total: those covered by the snapshot (if
    /// one was used) plus those replayed from the segment suffix.
    pub records: usize,
    /// Submissions among them (total, snapshot + replayed).
    pub submissions: u64,
    /// Decisions among them (total, snapshot + replayed).
    pub decisions: u64,
    /// Sealed-segment index of the snapshot recovery restored from
    /// (`None` = full replay).
    pub snapshot: Option<u64>,
    /// Records covered by that snapshot (0 for full replay).
    pub snapshot_records: u64,
    /// Records actually replayed from segments.
    pub replayed_records: usize,
    /// Snapshots rejected before the winning candidate, newest first, each
    /// with its typed reason.
    pub rejected_snapshots: Vec<(u64, SnapshotRejectReason)>,
    /// Why the tail of the last segment was torn, when it was.
    pub torn: Option<TornReason>,
    /// Bytes of torn tail truncated before reopening for append.
    pub truncated_bytes: u64,
    /// Sealed segments garbage-collected after recovery.
    pub gc_segments: usize,
    /// Snapshots garbage-collected after recovery.
    pub gc_snapshots: usize,
}

/// What one replayed record was.
enum ReplayedEvent {
    Submission,
    Decision(SolveTier),
}

/// Applies one journaled event to a replaying scheduler.  The error is just
/// the reason string — the caller knows the record's journal-global index.
fn replay_one(
    platform: &Platform,
    scheduler: &mut ServeScheduler,
    seq: &mut u64,
    event: &JournalEvent,
) -> Result<ReplayedEvent, String> {
    match *event {
        JournalEvent::Submitted {
            seq: s,
            release,
            work,
            databank,
        } => {
            if s != *seq {
                return Err(format!("expected sequence {}, found {s}", *seq));
            }
            let databank = usize::try_from(databank)
                .map_err(|_| format!("databank id {databank} overflows usize"))?;
            let submission = Submission::new(release, work, databank);
            validate_submission(&submission, platform)
                .map_err(|e| format!("journaled submission invalid: {e}"))?;
            if scheduler.started() {
                let frontier = scheduler.stage_time();
                if release < frontier - EVENT_TOL
                    || (scheduler.has_active() && release <= frontier + EVENT_TOL)
                {
                    return Err(format!(
                        "release {release} behind the replayed frontier {frontier}"
                    ));
                }
                if release > frontier + EVENT_TOL {
                    if scheduler.needs_decision() {
                        return Err(
                            "frontier moves with a decision due but no decision record".into()
                        );
                    }
                    scheduler.advance(release);
                }
            }
            scheduler.stage(release, work, databank);
            *seq += 1;
            Ok(ReplayedEvent::Submission)
        }
        JournalEvent::Decision { tier } => {
            if !scheduler.needs_decision() {
                return Err(format!(
                    "{} decision record but no decision is due",
                    tier.name()
                ));
            }
            match scheduler.try_solve(tier) {
                Ok(prepared) => scheduler.install(prepared),
                Err(e) => {
                    return Err(format!(
                        "journaled {} decision does not replay: {e}",
                        tier.name()
                    ))
                }
            }
            Ok(ReplayedEvent::Decision(tier))
        }
    }
}

/// What replaying a run of segments accumulated.
struct SegmentReplay {
    /// Submissions replayed (suffix only, not the snapshot's).
    submissions: u64,
    /// Decisions replayed.
    decisions: u64,
    /// Replayed decisions per tier.
    decisions_by_tier: [u64; 4],
    /// Records replayed.
    replayed: usize,
    /// Torn-tail reason of the last segment, when its tail was torn.
    torn: Option<TornReason>,
    /// Bytes past the last segment's valid prefix.
    truncated_bytes: u64,
    /// Valid prefix bytes of the final segment (what reopen truncates to).
    last_valid_bytes: u64,
    /// Records in the final segment.
    last_records: u64,
}

/// Why a segment suffix did not replay — mapped by the caller to
/// [`RecoverError`] (full replay) or [`SnapshotRejectReason`] (candidate).
enum ReplayError {
    /// A segment could not be loaded at all.
    Segment { segment: u64, error: JournalError },
    /// A *sealed* segment has a torn tail: sealed data is fsynced before the
    /// rename, so this is disk corruption, not a crash artefact.
    SealedTorn {
        segment: u64,
        reason: TornReason,
        record: usize,
    },
    /// A record does not replay (journal-global index).
    Record { record: usize, reason: String },
}

/// Replays `segments` (in chain order) on top of `scheduler`, which already
/// holds the state of the first `base_records` records.  A torn tail is
/// tolerated only on the last segment when it is the active (`.open`) one;
/// `tolerate_empty_last` additionally forgives a last open segment whose
/// magic header never reached the disk (created, crashed before the sync).
fn replay_segments(
    dir: &Path,
    platform: &Platform,
    scheduler: &mut ServeScheduler,
    seq: &mut u64,
    base_records: u64,
    segments: &[(u64, bool)],
    tolerate_empty_last: bool,
) -> Result<SegmentReplay, ReplayError> {
    let mut out = SegmentReplay {
        submissions: 0,
        decisions: 0,
        decisions_by_tier: [0; 4],
        replayed: 0,
        torn: None,
        truncated_bytes: 0,
        last_valid_bytes: 0,
        last_records: 0,
    };
    for (pos, &(index, sealed)) in segments.iter().enumerate() {
        let last = pos + 1 == segments.len();
        let path = journal::segment_path(dir, index, sealed);
        let (records, tail) = match journal::load(&path) {
            Ok(v) => v,
            Err(JournalError::BadMagic { .. }) if last && !sealed && tolerate_empty_last => {
                // The segment file was created but its header never hit the
                // disk: an empty segment, recreated on reopen.
                out.last_valid_bytes = 0;
                out.last_records = 0;
                continue;
            }
            Err(e) => {
                return Err(ReplayError::Segment {
                    segment: index,
                    error: e,
                })
            }
        };
        if let TailStatus::Torn {
            valid_bytes,
            reason,
        } = tail
        {
            if sealed {
                return Err(ReplayError::SealedTorn {
                    segment: index,
                    reason,
                    record: base_records as usize + out.replayed + records.len(),
                });
            }
            let file_len = std::fs::metadata(&path)
                .map(|m| m.len())
                .unwrap_or(valid_bytes);
            out.torn = Some(reason);
            out.truncated_bytes = file_len.saturating_sub(valid_bytes);
            out.last_valid_bytes = valid_bytes;
        } else if last {
            out.last_valid_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        }
        if last {
            out.last_records = records.len() as u64;
        }
        for record in &records {
            let idx = base_records as usize + out.replayed;
            match replay_one(platform, scheduler, seq, &record.event) {
                Ok(ReplayedEvent::Submission) => out.submissions += 1,
                Ok(ReplayedEvent::Decision(tier)) => {
                    out.decisions += 1;
                    out.decisions_by_tier[tier.code() as usize] += 1;
                }
                Err(reason) => {
                    return Err(ReplayError::Record {
                        record: idx,
                        reason,
                    })
                }
            }
            out.replayed += 1;
        }
    }
    Ok(out)
}

/// The state a winning recovery candidate produced, before the journal is
/// reopened and the report assembled.
struct Recovered {
    scheduler: ServeScheduler,
    seq: u64,
    metrics: ServeMetrics,
    breaker_busts: u32,
    breaker_open_cooldown: u32,
    snapshot: Option<u64>,
    snapshot_records: u64,
    replayed: usize,
    torn: Option<TornReason>,
    truncated_bytes: u64,
    last_valid_bytes: u64,
    last_records: u64,
}

/// The crash-safe streaming scheduler service.
pub struct StretchServe {
    platform: Platform,
    config: ServeConfig,
    scheduler: ServeScheduler,
    journal: SegmentedJournal,
    dlq: DeadLetterQueue,
    metrics: ServeMetrics,
    /// Next submission sequence number.
    seq: u64,
    finished: bool,
    /// Consecutive over-budget decisions (breaker arming state).
    breaker_busts: u32,
    /// Shed decisions left before the breaker closes; `> 0` means open.
    breaker_open_cooldown: u32,
}

impl StretchServe {
    /// Starts a fresh service journaling into directory `path` (wiping any
    /// journal artefacts already there).
    pub fn create(
        path: &Path,
        platform: Platform,
        config: ServeConfig,
    ) -> Result<Self, JournalError> {
        let journal = SegmentedJournal::create(path, config.rotation)?;
        Ok(Self::assemble(platform, config, journal))
    }

    fn assemble(platform: Platform, config: ServeConfig, journal: SegmentedJournal) -> Self {
        let scheduler = ServeScheduler::new(
            SiteView::of_platform(&platform),
            config.solver.warm_start,
            config.solver.incremental,
        );
        let dlq = DeadLetterQueue::new(config.dlq_capacity);
        StretchServe {
            platform,
            config,
            scheduler,
            journal,
            dlq,
            metrics: ServeMetrics::new(),
            seq: 0,
            finished: false,
            breaker_busts: 0,
            breaker_open_cooldown: 0,
        }
    }

    /// Recovers a service from an existing journal directory, walking the
    /// candidate ladder of the module docs: newest snapshot + segment-suffix
    /// replay first, falling back one snapshot at a time (each rejection
    /// recorded with its typed [`SnapshotRejectReason`]), and finally full
    /// replay from segment 0 — reaching bit-identical state to the process
    /// that wrote the journal (pinned by the kill-and-recover tests).
    ///
    /// Snapshots that failed verification are deleted (they can never heal),
    /// then the directory is garbage-collected against the surviving ones.
    ///
    /// Circuit-breaker arming state is recovered only through a snapshot
    /// (it is live timing policy the journal never records): full replay
    /// restarts it at zero.  The dead-letter queue's *letters* are likewise
    /// live-only — a snapshot carries the `dead_lettered` count, not the
    /// parked submissions.
    pub fn recover(
        path: &Path,
        platform: Platform,
        config: ServeConfig,
    ) -> Result<(Self, RecoveryReport), RecoverError> {
        let scan = journal::scan_dir(path)?;
        let chain = scan.chain();
        if chain.is_empty() && scan.snapshots.is_empty() {
            return Err(JournalError::BadLayout {
                dir: path.to_path_buf(),
                reason: "no segments and no snapshots".into(),
            }
            .into());
        }
        let mut rejected: Vec<(u64, SnapshotRejectReason)> = Vec::new();
        let mut winner = None;
        for &upto in scan.snapshots.iter().rev() {
            match Self::recover_from_snapshot(path, &platform, &config, upto, &scan, &chain) {
                Ok(r) => {
                    winner = Some(r);
                    break;
                }
                Err(reason) => rejected.push((upto, reason)),
            }
        }
        let recovered = match winner {
            Some(r) => r,
            None if chain.first() == Some(&0) => {
                Self::recover_full(path, &platform, &config, &scan, &chain)?
            }
            None => return Err(RecoverError::Unrecoverable { rejected }),
        };
        // Rejected snapshots failed verification and can never heal; delete
        // them so the GC below never computes segment coverage from a
        // snapshot recovery itself refused to trust.
        for &(upto, _) in &rejected {
            let p = journal::snapshot_path(path, upto);
            std::fs::remove_file(&p).map_err(|e| {
                RecoverError::Journal(JournalError::Io {
                    op: "gc",
                    path: p.clone(),
                    message: e.to_string(),
                })
            })?;
        }
        let (gc_segments, gc_snapshots) = journal::gc(path, config.snapshot_retain)?;
        let last_segment = chain.last().map(|&i| (i, scan.sealed.contains(&i)));
        let journal = SegmentedJournal::open_after_recovery(
            path,
            config.rotation,
            last_segment,
            recovered.last_valid_bytes,
            recovered.last_records,
            recovered.snapshot_records + recovered.replayed as u64,
        )?;
        let Recovered {
            scheduler,
            seq,
            mut metrics,
            breaker_busts,
            breaker_open_cooldown,
            snapshot,
            snapshot_records,
            replayed,
            torn,
            truncated_bytes,
            ..
        } = recovered;
        metrics.replayed_records = replayed as u64;
        metrics.torn_bytes_truncated = truncated_bytes;
        let report = RecoveryReport {
            records: snapshot_records as usize + replayed,
            submissions: seq,
            decisions: scheduler.decisions(),
            snapshot,
            snapshot_records,
            replayed_records: replayed,
            rejected_snapshots: rejected,
            torn,
            truncated_bytes,
            gc_segments,
            gc_snapshots,
        };
        let dlq = DeadLetterQueue::new(config.dlq_capacity);
        let serve = StretchServe {
            platform,
            config,
            scheduler,
            journal,
            dlq,
            metrics,
            seq,
            finished: false,
            breaker_busts,
            breaker_open_cooldown,
        };
        Ok((serve, report))
    }

    /// One rung of the candidate ladder: restore from the snapshot covering
    /// sealed segment `upto` and replay the segment suffix past it.
    fn recover_from_snapshot(
        dir: &Path,
        platform: &Platform,
        config: &ServeConfig,
        upto: u64,
        scan: &SegmentScan,
        chain: &[u64],
    ) -> Result<Recovered, SnapshotRejectReason> {
        let snap = snapshot::load(&journal::snapshot_path(dir, upto))
            .map_err(SnapshotRejectReason::Decode)?;
        if let Some(open) = scan.open {
            if upto >= open {
                // Snapshots only ever cover *sealed* segments; a snapshot
                // claiming the active one is contradictory.
                return Err(SnapshotRejectReason::Segment {
                    segment: open,
                    reason: "active segment is claimed covered by the snapshot".into(),
                });
            }
        }
        let mut scheduler = ServeScheduler::from_state(
            SiteView::of_platform(platform),
            config.solver.warm_start,
            config.solver.incremental,
            snap.state,
        );
        let actual = scheduler.state_digest();
        if actual != snap.digest {
            return Err(SnapshotRejectReason::DigestMismatch {
                expected: snap.digest,
                actual,
            });
        }
        let mut segments = Vec::new();
        for (expect, &i) in (upto + 1..).zip(chain.iter().filter(|&&i| i > upto)) {
            if i != expect {
                return Err(SnapshotRejectReason::MissingSegments { needed: expect });
            }
            segments.push((i, scan.sealed.contains(&i)));
        }
        let counters = snap.counters;
        let mut seq = counters.seq;
        let stats = replay_segments(
            dir,
            platform,
            &mut scheduler,
            &mut seq,
            counters.records,
            &segments,
            true,
        )
        .map_err(|e| match e {
            ReplayError::Segment { segment, error } => SnapshotRejectReason::Segment {
                segment,
                reason: error.to_string(),
            },
            ReplayError::SealedTorn {
                segment, reason, ..
            } => SnapshotRejectReason::Segment {
                segment,
                reason: format!("torn tail in a sealed segment: {reason}"),
            },
            ReplayError::Record { record, reason } => {
                SnapshotRejectReason::Replay { record, reason }
            }
        })?;
        let mut metrics = ServeMetrics::new();
        metrics.submitted = counters.submitted + stats.submissions;
        metrics.accepted = counters.accepted + stats.submissions;
        metrics.dead_lettered = counters.dead_lettered;
        metrics.decisions = counters.decisions + stats.decisions;
        for (tally, (snap_t, replay_t)) in metrics.decisions_by_tier.iter_mut().zip(
            counters
                .decisions_by_tier
                .iter()
                .zip(stats.decisions_by_tier.iter()),
        ) {
            *tally = snap_t + replay_t;
        }
        metrics.fallbacks = counters.fallbacks;
        metrics.budget_busts = counters.budget_busts;
        metrics.breaker_opens = counters.breaker_opens;
        metrics.shed_decisions = counters.shed_decisions;
        Ok(Recovered {
            scheduler,
            seq,
            metrics,
            breaker_busts: counters.breaker_busts,
            breaker_open_cooldown: counters.breaker_open_cooldown,
            snapshot: Some(upto),
            snapshot_records: counters.records,
            replayed: stats.replayed,
            torn: stats.torn,
            truncated_bytes: stats.truncated_bytes,
            last_valid_bytes: stats.last_valid_bytes,
            last_records: stats.last_records,
        })
    }

    /// The last candidate: full replay of the whole chain from segment 0 —
    /// exactly the pre-rotation recovery path.
    fn recover_full(
        dir: &Path,
        platform: &Platform,
        config: &ServeConfig,
        scan: &SegmentScan,
        chain: &[u64],
    ) -> Result<Recovered, RecoverError> {
        let mut scheduler = ServeScheduler::new(
            SiteView::of_platform(platform),
            config.solver.warm_start,
            config.solver.incremental,
        );
        let mut seq = 0u64;
        let segments: Vec<(u64, bool)> = chain
            .iter()
            .map(|&i| (i, scan.sealed.contains(&i)))
            .collect();
        let stats = replay_segments(
            dir,
            platform,
            &mut scheduler,
            &mut seq,
            0,
            &segments,
            chain.len() > 1,
        )
        .map_err(|e| match e {
            ReplayError::Segment { error, .. } => RecoverError::Journal(error),
            ReplayError::SealedTorn {
                segment,
                reason,
                record,
            } => RecoverError::Corrupt {
                record,
                reason: format!(
                    "sealed segment {segment} has a torn tail ({reason}); sealed data is \
                     fsynced before the rename, so this is disk corruption"
                ),
            },
            ReplayError::Record { record, reason } => RecoverError::Corrupt { record, reason },
        })?;
        let mut metrics = ServeMetrics::new();
        metrics.submitted = stats.submissions;
        metrics.accepted = stats.submissions;
        metrics.decisions = stats.decisions;
        metrics.decisions_by_tier = stats.decisions_by_tier;
        Ok(Recovered {
            scheduler,
            seq,
            metrics,
            breaker_busts: 0,
            breaker_open_cooldown: 0,
            snapshot: None,
            snapshot_records: 0,
            replayed: stats.replayed,
            torn: stats.torn,
            truncated_bytes: stats.truncated_bytes,
            last_valid_bytes: stats.last_valid_bytes,
            last_records: stats.last_records,
        })
    }

    /// Freezes the full service state — scheduler + counters + the
    /// self-verification digest — as of the last applied record.
    fn export_snapshot(&self) -> Snapshot {
        Snapshot {
            state: self.scheduler.export_state(),
            counters: ServiceCounters {
                seq: self.seq,
                records: self.journal.total_records(),
                breaker_busts: self.breaker_busts,
                breaker_open_cooldown: self.breaker_open_cooldown,
                submitted: self.metrics.submitted,
                accepted: self.metrics.accepted,
                dead_lettered: self.metrics.dead_lettered,
                decisions: self.metrics.decisions,
                decisions_by_tier: self.metrics.decisions_by_tier,
                fallbacks: self.metrics.fallbacks,
                budget_busts: self.metrics.budget_busts,
                breaker_opens: self.metrics.breaker_opens,
                shed_decisions: self.metrics.shed_decisions,
            },
            digest: self.scheduler.state_digest(),
        }
    }

    /// Rotates the active segment when the policy threshold is reached.
    /// Called *after* the appended record has been applied to the scheduler,
    /// so a snapshot taken here covers exactly the sealed prefix.
    fn rotate_if_due(&mut self) -> Result<(), JournalError> {
        if !self.journal.should_rotate() {
            return Ok(());
        }
        let sealed = self.journal.active_index();
        // Seals so far number `sealed + 1`; publish on every
        // `snapshot_every`th one.
        let snapshot_due = (sealed + 1).is_multiple_of(self.config.snapshot_every.max(1));
        let bytes = snapshot_due.then(|| snapshot::encode(&self.export_snapshot()));
        let chaos = self
            .config
            .chaos_rotation_abort
            .and_then(|(index, point)| (index == sealed).then_some(point));
        self.journal
            .rotate(bytes.as_deref(), self.config.snapshot_retain, chaos)?;
        Ok(())
    }

    fn reject(
        &mut self,
        submission: Submission,
        reason: RejectReason,
    ) -> Result<SubmitOutcome, JournalError> {
        self.metrics.dead_lettered += 1;
        self.dlq.push(DeadLetter {
            submission,
            reason,
            wall_micros: journal::wall_clock_micros(),
        });
        Ok(SubmitOutcome::Rejected(reason))
    }

    /// Offers a submission to the service.
    ///
    /// Malformed, infeasible or out-of-order submissions are dead-lettered
    /// (that is the `Ok(Rejected)` arm — never a panic, never an `Err`);
    /// `Err` is reserved for journal I/O failures, after which the service
    /// should be abandoned and recovered from the journal.
    pub fn submit(&mut self, submission: Submission) -> Result<SubmitOutcome, JournalError> {
        self.metrics.submitted += 1;
        if self.finished {
            return self.reject(submission, RejectReason::Closed);
        }
        if let Err(reason) = validate_submission(&submission, &self.platform) {
            return self.reject(submission, reason);
        }
        if self.scheduler.started() {
            let frontier = self.scheduler.stage_time();
            // Behind the frontier, or *at* the frontier after its decision
            // was already taken (only possible right after a recovery whose
            // journal ended in a decision record): accepting would rewrite
            // scheduled history.
            if submission.release < frontier - EVENT_TOL
                || (self.scheduler.has_active() && submission.release <= frontier + EVENT_TOL)
            {
                return self.reject(
                    submission,
                    RejectReason::OutOfOrder {
                        release: submission.release,
                        frontier,
                    },
                );
            }
            if submission.release > frontier + EVENT_TOL {
                // The frontier moves: decide for the jobs pending at the old
                // frontier (unless an installed decision already covers
                // them), then execute up to the new event time.
                if self.scheduler.needs_decision() {
                    self.decide()?;
                }
                self.scheduler.advance(submission.release);
            }
        }
        self.journal.append(&JournalRecord {
            wall_micros: journal::wall_clock_micros(),
            event: JournalEvent::Submitted {
                seq: self.seq,
                release: submission.release,
                work: submission.work,
                databank: submission.databank as u64,
            },
        })?;
        self.seq += 1;
        let id = self
            .scheduler
            .stage(submission.release, submission.work, submission.databank);
        self.metrics.accepted += 1;
        self.rotate_if_due()?;
        Ok(SubmitOutcome::Accepted(id as u64))
    }

    /// Runs the degradation ladder for the decision due at the frontier,
    /// journals the winning tier (write-ahead) and installs the decision.
    fn decide(&mut self) -> Result<(), JournalError> {
        let decision_index = self.scheduler.decisions();
        let shedding = self.breaker_open_cooldown > 0;
        let mut chosen: Option<(PreparedDecision, Duration)> = None;
        let mut busted = false;
        if !shedding {
            let ladder = self.config.solve_ladder();
            let rungs = ladder.len();
            let mut budget = self.config.solve_budget;
            for (i, tier) in ladder.into_iter().enumerate() {
                if self
                    .config
                    .chaos_tier_failures
                    .contains(&(decision_index, tier))
                {
                    self.metrics.fallbacks += 1;
                    budget = budget.saturating_mul(self.config.retry_backoff.max(1));
                    continue;
                }
                let t0 = Instant::now();
                match self.scheduler.try_solve(tier) {
                    // Nothing pending: no decision to take at all.
                    Err(SolveFailure::NothingPending) => return Ok(()),
                    Err(_) => self.metrics.fallbacks += 1,
                    Ok(prepared) => {
                        let elapsed = t0.elapsed();
                        if elapsed <= budget || i + 1 == rungs {
                            // Within budget, or the last rung: a late
                            // decision beats none, so keep it (but count the
                            // bust below).
                            busted = busted || elapsed > budget;
                            chosen = Some((prepared, elapsed));
                            break;
                        }
                        // Over budget with rungs left: discard and fall
                        // through (the prepared decision was never
                        // installed, so state is untouched).
                        busted = true;
                        self.metrics.fallbacks += 1;
                    }
                }
                budget = budget.saturating_mul(self.config.retry_backoff.max(1));
            }
        }
        let (prepared, elapsed) = match chosen {
            Some(c) => c,
            None => {
                // Breaker open, or every solver rung failed: shed to EDF,
                // which cannot fail on pending work.
                let t0 = Instant::now();
                match self.scheduler.try_solve(SolveTier::Edf) {
                    Ok(prepared) => {
                        if shedding {
                            self.metrics.shed_decisions += 1;
                        }
                        (prepared, t0.elapsed())
                    }
                    Err(_) => return Ok(()),
                }
            }
        };
        // Breaker bookkeeping — live-only policy; replay reproduces its
        // *effects* from the journaled tiers, never this arithmetic.
        if busted {
            self.metrics.budget_busts += 1;
            self.breaker_busts += 1;
            if self.breaker_open_cooldown == 0
                && self.breaker_busts >= self.config.breaker_threshold
            {
                self.breaker_open_cooldown = self.config.breaker_cooldown;
                self.metrics.breaker_opens += 1;
                self.breaker_busts = 0;
            }
        } else if self.breaker_open_cooldown == 0 {
            self.breaker_busts = 0;
        }
        if shedding {
            self.breaker_open_cooldown -= 1;
        }
        self.journal.append(&JournalRecord {
            wall_micros: journal::wall_clock_micros(),
            event: JournalEvent::Decision {
                tier: prepared.tier(),
            },
        })?;
        self.metrics
            .observe_decision(prepared.tier(), elapsed.as_secs_f64());
        self.scheduler.install(prepared);
        self.rotate_if_due()?;
        Ok(())
    }

    /// Drains the service: takes the final decision if one is due, executes
    /// to completion (infinite horizon) and closes the stream.  Idempotent.
    pub fn finish(&mut self) -> Result<(), JournalError> {
        if !self.finished {
            if self.scheduler.needs_decision() {
                self.decide()?;
            }
            self.scheduler.advance(f64::INFINITY);
            self.journal.sync()?;
            self.finished = true;
        }
        Ok(())
    }

    /// `true` after [`StretchServe::finish`].
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Completion time per accepted job (`NaN` while unfinished).
    pub fn completions(&self) -> &[f64] {
        self.scheduler.completions()
    }

    /// Digest of the replayed scheduler state (see
    /// [`ServeScheduler::state_digest`]).
    pub fn state_digest(&self) -> u64 {
        self.scheduler.state_digest()
    }

    /// The underlying scheduler state (read-only).
    pub fn scheduler(&self) -> &ServeScheduler {
        &self.scheduler
    }

    /// Live counters.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The dead-letter queue.
    pub fn dlq(&self) -> &DeadLetterQueue {
        &self.dlq
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The journal directory.
    pub fn journal_path(&self) -> PathBuf {
        self.journal.dir().to_path_buf()
    }
}
