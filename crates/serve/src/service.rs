//! The long-lived serve loop: validation → dead-letter queue, write-ahead
//! journaling, the degradation ladder with retry/backoff and a circuit
//! breaker, and crash recovery by journal replay.
//!
//! ## The write-ahead contract
//!
//! Every state transition of the [`ServeScheduler`] is journaled *before* it
//! is applied:
//!
//! * a decision is journaled as [`JournalEvent::Decision`] (the tier the
//!   ladder settled on) before [`ServeScheduler::install`];
//! * an accepted submission is journaled as [`JournalEvent::Submitted`]
//!   before [`ServeScheduler::stage`] — and any decision/advance *caused* by
//!   the submission (the frontier moving to its release date) happens, and
//!   is journaled, first, so the journal order is exactly the transition
//!   order.
//!
//! Replay applies the same transitions in the same order, so a recovered
//! process reaches bit-identical scheduler state.  Timing, fallbacks and
//! circuit breaking are *live-only policy*: their outcome (which tier
//! decided) is journaled, the wall clock never is consulted on replay.
//!
//! ## The degradation ladder
//!
//! A decision tries the solver tiers from the configured backend's rung
//! downwards (monge → simplex → primal-dual), each rung with an escalating
//! (`retry_backoff`×) time budget.  A rung that fails (infeasible /
//! certification failure / injected chaos) or overruns its budget falls
//! through to the next; the last rung keeps its result even when late
//! (a late decision beats none).  When every rung fails, or when the circuit
//! breaker is open after `breaker_threshold` consecutive over-budget
//! decisions, the EDF shed tier — plain list scheduling by virtual
//! deadlines, no flow solve — takes the decision instead.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use stretch_core::{SiteView, SolverConfig};
use stretch_platform::Platform;

use crate::dlq::{DeadLetter, DeadLetterQueue};
use crate::event::{
    validate_submission, JournalEvent, JournalRecord, RejectReason, SolveTier, Submission,
};
use crate::journal::{self, JournalError, JournalWriter, TailStatus, TornReason};
use crate::metrics::ServeMetrics;
use crate::scheduler::{PreparedDecision, ServeScheduler, SolveFailure, EVENT_TOL};

/// Configuration of the serve loop.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Primary solver configuration: the backend names the *top* rung of the
    /// degradation ladder, `warm_start` is forwarded to every tier.
    pub solver: SolverConfig,
    /// Time budget of the first ladder rung.
    pub solve_budget: Duration,
    /// Budget multiplier applied at each fallback rung (retry with backoff).
    pub retry_backoff: u32,
    /// Consecutive over-budget decisions that trip the circuit breaker.
    pub breaker_threshold: u32,
    /// Decisions shed to EDF while the breaker is open, before it closes
    /// again.
    pub breaker_cooldown: u32,
    /// Dead-letter queue retention.
    pub dlq_capacity: usize,
    /// Chaos injection for tests: `(decision_index, tier)` pairs that force
    /// the given solver rung to fail at the given decision.  Only solver
    /// rungs are affected (the EDF tier cannot fail).
    pub chaos_tier_failures: Vec<(u64, SolveTier)>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            solver: SolverConfig::default(),
            solve_budget: Duration::from_millis(250),
            retry_backoff: 2,
            breaker_threshold: 3,
            breaker_cooldown: 4,
            dlq_capacity: 1024,
            chaos_tier_failures: Vec::new(),
        }
    }
}

impl ServeConfig {
    /// Default config on an explicit solver configuration.
    pub fn with_solver(solver: SolverConfig) -> Self {
        ServeConfig {
            solver,
            ..Default::default()
        }
    }

    /// The solver rungs of the degradation ladder: the suffix of
    /// monge → simplex → primal-dual starting at the configured backend.
    /// (The EDF shed tier sits below and is handled separately.)
    pub fn solve_ladder(&self) -> Vec<SolveTier> {
        const RUNGS: [SolveTier; 3] = [SolveTier::Monge, SolveTier::Simplex, SolveTier::PrimalDual];
        let top = SolveTier::of_backend(self.solver.backend);
        let start = RUNGS.iter().position(|&t| t == top).unwrap_or(0);
        RUNGS[start..].to_vec()
    }
}

/// What [`StretchServe::submit`] did with a submission.  Rejection is normal
/// flow (the letter is parked in the DLQ), not an error; the `Err` channel
/// of `submit` is reserved for journal I/O failures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SubmitOutcome {
    /// Validated, journaled and staged; carries the assigned job id.
    Accepted(u64),
    /// Dead-lettered with this reason.
    Rejected(RejectReason),
}

impl SubmitOutcome {
    /// `true` for [`SubmitOutcome::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, SubmitOutcome::Accepted(_))
    }
}

/// Why recovery failed.
#[derive(Clone, Debug, PartialEq)]
pub enum RecoverError {
    /// The journal file could not be read or is not a journal.
    Journal(JournalError),
    /// The journal parsed but its record sequence is semantically impossible
    /// (bad sequence number, out-of-order releases, a decision that does not
    /// replay) — checksum-valid garbage or a foreign file.
    Corrupt {
        /// Index of the offending record.
        record: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Journal(e) => write!(f, "{e}"),
            RecoverError::Corrupt { record, reason } => {
                write!(f, "journal record {record} is corrupt: {reason}")
            }
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<JournalError> for RecoverError {
    fn from(e: JournalError) -> Self {
        RecoverError::Journal(e)
    }
}

/// Summary of a successful recovery.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryReport {
    /// Records replayed from the valid prefix.
    pub records: usize,
    /// Submissions among them.
    pub submissions: u64,
    /// Decisions among them.
    pub decisions: u64,
    /// Why the tail was torn, when it was.
    pub torn: Option<TornReason>,
    /// Bytes of torn tail truncated before reopening for append.
    pub truncated_bytes: u64,
}

/// The crash-safe streaming scheduler service.
pub struct StretchServe {
    platform: Platform,
    config: ServeConfig,
    scheduler: ServeScheduler,
    journal: JournalWriter,
    dlq: DeadLetterQueue,
    metrics: ServeMetrics,
    /// Next submission sequence number.
    seq: u64,
    finished: bool,
    /// Consecutive over-budget decisions (breaker arming state).
    breaker_busts: u32,
    /// Shed decisions left before the breaker closes; `> 0` means open.
    breaker_open_cooldown: u32,
}

impl StretchServe {
    /// Starts a fresh service journaling to `path` (truncates any existing
    /// file there).
    pub fn create(
        path: &Path,
        platform: Platform,
        config: ServeConfig,
    ) -> Result<Self, JournalError> {
        let journal = JournalWriter::create(path)?;
        Ok(Self::assemble(platform, config, journal))
    }

    fn assemble(platform: Platform, config: ServeConfig, journal: JournalWriter) -> Self {
        let scheduler =
            ServeScheduler::new(SiteView::of_platform(&platform), config.solver.warm_start);
        let dlq = DeadLetterQueue::new(config.dlq_capacity);
        StretchServe {
            platform,
            config,
            scheduler,
            journal,
            dlq,
            metrics: ServeMetrics::new(),
            seq: 0,
            finished: false,
            breaker_busts: 0,
            breaker_open_cooldown: 0,
        }
    }

    /// Recovers a service from an existing journal: parses the valid prefix,
    /// truncates any torn tail, and replays every record through the
    /// deterministic scheduler — reaching bit-identical state to the process
    /// that wrote the journal (pinned by the kill-and-recover tests).
    ///
    /// Circuit-breaker arming state is *not* recovered: it is live timing
    /// policy, and its past effects are already explicit in the journaled
    /// tiers.
    pub fn recover(
        path: &Path,
        platform: Platform,
        config: ServeConfig,
    ) -> Result<(Self, RecoveryReport), RecoverError> {
        let (records, tail) = journal::load(path)?;
        let mut scheduler =
            ServeScheduler::new(SiteView::of_platform(&platform), config.solver.warm_start);
        let mut metrics = ServeMetrics::new();
        let mut seq = 0u64;
        let mut submissions = 0u64;
        let mut decisions = 0u64;
        for (idx, record) in records.iter().enumerate() {
            let corrupt = |reason: String| RecoverError::Corrupt {
                record: idx,
                reason,
            };
            match record.event {
                JournalEvent::Submitted {
                    seq: s,
                    release,
                    work,
                    databank,
                } => {
                    if s != seq {
                        return Err(corrupt(format!("expected sequence {seq}, found {s}")));
                    }
                    let databank = usize::try_from(databank)
                        .map_err(|_| corrupt(format!("databank id {databank} overflows usize")))?;
                    let submission = Submission::new(release, work, databank);
                    validate_submission(&submission, &platform)
                        .map_err(|e| corrupt(format!("journaled submission invalid: {e}")))?;
                    if scheduler.started() {
                        let frontier = scheduler.stage_time();
                        if release < frontier - EVENT_TOL
                            || (scheduler.has_active() && release <= frontier + EVENT_TOL)
                        {
                            return Err(corrupt(format!(
                                "release {release} behind the replayed frontier {frontier}"
                            )));
                        }
                        if release > frontier + EVENT_TOL {
                            if scheduler.needs_decision() {
                                return Err(corrupt(
                                    "frontier moves with a decision due but no decision record"
                                        .into(),
                                ));
                            }
                            scheduler.advance(release);
                        }
                    }
                    scheduler.stage(release, work, databank);
                    seq += 1;
                    submissions += 1;
                }
                JournalEvent::Decision { tier } => {
                    if !scheduler.needs_decision() {
                        return Err(corrupt(format!(
                            "{} decision record but no decision is due",
                            tier.name()
                        )));
                    }
                    match scheduler.try_solve(tier) {
                        Ok(prepared) => scheduler.install(prepared),
                        Err(e) => {
                            return Err(corrupt(format!(
                                "journaled {} decision does not replay: {e}",
                                tier.name()
                            )))
                        }
                    }
                    decisions += 1;
                    metrics.decisions += 1;
                    metrics.decisions_by_tier[tier.code() as usize] += 1;
                }
            }
            metrics.replayed_records += 1;
        }
        metrics.submitted = submissions;
        metrics.accepted = submissions;

        let file_len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let (torn, valid_bytes) = match tail {
            TailStatus::Clean => (None, file_len),
            TailStatus::Torn {
                valid_bytes,
                reason,
            } => (Some(reason), valid_bytes),
        };
        metrics.torn_bytes_truncated = file_len.saturating_sub(valid_bytes);
        let journal = JournalWriter::append_at(path, valid_bytes)?;

        let report = RecoveryReport {
            records: records.len(),
            submissions,
            decisions,
            torn,
            truncated_bytes: file_len.saturating_sub(valid_bytes),
        };
        let dlq = DeadLetterQueue::new(config.dlq_capacity);
        let serve = StretchServe {
            platform,
            config,
            scheduler,
            journal,
            dlq,
            metrics,
            seq,
            finished: false,
            breaker_busts: 0,
            breaker_open_cooldown: 0,
        };
        Ok((serve, report))
    }

    fn reject(
        &mut self,
        submission: Submission,
        reason: RejectReason,
    ) -> Result<SubmitOutcome, JournalError> {
        self.metrics.dead_lettered += 1;
        self.dlq.push(DeadLetter {
            submission,
            reason,
            wall_micros: journal::wall_clock_micros(),
        });
        Ok(SubmitOutcome::Rejected(reason))
    }

    /// Offers a submission to the service.
    ///
    /// Malformed, infeasible or out-of-order submissions are dead-lettered
    /// (that is the `Ok(Rejected)` arm — never a panic, never an `Err`);
    /// `Err` is reserved for journal I/O failures, after which the service
    /// should be abandoned and recovered from the journal.
    pub fn submit(&mut self, submission: Submission) -> Result<SubmitOutcome, JournalError> {
        self.metrics.submitted += 1;
        if self.finished {
            return self.reject(submission, RejectReason::Closed);
        }
        if let Err(reason) = validate_submission(&submission, &self.platform) {
            return self.reject(submission, reason);
        }
        if self.scheduler.started() {
            let frontier = self.scheduler.stage_time();
            // Behind the frontier, or *at* the frontier after its decision
            // was already taken (only possible right after a recovery whose
            // journal ended in a decision record): accepting would rewrite
            // scheduled history.
            if submission.release < frontier - EVENT_TOL
                || (self.scheduler.has_active() && submission.release <= frontier + EVENT_TOL)
            {
                return self.reject(
                    submission,
                    RejectReason::OutOfOrder {
                        release: submission.release,
                        frontier,
                    },
                );
            }
            if submission.release > frontier + EVENT_TOL {
                // The frontier moves: decide for the jobs pending at the old
                // frontier (unless an installed decision already covers
                // them), then execute up to the new event time.
                if self.scheduler.needs_decision() {
                    self.decide()?;
                }
                self.scheduler.advance(submission.release);
            }
        }
        self.journal.append(&JournalRecord {
            wall_micros: journal::wall_clock_micros(),
            event: JournalEvent::Submitted {
                seq: self.seq,
                release: submission.release,
                work: submission.work,
                databank: submission.databank as u64,
            },
        })?;
        self.seq += 1;
        let id = self
            .scheduler
            .stage(submission.release, submission.work, submission.databank);
        self.metrics.accepted += 1;
        Ok(SubmitOutcome::Accepted(id as u64))
    }

    /// Runs the degradation ladder for the decision due at the frontier,
    /// journals the winning tier (write-ahead) and installs the decision.
    fn decide(&mut self) -> Result<(), JournalError> {
        let decision_index = self.scheduler.decisions();
        let shedding = self.breaker_open_cooldown > 0;
        let mut chosen: Option<(PreparedDecision, Duration)> = None;
        let mut busted = false;
        if !shedding {
            let ladder = self.config.solve_ladder();
            let rungs = ladder.len();
            let mut budget = self.config.solve_budget;
            for (i, tier) in ladder.into_iter().enumerate() {
                if self
                    .config
                    .chaos_tier_failures
                    .contains(&(decision_index, tier))
                {
                    self.metrics.fallbacks += 1;
                    budget = budget.saturating_mul(self.config.retry_backoff.max(1));
                    continue;
                }
                let t0 = Instant::now();
                match self.scheduler.try_solve(tier) {
                    // Nothing pending: no decision to take at all.
                    Err(SolveFailure::NothingPending) => return Ok(()),
                    Err(_) => self.metrics.fallbacks += 1,
                    Ok(prepared) => {
                        let elapsed = t0.elapsed();
                        if elapsed <= budget || i + 1 == rungs {
                            // Within budget, or the last rung: a late
                            // decision beats none, so keep it (but count the
                            // bust below).
                            busted = busted || elapsed > budget;
                            chosen = Some((prepared, elapsed));
                            break;
                        }
                        // Over budget with rungs left: discard and fall
                        // through (the prepared decision was never
                        // installed, so state is untouched).
                        busted = true;
                        self.metrics.fallbacks += 1;
                    }
                }
                budget = budget.saturating_mul(self.config.retry_backoff.max(1));
            }
        }
        let (prepared, elapsed) = match chosen {
            Some(c) => c,
            None => {
                // Breaker open, or every solver rung failed: shed to EDF,
                // which cannot fail on pending work.
                let t0 = Instant::now();
                match self.scheduler.try_solve(SolveTier::Edf) {
                    Ok(prepared) => {
                        if shedding {
                            self.metrics.shed_decisions += 1;
                        }
                        (prepared, t0.elapsed())
                    }
                    Err(_) => return Ok(()),
                }
            }
        };
        // Breaker bookkeeping — live-only policy; replay reproduces its
        // *effects* from the journaled tiers, never this arithmetic.
        if busted {
            self.metrics.budget_busts += 1;
            self.breaker_busts += 1;
            if self.breaker_open_cooldown == 0
                && self.breaker_busts >= self.config.breaker_threshold
            {
                self.breaker_open_cooldown = self.config.breaker_cooldown;
                self.metrics.breaker_opens += 1;
                self.breaker_busts = 0;
            }
        } else if self.breaker_open_cooldown == 0 {
            self.breaker_busts = 0;
        }
        if shedding {
            self.breaker_open_cooldown -= 1;
        }
        self.journal.append(&JournalRecord {
            wall_micros: journal::wall_clock_micros(),
            event: JournalEvent::Decision {
                tier: prepared.tier(),
            },
        })?;
        self.metrics
            .observe_decision(prepared.tier(), elapsed.as_secs_f64());
        self.scheduler.install(prepared);
        Ok(())
    }

    /// Drains the service: takes the final decision if one is due, executes
    /// to completion (infinite horizon) and closes the stream.  Idempotent.
    pub fn finish(&mut self) -> Result<(), JournalError> {
        if !self.finished {
            if self.scheduler.needs_decision() {
                self.decide()?;
            }
            self.scheduler.advance(f64::INFINITY);
            self.journal.sync()?;
            self.finished = true;
        }
        Ok(())
    }

    /// `true` after [`StretchServe::finish`].
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Completion time per accepted job (`NaN` while unfinished).
    pub fn completions(&self) -> &[f64] {
        self.scheduler.completions()
    }

    /// Digest of the replayed scheduler state (see
    /// [`ServeScheduler::state_digest`]).
    pub fn state_digest(&self) -> u64 {
        self.scheduler.state_digest()
    }

    /// The underlying scheduler state (read-only).
    pub fn scheduler(&self) -> &ServeScheduler {
        &self.scheduler
    }

    /// Live counters.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The dead-letter queue.
    pub fn dlq(&self) -> &DeadLetterQueue {
        &self.dlq
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The journal path.
    pub fn journal_path(&self) -> PathBuf {
        self.journal.path().to_path_buf()
    }
}
