//! Recorded-trace format (`.strt`): portable, replayable serve runs.
//!
//! A *trace* captures what a live serve run actually scheduled — every
//! accepted submission, in arrival order, plus the completion times the
//! drained scheduler assigned — in a single CRC-framed, versioned file.
//! Traces turn any stream (synthetic, adversarial, production) into a
//! portable differential test case: [`replay`] re-runs the submissions
//! through the full [`ServeScheduler`] pipeline under any
//! [`SolverConfig`] cell and must land on bit-identical state, pinned by
//! the trace's sealed FNV-1a digest.
//!
//! ## File layout
//!
//! The format reuses the journal's framing discipline byte for byte
//! (`[u32 len][u32 crc32(payload)][payload]`, little-endian, floats as
//! exact bit patterns) under its own magic:
//!
//! ```text
//! STRTRC01
//! [frame: header    — version, recording solver cell, wall stamp]
//! [frame: submission]*      (seq, release, work, databank + wall stamp)
//! [frame: completion]*      (job id, completion time)
//! [frame: seal      — state digest, event counts]
//! ```
//!
//! A trace whose seal frame is present is *sealed*: the recording ran to
//! completion and the embedded digest is authoritative.  A torn tail
//! (truncated or checksum-corrupt suffix) is **not an error** — loading
//! recovers the exact valid prefix, mirroring the journal's torn-tail
//! semantics — but only sealed traces replay.
//!
//! ## Determinism contract for the recorder
//!
//! Wall-clock stamps are recorded through [`journal::wall_clock_micros`]
//! for debugging only and are **never** consulted on replay; replay state
//! is a pure function of the submission sequence and the replay
//! [`SolverConfig`].  Two replays of the same sealed trace under the same
//! cell are bit-identical, warm and cold replays are bit-identical, and a
//! replay under the recording backend reproduces the sealed digest
//! exactly.

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use stretch_core::{SiteView, SolverConfig};
use stretch_flow::BackendKind;
use stretch_platform::Platform;

use crate::event::{validate_submission, SolveTier, Submission};
use crate::journal::{self, JournalError, MAX_PAYLOAD_LEN, RECORD_HEADER_LEN};
use crate::scheduler::{ServeScheduler, SolveFailure, EVENT_TOL};
use crate::service::{ServeConfig, StretchServe, SubmitOutcome};

/// Magic prefix of a trace file; the trailing `01` is the on-disk
/// generation (frames additionally carry [`TRACE_VERSION`]).
pub const TRACE_MAGIC: [u8; 8] = *b"STRTRC01";

/// Version of the frame payload codec; bumped on any layout change.  A
/// trace recorded under a different version is rejected with
/// [`TraceError::UnsupportedVersion`], never misdecoded.
pub const TRACE_VERSION: u32 = 1;

/// Conventional file extension of recorded traces.
pub const TRACE_EXT: &str = "strt";

const TAG_HEADER: u8 = 1;
const TAG_SUBMISSION: u8 = 2;
const TAG_COMPLETION: u8 = 3;
const TAG_SEAL: u8 = 4;

const HEADER_LEN: usize = 15;
const SUBMISSION_LEN: usize = 41;
const COMPLETION_LEN: usize = 17;
const SEAL_LEN: usize = 25;

/// Why a trace file could not be used at all (torn tails are *not*
/// errors; see [`TraceTail`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The underlying file operation failed.
    Io {
        /// Operation that failed (`create`, `read`, `append`, `sync`).
        op: &'static str,
        /// File involved.
        path: PathBuf,
        /// OS error rendering.
        message: String,
    },
    /// The file does not start with [`TRACE_MAGIC`] — not a trace.
    BadMagic {
        /// Offending file.
        path: PathBuf,
    },
    /// The header frame declares a codec version this build cannot
    /// decode.
    UnsupportedVersion {
        /// Offending file.
        path: PathBuf,
        /// The version the header declares.
        found: u32,
    },
    /// The first decodable frame is not a header frame.
    MissingHeader {
        /// Offending file.
        path: PathBuf,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io { op, path, message } => {
                write!(f, "trace {op} failed on {}: {message}", path.display())
            }
            TraceError::BadMagic { path } => {
                write!(f, "{} is not a stretch trace (bad magic)", path.display())
            }
            TraceError::UnsupportedVersion { path, found } => write!(
                f,
                "{} uses trace codec version {found}; this build reads version {TRACE_VERSION}",
                path.display()
            ),
            TraceError::MissingHeader { path } => {
                write!(f, "{} has no decodable header frame", path.display())
            }
        }
    }
}

impl std::error::Error for TraceError {}

fn io_err(op: &'static str, path: &Path, e: std::io::Error) -> TraceError {
    TraceError::Io {
        op,
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// Why the tail of a trace was discarded (the trace analogue of the
/// journal's `TornReason`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceTornReason {
    /// Fewer than [`RECORD_HEADER_LEN`] bytes remained.
    TruncatedHeader,
    /// The length prefix is zero or exceeds [`MAX_PAYLOAD_LEN`].
    OversizedLength,
    /// The payload is shorter than its length prefix.
    TruncatedPayload,
    /// The payload checksum does not match.
    ChecksumMismatch,
    /// The checksum matched but the payload does not decode, or a frame
    /// appears where the codec forbids it (after the seal, or a second
    /// header).
    MalformedFrame,
}

impl std::fmt::Display for TraceTornReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceTornReason::TruncatedHeader => write!(f, "truncated frame header"),
            TraceTornReason::OversizedLength => write!(f, "oversized frame length"),
            TraceTornReason::TruncatedPayload => write!(f, "truncated frame payload"),
            TraceTornReason::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            TraceTornReason::MalformedFrame => write!(f, "malformed frame"),
        }
    }
}

/// Whether the trace file ends cleanly.  Mirrors the journal's
/// [`journal::TailStatus`]: a torn tail recovers the exact valid prefix
/// and is normal after a crash mid-recording.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceTail {
    /// Every byte belongs to a valid frame.
    Clean,
    /// The file ends in a torn frame.
    Torn {
        /// Bytes of the valid prefix (magic + whole frames).
        valid_bytes: u64,
        /// What was wrong with the first invalid frame.
        reason: TraceTornReason,
    },
}

/// The header frame: recording metadata, never consulted on replay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceMeta {
    /// Codec version ([`TRACE_VERSION`] for traces this build writes).
    pub version: u32,
    /// Solver tier of the recording run's configured backend.
    pub tier: SolveTier,
    /// Whether the recording run warm-started its solvers.
    pub warm_start: bool,
    /// Wall-clock microseconds at recording start (debugging only).
    pub wall_micros: u64,
}

/// One accepted submission of the recorded run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceSubmission {
    /// Wall-clock stamp at acceptance (debugging only).
    pub wall_micros: u64,
    /// Submission sequence number (dense, starting at 0).
    pub seq: u64,
    /// Release date.
    pub release: f64,
    /// Total work.
    pub work: f64,
    /// Target databank.
    pub databank: u64,
}

/// One completion of the recorded (drained) run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceCompletion {
    /// Job id (== submission sequence number).
    pub job: u64,
    /// Completion time.
    pub completion: f64,
}

/// The seal frame: the recorded run's final state, authoritative for
/// replay verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSeal {
    /// FNV-1a state digest of the drained recording scheduler.
    pub digest: u64,
    /// Submissions recorded.
    pub submissions: u64,
    /// Completions recorded.
    pub completions: u64,
}

/// A decoded trace file.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Header metadata (`None` only when the tail tore inside the very
    /// first frame).
    pub meta: Option<TraceMeta>,
    /// Accepted submissions, in recorded order.
    pub submissions: Vec<TraceSubmission>,
    /// Completions, in recorded order.
    pub completions: Vec<TraceCompletion>,
    /// The seal, when the recording ran to completion.
    pub seal: Option<TraceSeal>,
}

impl Trace {
    /// `true` when the seal frame is present and its counts match the
    /// decoded events — the precondition for replay.
    pub fn is_sealed(&self) -> bool {
        match self.seal {
            Some(seal) => {
                seal.submissions == self.submissions.len() as u64
                    && seal.completions == self.completions.len() as u64
            }
            None => false,
        }
    }
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut v = [0u8; 8];
    v.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(v)
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    let mut v = [0u8; 4];
    v.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(v)
}

/// One decoded frame payload.
enum Frame {
    Header(TraceMeta),
    Submission(TraceSubmission),
    Completion(TraceCompletion),
    Seal(TraceSeal),
}

/// Decodes one CRC-verified payload; `None` on any layout violation (the
/// caller maps it to a torn tail, mirroring the journal's
/// `MalformedPayload`).
fn decode_frame(payload: &[u8]) -> Option<Frame> {
    let (&tag, body) = payload.split_first()?;
    match tag {
        TAG_HEADER if payload.len() == HEADER_LEN => {
            let version = read_u32(body, 0);
            let tier = SolveTier::from_code(body[4])?;
            let warm_start = match body[5] {
                0 => false,
                1 => true,
                _ => return None,
            };
            Some(Frame::Header(TraceMeta {
                version,
                tier,
                warm_start,
                wall_micros: read_u64(body, 6),
            }))
        }
        TAG_SUBMISSION if payload.len() == SUBMISSION_LEN => {
            Some(Frame::Submission(TraceSubmission {
                wall_micros: read_u64(body, 0),
                seq: read_u64(body, 8),
                release: f64::from_bits(read_u64(body, 16)),
                work: f64::from_bits(read_u64(body, 24)),
                databank: read_u64(body, 32),
            }))
        }
        TAG_COMPLETION if payload.len() == COMPLETION_LEN => {
            Some(Frame::Completion(TraceCompletion {
                job: read_u64(body, 0),
                completion: f64::from_bits(read_u64(body, 8)),
            }))
        }
        TAG_SEAL if payload.len() == SEAL_LEN => Some(Frame::Seal(TraceSeal {
            digest: read_u64(body, 0),
            submissions: read_u64(body, 8),
            completions: read_u64(body, 16),
        })),
        _ => None,
    }
}

/// Parses trace bytes.  Torn tails recover the valid prefix; only a
/// missing magic, an undecodable first frame or a version mismatch are
/// errors.
pub fn parse(bytes: &[u8], path: &Path) -> Result<(Trace, TraceTail), TraceError> {
    if bytes.len() < TRACE_MAGIC.len() || bytes[..TRACE_MAGIC.len()] != TRACE_MAGIC {
        return Err(TraceError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let mut trace = Trace {
        meta: None,
        submissions: Vec::new(),
        completions: Vec::new(),
        seal: None,
    };
    let mut offset = TRACE_MAGIC.len();
    let mut first = true;
    let torn = |offset: usize, reason: TraceTornReason| TraceTail::Torn {
        valid_bytes: offset as u64,
        reason,
    };
    let tail = loop {
        if offset == bytes.len() {
            break TraceTail::Clean;
        }
        if trace.seal.is_some() {
            // Frames after the seal can only be an interrupted rewrite;
            // the sealed prefix is the trace.
            break torn(offset, TraceTornReason::MalformedFrame);
        }
        if bytes.len() - offset < RECORD_HEADER_LEN {
            break torn(offset, TraceTornReason::TruncatedHeader);
        }
        let len = read_u32(bytes, offset);
        if len == 0 || len > MAX_PAYLOAD_LEN {
            break torn(offset, TraceTornReason::OversizedLength);
        }
        let len = len as usize;
        let start = offset + RECORD_HEADER_LEN;
        if bytes.len() - start < len {
            break torn(offset, TraceTornReason::TruncatedPayload);
        }
        let payload = &bytes[start..start + len];
        if journal::crc32(payload) != read_u32(bytes, offset + 4) {
            break torn(offset, TraceTornReason::ChecksumMismatch);
        }
        let Some(frame) = decode_frame(payload) else {
            break torn(offset, TraceTornReason::MalformedFrame);
        };
        match frame {
            Frame::Header(meta) if first => {
                if meta.version != TRACE_VERSION {
                    return Err(TraceError::UnsupportedVersion {
                        path: path.to_path_buf(),
                        found: meta.version,
                    });
                }
                trace.meta = Some(meta);
            }
            // A header frame may only open the file; anything else first,
            // or a second header, is a foreign or spliced frame.
            Frame::Header(_) => break torn(offset, TraceTornReason::MalformedFrame),
            _ if first => {
                return Err(TraceError::MissingHeader {
                    path: path.to_path_buf(),
                })
            }
            Frame::Submission(s) => trace.submissions.push(s),
            Frame::Completion(c) => trace.completions.push(c),
            Frame::Seal(seal) => trace.seal = Some(seal),
        }
        first = false;
        offset = start + len;
    };
    Ok((trace, tail))
}

/// Loads and parses a trace file.
pub fn load(path: &Path) -> Result<(Trace, TraceTail), TraceError> {
    let bytes = std::fs::read(path).map_err(|e| io_err("read", path, e))?;
    parse(&bytes, path)
}

/// Streaming trace writer.  Frames are appended in recording order; the
/// trace is usable for replay only after [`TraceRecorder::seal`].
pub struct TraceRecorder {
    file: File,
    path: PathBuf,
    submissions: u64,
    completions: u64,
}

impl TraceRecorder {
    /// Creates (truncating) a trace at `path`, writing the magic and the
    /// header frame for the given recording solver cell.
    pub fn create(path: &Path, solver: SolverConfig) -> Result<Self, TraceError> {
        let mut file = File::create(path).map_err(|e| io_err("create", path, e))?;
        file.write_all(&TRACE_MAGIC)
            .map_err(|e| io_err("create", path, e))?;
        let mut recorder = TraceRecorder {
            file,
            path: path.to_path_buf(),
            submissions: 0,
            completions: 0,
        };
        let mut payload = [0u8; HEADER_LEN];
        payload[0] = TAG_HEADER;
        payload[1..5].copy_from_slice(&TRACE_VERSION.to_le_bytes());
        payload[5] = SolveTier::of_backend(solver.backend).code();
        payload[6] = u8::from(solver.warm_start);
        payload[7..15].copy_from_slice(&journal::wall_clock_micros().to_le_bytes());
        recorder.append(&payload)?;
        Ok(recorder)
    }

    fn append(&mut self, payload: &[u8]) -> Result<(), TraceError> {
        let mut frame = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&journal::crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("append", &self.path, e))
    }

    /// Records one accepted submission (stamped with the wall clock for
    /// debugging; replay never reads the stamp).
    pub fn record_submission(
        &mut self,
        seq: u64,
        release: f64,
        work: f64,
        databank: u64,
    ) -> Result<(), TraceError> {
        let mut payload = [0u8; SUBMISSION_LEN];
        payload[0] = TAG_SUBMISSION;
        payload[1..9].copy_from_slice(&journal::wall_clock_micros().to_le_bytes());
        payload[9..17].copy_from_slice(&seq.to_le_bytes());
        payload[17..25].copy_from_slice(&release.to_bits().to_le_bytes());
        payload[25..33].copy_from_slice(&work.to_bits().to_le_bytes());
        payload[33..41].copy_from_slice(&databank.to_le_bytes());
        self.append(&payload)?;
        self.submissions += 1;
        Ok(())
    }

    /// Records one completion of the drained run.
    pub fn record_completion(&mut self, job: u64, completion: f64) -> Result<(), TraceError> {
        let mut payload = [0u8; COMPLETION_LEN];
        payload[0] = TAG_COMPLETION;
        payload[1..9].copy_from_slice(&job.to_le_bytes());
        payload[9..17].copy_from_slice(&completion.to_bits().to_le_bytes());
        self.append(&payload)?;
        self.completions += 1;
        Ok(())
    }

    /// Writes the seal frame with the drained scheduler's state digest
    /// and syncs the file; the trace is complete after this returns.
    pub fn seal(mut self, digest: u64) -> Result<(), TraceError> {
        let mut payload = [0u8; SEAL_LEN];
        payload[0] = TAG_SEAL;
        payload[1..9].copy_from_slice(&digest.to_le_bytes());
        payload[9..17].copy_from_slice(&self.submissions.to_le_bytes());
        payload[17..25].copy_from_slice(&self.completions.to_le_bytes());
        self.append(&payload)?;
        self.file
            .sync_data()
            .map_err(|e| io_err("sync", &self.path, e))
    }
}

/// Why recording a run failed.
#[derive(Debug)]
pub enum RecordError {
    /// The trace file could not be written.
    Trace(TraceError),
    /// The serve run's journal could not be written.
    Journal(JournalError),
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Trace(e) => write!(f, "{e}"),
            RecordError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RecordError {}

impl From<TraceError> for RecordError {
    fn from(e: TraceError) -> Self {
        RecordError::Trace(e)
    }
}

impl From<JournalError> for RecordError {
    fn from(e: JournalError) -> Self {
        RecordError::Journal(e)
    }
}

/// Summary of a recorded run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecordedRun {
    /// Submissions accepted (and recorded).
    pub accepted: u64,
    /// Submissions rejected into the DLQ (not recorded).
    pub rejected: u64,
    /// State digest of the drained recording scheduler (also sealed into
    /// the trace).
    pub digest: u64,
}

/// Records a full serve run: feeds `submissions` through a fresh
/// [`StretchServe`] journaling into `journal_dir`, writes every accepted
/// submission and every completion into a sealed trace at `trace_path`.
pub fn record_run(
    trace_path: &Path,
    journal_dir: &Path,
    platform: Platform,
    config: ServeConfig,
    submissions: &[Submission],
) -> Result<RecordedRun, RecordError> {
    let mut recorder = TraceRecorder::create(trace_path, config.solver)?;
    let mut serve = StretchServe::create(journal_dir, platform, config)?;
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for submission in submissions {
        match serve.submit(*submission)? {
            SubmitOutcome::Accepted(id) => {
                recorder.record_submission(
                    id,
                    submission.release,
                    submission.work,
                    submission.databank as u64,
                )?;
                accepted += 1;
            }
            SubmitOutcome::Rejected(_) => rejected += 1,
        }
    }
    serve.finish()?;
    for (job, &completion) in serve.completions().iter().enumerate() {
        recorder.record_completion(job as u64, completion)?;
    }
    let digest = serve.state_digest();
    recorder.seal(digest)?;
    Ok(RecordedRun {
        accepted,
        rejected,
        digest,
    })
}

/// Why a trace did not replay.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplayError {
    /// The trace is not sealed (torn recording, or counts inconsistent
    /// with the seal) — there is no authoritative state to verify
    /// against.
    Unsealed,
    /// A recorded submission cannot be applied at its position.
    Record {
        /// Index into the trace's submission sequence.
        index: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Unsealed => write!(f, "trace is not sealed; refusing to replay"),
            ReplayError::Record { index, reason } => {
                write!(f, "trace submission {index} does not replay: {reason}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// What one replay produced.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayOutcome {
    /// FNV-1a state digest of the drained replay scheduler.
    pub digest: u64,
    /// Completion time per job.
    pub completions: Vec<f64>,
    /// Decisions taken during the replay.
    pub decisions: u64,
    /// `true` when `digest` equals the trace's sealed digest *and* every
    /// completion matches the recorded one bit for bit.  Expected to hold
    /// when replaying under the recording backend; other backends may
    /// legitimately pick different degenerate optima.
    pub matches_recorded: bool,
}

/// Replays a sealed trace through the full scheduler pipeline under
/// `solver`, deterministically: each due decision solves with the
/// configured backend's tier and, if that tier fails, the EDF shed tier
/// (no wall-clock budgets — replay has no timing policy).
pub fn replay(
    trace: &Trace,
    platform: &Platform,
    solver: SolverConfig,
) -> Result<ReplayOutcome, ReplayError> {
    if !trace.is_sealed() {
        return Err(ReplayError::Unsealed);
    }
    let mut scheduler = ServeScheduler::new(
        SiteView::of_platform(platform),
        solver.warm_start,
        solver.incremental,
    );
    let tier = SolveTier::of_backend(solver.backend);
    let decide = |scheduler: &mut ServeScheduler| {
        match scheduler.try_solve(tier) {
            Ok(prepared) => scheduler.install(prepared),
            Err(SolveFailure::NothingPending) => {}
            Err(_) => {
                // Same shape as the live degradation ladder's last
                // resort: EDF only fails when nothing is pending.
                if let Ok(prepared) = scheduler.try_solve(SolveTier::Edf) {
                    scheduler.install(prepared);
                }
            }
        }
    };
    for (index, s) in trace.submissions.iter().enumerate() {
        if s.seq != index as u64 {
            return Err(ReplayError::Record {
                index,
                reason: format!("expected sequence {index}, found {}", s.seq),
            });
        }
        let databank = usize::try_from(s.databank).map_err(|_| ReplayError::Record {
            index,
            reason: format!("databank id {} overflows usize", s.databank),
        })?;
        let submission = Submission::new(s.release, s.work, databank);
        validate_submission(&submission, platform).map_err(|e| ReplayError::Record {
            index,
            reason: format!("recorded submission invalid: {e}"),
        })?;
        if scheduler.started() {
            let frontier = scheduler.stage_time();
            if s.release < frontier - EVENT_TOL {
                return Err(ReplayError::Record {
                    index,
                    reason: format!("release {} behind the frontier {frontier}", s.release),
                });
            }
            if s.release > frontier + EVENT_TOL {
                if scheduler.needs_decision() {
                    decide(&mut scheduler);
                }
                scheduler.advance(s.release);
            }
        }
        scheduler.stage(s.release, s.work, databank);
    }
    if scheduler.needs_decision() {
        decide(&mut scheduler);
    }
    scheduler.advance(f64::INFINITY);
    let digest = scheduler.state_digest();
    let completions = scheduler.completions().to_vec();
    let matches_recorded = match trace.seal {
        Some(seal) => {
            seal.digest == digest
                && completions.len() == trace.completions.len()
                && trace.completions.iter().enumerate().all(|(job, c)| {
                    c.job == job as u64
                        && completions
                            .get(job)
                            .is_some_and(|r| r.to_bits() == c.completion.to_bits())
                })
        }
        None => false,
    };
    Ok(ReplayOutcome {
        digest,
        completions,
        decisions: scheduler.decisions(),
        matches_recorded,
    })
}

/// The full replay matrix of a sealed trace: every backend × warm/cold.
/// Returns one `(config, outcome)` row per cell, in
/// [`BackendKind::ALL`] × `[warm, cold]` order.
pub fn replay_matrix(
    trace: &Trace,
    platform: &Platform,
) -> Result<Vec<(SolverConfig, ReplayOutcome)>, ReplayError> {
    let mut rows = Vec::with_capacity(BackendKind::ALL.len() * 2);
    for backend in BackendKind::ALL {
        for warm_start in [true, false] {
            let config = SolverConfig {
                backend,
                warm_start,
                incremental: true,
            };
            let outcome = replay(trace, platform, config)?;
            rows.push((config, outcome));
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stretch_platform::fixtures::small_platform;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("stretch-trace-mod-{name}-{}", std::process::id()));
        p
    }

    fn reference_stream() -> Vec<Submission> {
        [
            (0.0, 300.0, 0),
            (0.0, 60.0, 1),
            (2.5, 120.0, 0),
            (4.0, 30.0, 1),
            (6.0, 90.0, 0),
            (7.5, 45.0, 1),
        ]
        .into_iter()
        .map(|(release, work, databank)| Submission::new(release, work, databank))
        .collect()
    }

    #[test]
    fn record_replay_round_trip_reproduces_the_digest() {
        let trace_path = tmp("roundtrip.strt");
        let journal_dir = tmp("roundtrip-journal");
        let run = record_run(
            &trace_path,
            &journal_dir,
            small_platform(),
            ServeConfig::default(),
            &reference_stream(),
        )
        .unwrap();
        assert_eq!(run.accepted, 6);
        assert_eq!(run.rejected, 0);
        let (trace, tail) = load(&trace_path).unwrap();
        assert_eq!(tail, TraceTail::Clean);
        assert!(trace.is_sealed());
        assert_eq!(trace.submissions.len(), 6);
        assert_eq!(trace.completions.len(), 6);
        let outcome = replay(&trace, &small_platform(), SolverConfig::default()).unwrap();
        assert_eq!(outcome.digest, run.digest);
        assert!(outcome.matches_recorded);
        std::fs::remove_file(&trace_path).unwrap();
        std::fs::remove_dir_all(&journal_dir).unwrap();
    }

    #[test]
    fn unsealed_traces_refuse_to_replay() {
        let path = tmp("unsealed.strt");
        let mut recorder = TraceRecorder::create(&path, SolverConfig::default()).unwrap();
        recorder.record_submission(0, 0.0, 60.0, 0).unwrap();
        drop(recorder);
        let (trace, tail) = load(&path).unwrap();
        assert_eq!(tail, TraceTail::Clean);
        assert!(!trace.is_sealed());
        assert_eq!(
            replay(&trace, &small_platform(), SolverConfig::default()),
            Err(ReplayError::Unsealed)
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_files_are_rejected_with_bad_magic() {
        let path = tmp("foreign.strt");
        std::fs::write(&path, b"STRJRN01 definitely not a trace").unwrap();
        assert!(matches!(load(&path), Err(TraceError::BadMagic { .. })));
        std::fs::remove_file(&path).unwrap();
    }
}
