//! Scheduler-state snapshots: the compaction half of bounded-replay
//! recovery.
//!
//! A snapshot file (`snapshot-NNNNNN.strsnp`, where `NNNNNN` is the index of
//! the newest sealed segment it covers) freezes everything recovery would
//! otherwise reconstruct by replaying segments `0..=NNNNNN`:
//!
//! * the full [`SchedulerState`] — jobs, remaining works, completions,
//!   frontier, decision count, last stretch, and the installed decision if
//!   one was pending (see `scheduler` for why solver warm-start carryover is
//!   *not* part of this state: warm/cold identity makes it performance-only);
//! * the [`ServiceCounters`] — the submission sequence number, the covered
//!   record count, the circuit-breaker arming state, and the replay-visible
//!   metrics tallies (timing histograms are live-only wall-clock noise and
//!   restart empty).
//!
//! The file layout is
//!
//! ```text
//! [ 8-byte magic "STRSNP01" ]
//! [ u32 payload_len | u32 crc32(payload) | payload ]
//! ```
//!
//! mirroring the journal's record framing, with one record: the encoded
//! state.  Two independent integrity layers guard a restore:
//!
//! 1. the **CRC** rejects bit rot / torn writes of the file itself;
//! 2. the **embedded FNV-1a state digest** (the same
//!    `ServeScheduler::state_digest` the recovery tests compare) is stored in
//!    the payload; the restore path rebuilds the scheduler and recomputes the
//!    digest, so a snapshot that decodes but does not *reconstruct* the state
//!    it claims — a checksum collision, or an encoder/decoder skew across
//!    versions — is rejected before any record is replayed on top of it.
//!
//! Either rejection makes `service::recover` fall back to the next-older
//! snapshot (ultimately to full replay) with a typed reason.

use std::path::{Path, PathBuf};

use stretch_core::deadline::PendingJob;

use crate::event::SolveTier;
use crate::journal::crc32;
use crate::scheduler::{ActiveDecisionState, DecisionKindState, SchedulerState};

/// Magic bytes opening every snapshot file (format version 01).
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"STRSNP01";

/// Sanity cap on a snapshot payload (1 GiB): anything larger is garbage.
pub const MAX_SNAPSHOT_LEN: u32 = 1 << 30;

/// Service-level counters frozen alongside the scheduler state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Next submission sequence number.
    pub seq: u64,
    /// Journal records covered by this snapshot (everything in segments
    /// `0..=upto`); recovery replays only records past this count.
    pub records: u64,
    /// Consecutive over-budget decisions (breaker arming state).  Replay
    /// cannot reconstruct this — it is wall-clock policy — so the snapshot
    /// carries it and a snapshot-restored process resumes the exact breaker
    /// posture the crashed one had.
    pub breaker_busts: u32,
    /// Shed decisions left before the breaker closes.
    pub breaker_open_cooldown: u32,
    /// Metrics: submissions offered (accepted + rejected).
    pub submitted: u64,
    /// Metrics: submissions accepted.
    pub accepted: u64,
    /// Metrics: submissions dead-lettered.
    pub dead_lettered: u64,
    /// Metrics: decisions taken.
    pub decisions: u64,
    /// Metrics: decisions per tier.
    pub decisions_by_tier: [u64; 4],
    /// Metrics: ladder rungs fallen past.
    pub fallbacks: u64,
    /// Metrics: budget busts.
    pub budget_busts: u64,
    /// Metrics: breaker trips.
    pub breaker_opens: u64,
    /// Metrics: decisions shed while the breaker was open.
    pub shed_decisions: u64,
}

/// A decoded snapshot: scheduler state + service counters + the embedded
/// self-verification digest.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// The frozen scheduler state.
    pub state: SchedulerState,
    /// The frozen service counters.
    pub counters: ServiceCounters,
    /// `ServeScheduler::state_digest()` of the state at freeze time; the
    /// restore path recomputes it from the rebuilt scheduler and rejects on
    /// mismatch.
    pub digest: u64,
}

/// Why a snapshot file could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// An OS-level read failed.
    Io {
        /// The snapshot path.
        path: PathBuf,
        /// The rendered OS error.
        message: String,
    },
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic {
        /// The offending path.
        path: PathBuf,
    },
    /// The file is shorter than its framing or length prefix claims.
    Truncated,
    /// The payload checksum does not match (bit rot or a torn write that
    /// somehow got renamed — either way the bytes are not trustworthy).
    ChecksumMismatch,
    /// The checksum matched but the payload does not decode (encoder skew
    /// or a checksum collision).
    Malformed(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io { path, message } => {
                write!(f, "snapshot read failed on {}: {message}", path.display())
            }
            SnapshotError::BadMagic { path } => {
                write!(f, "{} is not a snapshot (bad magic)", path.display())
            }
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Malformed(reason) => write!(f, "snapshot malformed: {reason}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---------------------------------------------------------------------------
// Encoding.  Fixed-width little-endian primitives, floats as `to_bits`,
// lengths as u64 — the same conventions as the journal payload codec.
// ---------------------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.bytes.len() - self.offset < n {
            return Err(SnapshotError::Malformed("payload ends early".into()));
        }
        let slice = &self.bytes[self.offset..self.offset + n];
        self.offset += n;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| SnapshotError::Malformed(format!("count {v} overflows usize")))
    }
    /// A length prefix that still has to fit in the remaining bytes —
    /// rejects colliding garbage before it can allocate absurd vectors.
    fn len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.usize()?;
        let remaining = self.bytes.len() - self.offset;
        if n.saturating_mul(min_elem_bytes) > remaining {
            return Err(SnapshotError::Malformed(format!(
                "length {n} exceeds remaining payload"
            )));
        }
        Ok(n)
    }
    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Malformed(format!("bad bool byte {other}"))),
        }
    }
    fn done(&self) -> Result<(), SnapshotError> {
        if self.offset == self.bytes.len() {
            Ok(())
        } else {
            Err(SnapshotError::Malformed(format!(
                "{} trailing bytes",
                self.bytes.len() - self.offset
            )))
        }
    }
}

const ACTIVE_NONE: u8 = 0;
const ACTIVE_SEQUENCES: u8 = 1;
const ACTIVE_LIST_ORDER: u8 = 2;

fn encode_payload(snapshot: &Snapshot) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    e.u64(snapshot.digest);

    let c = &snapshot.counters;
    e.u64(c.seq);
    e.u64(c.records);
    e.u32(c.breaker_busts);
    e.u32(c.breaker_open_cooldown);
    e.u64(c.submitted);
    e.u64(c.accepted);
    e.u64(c.dead_lettered);
    e.u64(c.decisions);
    for &t in &c.decisions_by_tier {
        e.u64(t);
    }
    e.u64(c.fallbacks);
    e.u64(c.budget_busts);
    e.u64(c.breaker_opens);
    e.u64(c.shed_decisions);

    let s = &snapshot.state;
    e.bool(s.started);
    e.f64(s.stage_time);
    e.f64(s.last_stretch);
    e.u64(s.decisions);
    e.usize(s.jobs.len());
    for job in &s.jobs {
        e.f64(job.release);
        e.f64(job.work);
        e.usize(job.databank);
    }
    for &r in &s.remaining {
        e.f64(r);
    }
    for &c in &s.completions {
        e.f64(c);
    }
    match &s.active {
        None => e.u8(ACTIVE_NONE),
        Some(d) => {
            e.u8(match d.kind {
                DecisionKindState::Sequences(_) => ACTIVE_SEQUENCES,
                DecisionKindState::ListOrder(_) => ACTIVE_LIST_ORDER,
            });
            e.u8(d.tier.code());
            match d.stretch {
                None => e.bool(false),
                Some(v) => {
                    e.bool(true);
                    e.f64(v);
                }
            }
            e.f64(d.now);
            e.usize(d.jobs.len());
            for j in &d.jobs {
                e.usize(j.job_id);
                e.f64(j.release);
                e.f64(j.ready);
                e.f64(j.work);
                e.f64(j.remaining);
                e.usize(j.databank);
            }
            match &d.kind {
                DecisionKindState::Sequences(sequences) => {
                    e.usize(sequences.len());
                    for seq in sequences {
                        e.usize(seq.len());
                        for &(job_index, work) in seq {
                            e.usize(job_index);
                            e.f64(work);
                        }
                    }
                }
                DecisionKindState::ListOrder(order) => {
                    e.usize(order.len());
                    for &j in order {
                        e.usize(j);
                    }
                }
            }
        }
    }
    e.0
}

fn decode_payload(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    let mut d = Dec { bytes, offset: 0 };
    let digest = d.u64()?;

    let mut counters = ServiceCounters {
        seq: d.u64()?,
        records: d.u64()?,
        breaker_busts: d.u32()?,
        breaker_open_cooldown: d.u32()?,
        submitted: d.u64()?,
        accepted: d.u64()?,
        dead_lettered: d.u64()?,
        decisions: d.u64()?,
        ..ServiceCounters::default()
    };
    for t in &mut counters.decisions_by_tier {
        *t = d.u64()?;
    }
    counters.fallbacks = d.u64()?;
    counters.budget_busts = d.u64()?;
    counters.breaker_opens = d.u64()?;
    counters.shed_decisions = d.u64()?;

    let started = d.bool()?;
    let stage_time = d.f64()?;
    let last_stretch = d.f64()?;
    let decisions = d.u64()?;
    let njobs = d.len(24)?;
    let mut jobs = Vec::with_capacity(njobs);
    for _ in 0..njobs {
        jobs.push(crate::scheduler::AcceptedJob {
            release: d.f64()?,
            work: d.f64()?,
            databank: d.usize()?,
        });
    }
    let mut remaining = Vec::with_capacity(njobs);
    for _ in 0..njobs {
        remaining.push(d.f64()?);
    }
    let mut completions = Vec::with_capacity(njobs);
    for _ in 0..njobs {
        completions.push(d.f64()?);
    }
    let active = match d.u8()? {
        ACTIVE_NONE => None,
        tag @ (ACTIVE_SEQUENCES | ACTIVE_LIST_ORDER) => {
            let tier_code = d.u8()?;
            let tier = SolveTier::from_code(tier_code)
                .ok_or_else(|| SnapshotError::Malformed(format!("bad tier code {tier_code}")))?;
            let stretch = if d.bool()? { Some(d.f64()?) } else { None };
            let now = d.f64()?;
            let npending = d.len(48)?;
            let mut pending = Vec::with_capacity(npending);
            for _ in 0..npending {
                pending.push(PendingJob {
                    job_id: d.usize()?,
                    release: d.f64()?,
                    ready: d.f64()?,
                    work: d.f64()?,
                    remaining: d.f64()?,
                    databank: d.usize()?,
                });
            }
            let kind = if tag == ACTIVE_SEQUENCES {
                let nsites = d.len(8)?;
                let mut sequences = Vec::with_capacity(nsites);
                for _ in 0..nsites {
                    let nchunks = d.len(16)?;
                    let mut seq = Vec::with_capacity(nchunks);
                    for _ in 0..nchunks {
                        seq.push((d.usize()?, d.f64()?));
                    }
                    sequences.push(seq);
                }
                DecisionKindState::Sequences(sequences)
            } else {
                let n = d.len(8)?;
                let mut order = Vec::with_capacity(n);
                for _ in 0..n {
                    order.push(d.usize()?);
                }
                DecisionKindState::ListOrder(order)
            };
            Some(ActiveDecisionState {
                tier,
                stretch,
                now,
                jobs: pending,
                kind,
            })
        }
        other => {
            return Err(SnapshotError::Malformed(format!(
                "bad active-decision tag {other}"
            )))
        }
    };
    d.done()?;
    Ok(Snapshot {
        state: SchedulerState {
            jobs,
            remaining,
            completions,
            started,
            stage_time,
            last_stretch,
            decisions,
            active,
        },
        counters,
        digest,
    })
}

/// Encodes a snapshot to its full file image (magic + framed payload).
pub fn encode(snapshot: &Snapshot) -> Vec<u8> {
    let payload = encode_payload(snapshot);
    let mut out = Vec::with_capacity(SNAPSHOT_MAGIC.len() + 8 + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes a snapshot file image.  `path` is for error messages only.
pub fn decode(bytes: &[u8], path: &Path) -> Result<Snapshot, SnapshotError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() || bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let rest = &bytes[SNAPSHOT_MAGIC.len()..];
    if rest.len() < 8 {
        return Err(SnapshotError::Truncated);
    }
    let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
    let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
    if len > MAX_SNAPSHOT_LEN {
        return Err(SnapshotError::Truncated);
    }
    let len = len as usize;
    if rest.len() - 8 < len {
        return Err(SnapshotError::Truncated);
    }
    let payload = &rest[8..8 + len];
    if crc32(payload) != crc {
        return Err(SnapshotError::ChecksumMismatch);
    }
    if rest.len() - 8 > len {
        return Err(SnapshotError::Malformed(format!(
            "{} trailing bytes after payload",
            rest.len() - 8 - len
        )));
    }
    decode_payload(payload)
}

/// Reads and decodes a snapshot file.
pub fn load(path: &Path) -> Result<Snapshot, SnapshotError> {
    let bytes = std::fs::read(path).map_err(|e| SnapshotError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    decode(&bytes, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::AcceptedJob;

    fn sample() -> Snapshot {
        Snapshot {
            state: SchedulerState {
                jobs: vec![
                    AcceptedJob {
                        release: 0.0,
                        work: 300.0,
                        databank: 0,
                    },
                    AcceptedJob {
                        release: 2.5,
                        work: 60.0,
                        databank: 1,
                    },
                ],
                remaining: vec![120.0, 0.0],
                completions: vec![f64::NAN, 3.25],
                started: true,
                stage_time: 2.5,
                last_stretch: 1.75,
                decisions: 2,
                active: Some(ActiveDecisionState {
                    tier: SolveTier::Monge,
                    stretch: Some(1.75),
                    now: 2.5,
                    jobs: vec![PendingJob {
                        job_id: 0,
                        release: 0.0,
                        ready: 2.5,
                        work: 300.0,
                        remaining: 120.0,
                        databank: 0,
                    }],
                    kind: DecisionKindState::Sequences(vec![vec![(0, 120.0)], vec![]]),
                }),
            },
            counters: ServiceCounters {
                seq: 2,
                records: 4,
                breaker_busts: 1,
                breaker_open_cooldown: 0,
                submitted: 3,
                accepted: 2,
                dead_lettered: 1,
                decisions: 2,
                decisions_by_tier: [1, 1, 0, 0],
                fallbacks: 1,
                budget_busts: 1,
                breaker_opens: 0,
                shed_decisions: 0,
            },
            digest: 0xDEAD_BEEF_CAFE_F00D,
        }
    }

    #[test]
    fn encode_decode_round_trips_including_nan_completions() {
        let snapshot = sample();
        let bytes = encode(&snapshot);
        let decoded = decode(&bytes, Path::new("test")).unwrap();
        // NaN completions make Snapshot's PartialEq useless; compare via the
        // re-encoded bytes, which are exact bit patterns.
        assert_eq!(encode(&decoded), bytes);
        assert_eq!(decoded.digest, snapshot.digest);
        assert_eq!(decoded.counters, snapshot.counters);
        assert!(decoded.state.completions[0].is_nan());
    }

    #[test]
    fn list_order_and_no_active_variants_round_trip() {
        let mut snapshot = sample();
        snapshot.state.active = Some(ActiveDecisionState {
            tier: SolveTier::Edf,
            stretch: None,
            now: 2.5,
            jobs: vec![],
            kind: DecisionKindState::ListOrder(vec![1, 0]),
        });
        let bytes = encode(&snapshot);
        assert_eq!(encode(&decode(&bytes, Path::new("t")).unwrap()), bytes);
        snapshot.state.active = None;
        let bytes = encode(&snapshot);
        assert_eq!(encode(&decode(&bytes, Path::new("t")).unwrap()), bytes);
    }

    #[test]
    fn every_truncation_and_single_byte_corruption_is_typed() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut], Path::new("t")) {
                Err(
                    SnapshotError::BadMagic { .. }
                    | SnapshotError::Truncated
                    | SnapshotError::ChecksumMismatch
                    | SnapshotError::Malformed(_),
                ) => {}
                Ok(_) => panic!("cut {cut}: truncated snapshot decoded"),
                Err(e) => panic!("cut {cut}: unexpected error {e}"),
            }
        }
        for offset in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[offset] ^= 0x40;
            match decode(&corrupt, Path::new("t")) {
                // A flip in the magic or framing hits BadMagic/Truncated;
                // any payload flip (the embedded digest included) is a
                // checksum mismatch, since the CRC covers the whole payload.
                Err(_) => {}
                Ok(_) => panic!("offset {offset}: corrupted snapshot decoded"),
            }
        }
    }
}
