//! The replayable scheduler state machine.
//!
//! [`ServeScheduler`] re-expresses one iteration of
//! `stretch_core::online::run_online_with` as two explicit transitions so
//! that a write-ahead journal can sit between them:
//!
//! * [`ServeScheduler::try_solve`] + [`ServeScheduler::install`] — the
//!   decision at the current frontier (steps 2–4 of the paper's on-line
//!   algorithm: min-stretch search, System-(2) allocation, serialisation).
//!   `try_solve` is *pure* with respect to scheduler state (only the solver
//!   scratch warms up), so the degradation ladder can probe several tiers
//!   and discard losers without rollback; `install` commits exactly one.
//! * [`ServeScheduler::advance`] — executes the installed decision from the
//!   frontier to the next event time and folds the executed work back.
//!
//! Replaying the same transition sequence therefore reproduces the exact
//! state of the live run, bit for bit — the property the whole serve layer
//! leans on, pinned by the differential and kill-and-recover tests.  The
//! warm/cold identity contract of PRs 4–5 makes the solver caches irrelevant
//! to outputs, so a recovered (cold) process matches a long-lived (warm) one.

use stretch_core::deadline::{certified_slack, DeadlineProblem, PendingJob};
use stretch_core::plan::{
    execute_list_order, execute_sequences, site_sequences, PieceOrdering, PlanExecution,
};
use stretch_core::{ParametricDeadlineSolver, SiteView, SolverConfig};

use crate::event::SolveTier;

/// Absolute tolerance under which two release dates are the same on-line
/// event — identical to the dedup tolerance of `run_online_with`.
pub const EVENT_TOL: f64 = 1e-12;

/// Remaining work under which a job no longer counts as pending — identical
/// to the pending filter of `run_online_with`.
pub const PENDING_REMAINING_EPS: f64 = 1e-9;

/// A validated, accepted job as staged into the scheduler.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AcceptedJob {
    /// Release date.
    pub release: f64,
    /// Total work.
    pub work: f64,
    /// Target databank.
    pub databank: usize,
}

/// How an installed decision executes its pending jobs.
#[derive(Clone, Debug)]
enum DecisionKind {
    /// Per-site chunk sequences (the LP/flow tiers, `Online` serialisation).
    Sequences(Vec<Vec<(usize, f64)>>),
    /// A fixed priority order (the EDF shed tier).
    ListOrder(Vec<usize>),
}

/// A solved-but-not-yet-installed scheduling decision.
#[derive(Clone, Debug)]
pub struct PreparedDecision {
    tier: SolveTier,
    problem: DeadlineProblem,
    kind: DecisionKind,
    stretch: Option<f64>,
}

impl PreparedDecision {
    /// The tier that produced this decision.
    pub fn tier(&self) -> SolveTier {
        self.tier
    }

    /// The certified max-stretch of the solve (`None` for the EDF tier).
    pub fn stretch(&self) -> Option<f64> {
        self.stretch
    }
}

/// Why a solve tier produced no decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveFailure {
    /// No job is pending at the frontier — there is nothing to decide.
    NothingPending,
    /// The min-stretch search found no finite feasible stretch.
    Infeasible,
    /// The System-(2) allocation failed at the certified stretch
    /// (certification failure).
    Allocation,
}

impl std::fmt::Display for SolveFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveFailure::NothingPending => write!(f, "no pending job at the frontier"),
            SolveFailure::Infeasible => write!(f, "no finite max-stretch achievable"),
            SolveFailure::Allocation => {
                write!(f, "System (2) infeasible at the certified stretch")
            }
        }
    }
}

impl std::error::Error for SolveFailure {}

/// Deterministic scheduler state, a pure function of the staged/decided
/// transition sequence.
pub struct ServeScheduler {
    sites: SiteView,
    warm_start: bool,
    incremental: bool,
    jobs: Vec<AcceptedJob>,
    remaining: Vec<f64>,
    completions: Vec<f64>,
    /// `false` until the first job is staged (the frontier is meaningless
    /// before that).
    started: bool,
    /// The decision frontier: the event time of the last staged/advanced
    /// transition.
    stage_time: f64,
    active: Option<PreparedDecision>,
    /// Max-stretch of the most recent successful solve; seeds the virtual
    /// deadlines of the EDF shed tier.  Part of the replayed state.
    last_stretch: f64,
    decisions: u64,
    /// One lazily-created parametric engine per solver tier, so warm-start
    /// bases never leak across backends.
    solvers: [Option<ParametricDeadlineSolver>; 3],
}

impl ServeScheduler {
    /// A fresh scheduler over `sites`; `warm_start` and `incremental` are
    /// forwarded to every tier's solver (performance only — results are
    /// warm/cold and incremental/rebuild identical).
    pub fn new(sites: SiteView, warm_start: bool, incremental: bool) -> Self {
        ServeScheduler {
            sites,
            warm_start,
            incremental,
            jobs: Vec::new(),
            remaining: Vec::new(),
            completions: Vec::new(),
            started: false,
            stage_time: 0.0,
            active: None,
            last_stretch: 1.0,
            decisions: 0,
            solvers: [None, None, None],
        }
    }

    /// Stages an accepted job at the frontier.  The caller (service or
    /// replay) guarantees `release >= stage_time - EVENT_TOL` and that any
    /// due decision/advance has already happened.
    pub fn stage(&mut self, release: f64, work: f64, databank: usize) -> usize {
        if !self.started {
            self.started = true;
            self.stage_time = release;
        }
        let id = self.jobs.len();
        self.jobs.push(AcceptedJob {
            release,
            work,
            databank,
        });
        self.remaining.push(work);
        self.completions.push(f64::NAN);
        #[cfg(feature = "invariant-audit")]
        self.audit_digest_round_trip("stage");
        id
    }

    /// `true` once a first job has been staged.
    pub fn started(&self) -> bool {
        self.started
    }

    /// The decision frontier.
    pub fn stage_time(&self) -> f64 {
        self.stage_time
    }

    /// `true` while a decision is installed but not yet advanced past.
    pub fn has_active(&self) -> bool {
        self.active.is_some()
    }

    /// Tier of the installed decision, if any.
    pub fn active_tier(&self) -> Option<SolveTier> {
        self.active.as_ref().map(|d| d.tier)
    }

    /// Decisions installed so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Max-stretch of the most recent successful solve.
    pub fn last_stretch(&self) -> f64 {
        self.last_stretch
    }

    /// Jobs staged so far, in arrival order (`job id == index`).
    pub fn jobs(&self) -> &[AcceptedJob] {
        &self.jobs
    }

    /// Remaining work per job.
    pub fn remaining(&self) -> &[f64] {
        &self.remaining
    }

    /// Completion time per job (`NaN` while unfinished).
    pub fn completions(&self) -> &[f64] {
        &self.completions
    }

    /// Number of jobs whose remaining work is above the pending threshold.
    pub fn backlog(&self) -> usize {
        self.remaining
            .iter()
            .filter(|&&r| r > PENDING_REMAINING_EPS)
            .count()
    }

    /// `true` when the frontier has pending jobs and no installed decision —
    /// i.e. a decision is due before the frontier may move.
    pub fn needs_decision(&self) -> bool {
        self.started && self.active.is_none() && !self.pending().is_empty()
    }

    /// Pending jobs at the frontier, exactly as `run_online_with` builds
    /// them: released (within [`EVENT_TOL`]) and not completed.
    fn pending(&self) -> Vec<PendingJob> {
        self.jobs
            .iter()
            .enumerate()
            .filter(|(id, j)| {
                j.release <= self.stage_time + EVENT_TOL
                    && self.remaining[*id] > PENDING_REMAINING_EPS
            })
            .map(|(id, j)| PendingJob {
                job_id: id,
                release: j.release,
                ready: self.stage_time,
                work: j.work,
                remaining: self.remaining[id],
                databank: j.databank,
            })
            .collect()
    }

    /// Solves the decision at the frontier with `tier`, without committing
    /// anything.  Scheduler state is untouched on both success and failure
    /// (only the tier's solver scratch warms up — irrelevant to outputs by
    /// the warm/cold identity contract), so the ladder can discard this
    /// result freely.  [`SolveTier::Edf`] only fails with
    /// [`SolveFailure::NothingPending`].
    pub fn try_solve(&mut self, tier: SolveTier) -> Result<PreparedDecision, SolveFailure> {
        let pending = self.pending();
        if pending.is_empty() {
            return Err(SolveFailure::NothingPending);
        }
        let problem = DeadlineProblem::new(pending, self.sites.clone(), self.stage_time);
        let Some(backend) = tier.backend() else {
            // EDF shed tier: order by virtual deadline r_j + S * W_j, where S
            // is the last certified stretch — the deadline each job would
            // have under that objective.  Ties broken by pending index for
            // determinism.
            let mut order: Vec<usize> = (0..problem.jobs.len()).collect();
            order.sort_by(|&a, &b| {
                let da = problem.jobs[a].release + self.last_stretch * problem.jobs[a].work;
                let db = problem.jobs[b].release + self.last_stretch * problem.jobs[b].work;
                da.total_cmp(&db).then_with(|| a.cmp(&b))
            });
            return Ok(PreparedDecision {
                tier,
                problem,
                kind: DecisionKind::ListOrder(order),
                stretch: None,
            });
        };
        let warm_start = self.warm_start;
        let incremental = self.incremental;
        let solver = self.solvers[tier.code() as usize].get_or_insert_with(|| {
            ParametricDeadlineSolver::with_config(SolverConfig {
                backend,
                warm_start,
                incremental,
            })
        });
        let best = solver
            .min_feasible_stretch(&problem)
            .ok_or(SolveFailure::Infeasible)?;
        let slack = certified_slack(best);
        let plan = solver
            .system2_allocation(&problem, slack)
            .ok_or(SolveFailure::Allocation)?;
        let sequences = site_sequences(&problem, &plan, PieceOrdering::Online);
        Ok(PreparedDecision {
            tier,
            problem,
            kind: DecisionKind::Sequences(sequences),
            stretch: Some(best),
        })
    }

    /// Commits a prepared decision at the frontier.  The matching journal
    /// record must already be durable (write-ahead).
    pub fn install(&mut self, decision: PreparedDecision) {
        if let Some(s) = decision.stretch {
            self.last_stretch = s;
        }
        self.decisions += 1;
        self.active = Some(decision);
        #[cfg(feature = "invariant-audit")]
        self.audit_digest_round_trip("install");
    }

    /// Moves the frontier to `t` (the next event time, or `f64::INFINITY` to
    /// drain), executing the installed decision over `[stage_time, t)` and
    /// folding executed work and completions back — the bookkeeping step of
    /// `run_online_with`, verbatim.
    pub fn advance(&mut self, t: f64) {
        debug_assert!(
            t >= self.stage_time - EVENT_TOL,
            "frontier may not move back"
        );
        if let Some(decision) = self.active.take() {
            let execution: PlanExecution = match &decision.kind {
                DecisionKind::Sequences(sequences) => {
                    execute_sequences(&decision.problem, sequences, self.stage_time, t)
                }
                DecisionKind::ListOrder(order) => {
                    execute_list_order(&decision.problem, order, &self.sites, self.stage_time, t)
                }
            };
            for (pending_idx, job) in decision.problem.jobs.iter().enumerate() {
                self.remaining[job.job_id] =
                    (self.remaining[job.job_id] - execution.executed[pending_idx]).max(0.0);
                if let Some(&c) = execution.completions.get(&pending_idx) {
                    self.remaining[job.job_id] = 0.0;
                    self.completions[job.job_id] = c;
                }
            }
        }
        if t.is_finite() {
            self.stage_time = t;
        }
        #[cfg(feature = "invariant-audit")]
        self.audit_digest_round_trip("advance");
    }

    /// Digest-consistency audit at a serve transition (feature
    /// `invariant-audit`): exporting the state and rebuilding a scheduler
    /// from it must reproduce the digest bit-for-bit.  This is exactly the
    /// crash-recovery contract — a snapshot taken here and replayed later
    /// must land on this state — checked continuously instead of only in
    /// the recovery tests.
    #[cfg(feature = "invariant-audit")]
    fn audit_digest_round_trip(&self, context: &str) {
        let digest = self.state_digest();
        let restored = Self::from_state(
            self.sites.clone(),
            self.warm_start,
            self.incremental,
            self.export_state(),
        );
        let round_trip = restored.state_digest();
        if digest != round_trip {
            stretch_flow::audit::fail(
                "serve-digest",
                &format!(
                    "{context}: live digest {digest:#018x} but export/rebuild \
                     round-trip digests {round_trip:#018x}"
                ),
            );
        }
    }

    /// FNV-1a digest of the replayed state: job parameters, remaining works,
    /// completions, frontier, decision count, last stretch and the installed
    /// decision (if any) — everything replay must reproduce, all floats as
    /// exact bit patterns.  Solver caches and metrics are deliberately
    /// excluded (performance state, not replayed state).
    pub fn state_digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.jobs.len() as u64);
        for job in &self.jobs {
            h.f64(job.release);
            h.f64(job.work);
            h.u64(job.databank as u64);
        }
        for &r in &self.remaining {
            h.f64(r);
        }
        for &c in &self.completions {
            h.f64(c);
        }
        h.u64(u64::from(self.started));
        h.f64(self.stage_time);
        h.f64(self.last_stretch);
        h.u64(self.decisions);
        match &self.active {
            None => h.u64(0),
            Some(d) => {
                h.u64(1 + u64::from(d.tier.code()));
                h.f64(d.stretch.unwrap_or(f64::NAN));
                match &d.kind {
                    DecisionKind::Sequences(sequences) => {
                        h.u64(sequences.len() as u64);
                        for seq in sequences {
                            h.u64(seq.len() as u64);
                            for &(job_index, work) in seq {
                                h.u64(job_index as u64);
                                h.f64(work);
                            }
                        }
                    }
                    DecisionKind::ListOrder(order) => {
                        h.u64(u64::MAX);
                        for &j in order {
                            h.u64(j as u64);
                        }
                    }
                }
            }
        }
        h.finish()
    }
}

/// How an exported active decision executes — the serializable mirror of
/// the private `DecisionKind`.
#[derive(Clone, Debug, PartialEq)]
pub enum DecisionKindState {
    /// Per-site chunk sequences (the LP/flow tiers).
    Sequences(Vec<Vec<(usize, f64)>>),
    /// A fixed priority order (the EDF shed tier).
    ListOrder(Vec<usize>),
}

/// Serializable image of an installed-but-not-advanced decision: the tier,
/// the frozen [`DeadlineProblem`] it solved (minus the [`SiteView`], which
/// the platform reconstructs), and its execution plan.
#[derive(Clone, Debug, PartialEq)]
pub struct ActiveDecisionState {
    /// The tier that produced the decision.
    pub tier: SolveTier,
    /// Certified max-stretch (`None` for the EDF tier).
    pub stretch: Option<f64>,
    /// The frontier time the problem was frozen at.
    pub now: f64,
    /// The pending jobs of the frozen problem, verbatim.
    pub jobs: Vec<PendingJob>,
    /// The execution plan.
    pub kind: DecisionKindState,
}

/// Plain-data image of the replayed scheduler state — exactly what
/// [`ServeScheduler::state_digest`] covers, in serializable form (the
/// snapshot layer encodes it to bytes).
///
/// Solver engines and their warm-start carryover (bases, remapping keys) are
/// deliberately **absent**: the warm/cold identity contract of PRs 4–5 makes
/// them performance-only, so a scheduler restored from this state restarts
/// cold and still replays bit-identically.
#[derive(Clone, Debug, PartialEq)]
pub struct SchedulerState {
    /// Jobs staged so far, in arrival order.
    pub jobs: Vec<AcceptedJob>,
    /// Remaining work per job.
    pub remaining: Vec<f64>,
    /// Completion time per job (`NaN` while unfinished).
    pub completions: Vec<f64>,
    /// Whether a first job has been staged.
    pub started: bool,
    /// The decision frontier.
    pub stage_time: f64,
    /// Max-stretch of the most recent successful solve.
    pub last_stretch: f64,
    /// Decisions installed so far.
    pub decisions: u64,
    /// The installed decision, if the journal ended between a decision
    /// record and the advance it precedes.
    pub active: Option<ActiveDecisionState>,
}

impl ServeScheduler {
    /// Exports the full replayed state (see [`SchedulerState`]).
    pub fn export_state(&self) -> SchedulerState {
        SchedulerState {
            jobs: self.jobs.clone(),
            remaining: self.remaining.clone(),
            completions: self.completions.clone(),
            started: self.started,
            stage_time: self.stage_time,
            last_stretch: self.last_stretch,
            decisions: self.decisions,
            active: self.active.as_ref().map(|d| ActiveDecisionState {
                tier: d.tier,
                stretch: d.stretch,
                now: d.problem.now,
                jobs: d.problem.jobs.clone(),
                kind: match &d.kind {
                    DecisionKind::Sequences(s) => DecisionKindState::Sequences(s.clone()),
                    DecisionKind::ListOrder(o) => DecisionKindState::ListOrder(o.clone()),
                },
            }),
        }
    }

    /// Rebuilds a scheduler from an exported state.  The caller supplies
    /// `sites` (reconstructed from the platform — it is not serialized),
    /// `warm_start` and `incremental`; solvers restart cold and unprimed,
    /// which is output-identical by the warm/cold and incremental/rebuild
    /// contracts.
    ///
    /// The active decision's `DeadlineProblem` is rebuilt by *struct
    /// literal*, not `DeadlineProblem::new` — the constructor filters
    /// near-complete jobs, which would shift pending indices and corrupt
    /// the frozen plan.
    pub fn from_state(
        sites: SiteView,
        warm_start: bool,
        incremental: bool,
        state: SchedulerState,
    ) -> Self {
        let active = state.active.map(|d| PreparedDecision {
            tier: d.tier,
            problem: DeadlineProblem {
                jobs: d.jobs,
                sites: sites.clone(),
                now: d.now,
            },
            kind: match d.kind {
                DecisionKindState::Sequences(s) => DecisionKind::Sequences(s),
                DecisionKindState::ListOrder(o) => DecisionKind::ListOrder(o),
            },
            stretch: d.stretch,
        });
        ServeScheduler {
            sites,
            warm_start,
            incremental,
            jobs: state.jobs,
            remaining: state.remaining,
            completions: state.completions,
            started: state.started,
            stage_time: state.stage_time,
            active,
            last_stretch: state.last_stretch,
            decisions: state.decisions,
            solvers: [None, None, None],
        }
    }
}

/// Minimal FNV-1a 64-bit hasher (stable across platforms and runs, unlike
/// `DefaultHasher`).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stretch_platform::fixtures::small_platform;

    fn scheduler() -> ServeScheduler {
        ServeScheduler::new(SiteView::of_platform(&small_platform()), true, true)
    }

    #[test]
    fn solve_install_advance_completes_a_single_job() {
        let mut s = scheduler();
        s.stage(0.0, 120.0, 0);
        assert!(s.needs_decision());
        let decision = s.try_solve(SolveTier::PrimalDual).unwrap();
        assert!(decision.stretch().is_some());
        s.install(decision);
        s.advance(f64::INFINITY);
        // 120 MB over the 60 MB/s platform: completion at t = 2.
        assert!((s.completions()[0] - 2.0).abs() < 1e-3);
        assert_eq!(s.backlog(), 0);
    }

    #[test]
    fn edf_tier_never_fails_on_pending_work() {
        let mut s = scheduler();
        s.stage(0.0, 120.0, 0);
        s.stage(0.0, 30.0, 1);
        let decision = s.try_solve(SolveTier::Edf).unwrap();
        assert_eq!(decision.tier(), SolveTier::Edf);
        assert_eq!(decision.stretch(), None);
        s.install(decision);
        s.advance(f64::INFINITY);
        assert_eq!(s.backlog(), 0);
        assert!(s.completions().iter().all(|c| c.is_finite()));
    }

    #[test]
    fn try_solve_leaves_state_untouched() {
        let mut s = scheduler();
        s.stage(0.0, 120.0, 0);
        let before = s.state_digest();
        let _ = s.try_solve(SolveTier::Monge).unwrap();
        let _ = s.try_solve(SolveTier::Edf).unwrap();
        assert_eq!(s.state_digest(), before);
        assert_eq!(s.decisions(), 0);
    }

    #[test]
    fn digest_tracks_every_transition() {
        let mut s = scheduler();
        let d0 = s.state_digest();
        s.stage(0.0, 120.0, 0);
        let d1 = s.state_digest();
        assert_ne!(d0, d1);
        let decision = s.try_solve(SolveTier::Simplex).unwrap();
        s.install(decision);
        let d2 = s.state_digest();
        assert_ne!(d1, d2);
        s.advance(1.0);
        let d3 = s.state_digest();
        assert_ne!(d2, d3);
    }

    #[test]
    fn export_restore_round_trips_mid_decision() {
        // Restore with an *installed* decision pending: the frozen problem
        // and plan must survive, and advancing both schedulers from the
        // restored point must produce bit-identical completions.
        let mut live = scheduler();
        live.stage(0.0, 300.0, 0);
        let d = live.try_solve(SolveTier::Monge).unwrap();
        live.install(d);
        live.advance(1.0);
        live.stage(1.0, 60.0, 1);
        let d = live.try_solve(SolveTier::Monge).unwrap();
        live.install(d);

        let state = live.export_state();
        let mut restored =
            ServeScheduler::from_state(SiteView::of_platform(&small_platform()), true, true, state);
        assert_eq!(restored.state_digest(), live.state_digest());
        assert_eq!(restored.decisions(), live.decisions());
        assert!(restored.has_active());

        live.advance(f64::INFINITY);
        restored.advance(f64::INFINITY);
        assert_eq!(restored.state_digest(), live.state_digest());
        assert_eq!(
            restored
                .completions()
                .iter()
                .map(|c| c.to_bits())
                .collect::<Vec<_>>(),
            live.completions()
                .iter()
                .map(|c| c.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn identical_transition_sequences_digest_identically() {
        let run = || {
            let mut s = scheduler();
            s.stage(0.0, 300.0, 0);
            let d = s.try_solve(SolveTier::Monge).unwrap();
            s.install(d);
            s.advance(1.0);
            s.stage(1.0, 60.0, 1);
            let d = s.try_solve(SolveTier::Monge).unwrap();
            s.install(d);
            s.advance(f64::INFINITY);
            (s.state_digest(), s.completions().to_vec())
        };
        let (da, ca) = run();
        let (db, cb) = run();
        assert_eq!(da, db);
        assert_eq!(
            ca.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
            cb.iter().map(|c| c.to_bits()).collect::<Vec<_>>()
        );
    }
}
