//! In-process event bus: a bounded channel feeding a [`StretchServe`] on a
//! dedicated consumer thread, with a live queue-depth gauge.
//!
//! The bus exists so producers (request handlers, the replayed reference
//! stream of `repro_serve`) never block on a solve: they enqueue and move
//! on; the consumer thread validates, journals and schedules in submission
//! order.  Rejections are not reported back through the bus — they land in
//! the service's dead-letter queue, where the operator inspects them.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::event::Submission;
use crate::journal::JournalError;
use crate::service::StretchServe;

/// Messages carried by the bus.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BusMessage {
    /// A job submission.
    Submit(Submission),
    /// Drain the service and stop the consumer.
    Finish,
}

/// The bus was closed (consumer gone) or full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BusSendError {
    /// The consumer thread has exited; the message was not delivered.
    Closed,
    /// The bounded queue is full (only from [`BusHandle::try_submit`]).
    Full,
}

impl std::fmt::Display for BusSendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusSendError::Closed => write!(f, "event bus closed"),
            BusSendError::Full => write!(f, "event bus full"),
        }
    }
}

impl std::error::Error for BusSendError {}

/// Producer handle onto the bus.  Cloneable; dropping every handle drains
/// the service just like an explicit [`BusHandle::finish`].
#[derive(Clone, Debug)]
pub struct BusHandle {
    tx: SyncSender<BusMessage>,
    depth: Arc<AtomicUsize>,
}

impl BusHandle {
    /// Enqueues a submission, blocking while the queue is full.
    pub fn submit(&self, submission: Submission) -> Result<(), BusSendError> {
        self.send(BusMessage::Submit(submission))
    }

    /// Enqueues a submission without blocking.
    pub fn try_submit(&self, submission: Submission) -> Result<(), BusSendError> {
        self.depth.fetch_add(1, Ordering::SeqCst);
        self.tx
            .try_send(BusMessage::Submit(submission))
            .map_err(|e| {
                self.depth.fetch_sub(1, Ordering::SeqCst);
                match e {
                    TrySendError::Full(_) => BusSendError::Full,
                    TrySendError::Disconnected(_) => BusSendError::Closed,
                }
            })
    }

    /// Asks the consumer to drain and stop.
    pub fn finish(&self) -> Result<(), BusSendError> {
        self.send(BusMessage::Finish)
    }

    /// Submissions enqueued but not yet consumed.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    fn send(&self, message: BusMessage) -> Result<(), BusSendError> {
        self.depth.fetch_add(1, Ordering::SeqCst);
        self.tx.send(message).map_err(|_| {
            self.depth.fetch_sub(1, Ordering::SeqCst);
            BusSendError::Closed
        })
    }
}

/// Spawns the consumer thread over `service` with a bounded queue of
/// `capacity` messages.  The join handle returns the drained service (for
/// inspection of completions, metrics and the DLQ) or the journal error
/// that stopped it.
pub fn spawn_service(
    service: StretchServe,
    capacity: usize,
) -> (BusHandle, JoinHandle<Result<StretchServe, JournalError>>) {
    let (tx, rx) = sync_channel(capacity.max(1));
    let depth = Arc::new(AtomicUsize::new(0));
    let handle = BusHandle {
        tx,
        depth: Arc::clone(&depth),
    };
    let consumer = std::thread::spawn(move || consume(service, rx, depth));
    (handle, consumer)
}

fn consume(
    mut service: StretchServe,
    rx: Receiver<BusMessage>,
    depth: Arc<AtomicUsize>,
) -> Result<StretchServe, JournalError> {
    while let Ok(message) = rx.recv() {
        depth.fetch_sub(1, Ordering::SeqCst);
        match message {
            BusMessage::Submit(submission) => {
                // Rejections land in the DLQ; only journal I/O failures
                // abort the consumer.
                service.submit(submission)?;
            }
            BusMessage::Finish => break,
        }
    }
    // Explicit finish, or every producer hung up: drain either way.
    service.finish()?;
    Ok(service)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;
    use stretch_platform::fixtures::small_platform;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("stretch-serve-bus-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn bus_feeds_service_and_returns_it_drained() {
        let path = tmp("feed");
        let service =
            StretchServe::create(&path, small_platform(), ServeConfig::default()).unwrap();
        let (handle, consumer) = spawn_service(service, 16);
        handle.submit(Submission::new(0.0, 120.0, 0)).unwrap();
        handle.submit(Submission::new(1.0, 60.0, 1)).unwrap();
        handle.submit(Submission::new(f64::NAN, 9.0, 0)).unwrap();
        handle.finish().unwrap();
        let service = consumer.join().unwrap().unwrap();
        assert!(service.is_finished());
        assert_eq!(service.metrics().accepted, 2);
        assert_eq!(service.metrics().dead_lettered, 1);
        assert_eq!(service.completions().len(), 2);
        assert!(service.completions().iter().all(|c| c.is_finite()));
        assert_eq!(handle.depth(), 0);
        assert_eq!(handle.finish(), Err(BusSendError::Closed));
        std::fs::remove_dir_all(&path).unwrap();
    }

    #[test]
    fn dropping_every_handle_drains_the_service() {
        let path = tmp("hangup");
        let service =
            StretchServe::create(&path, small_platform(), ServeConfig::default()).unwrap();
        let (handle, consumer) = spawn_service(service, 4);
        handle.submit(Submission::new(0.0, 30.0, 0)).unwrap();
        drop(handle);
        let service = consumer.join().unwrap().unwrap();
        assert!(service.is_finished());
        assert_eq!(service.metrics().accepted, 1);
        std::fs::remove_dir_all(&path).unwrap();
    }
}
