//! # stretch-serve
//!
//! A crash-safe streaming front-end for the on-line max-stretch scheduler:
//! the paper's per-event algorithm (§4.3.2 of Legrand–Su–Vivien, SPAA 2006)
//! packaged as a long-lived service you can feed forever, kill at any
//! instant, and recover bit-identically.
//!
//! The design follows the execution-journal pattern: an append-only,
//! length-prefixed and checksummed [`journal`] is the *only* source of
//! truth, written before the scheduler consumes each event (write-ahead);
//! scheduler state is a pure function of the record sequence, so crash
//! recovery is replay ([`StretchServe::recover`]), tolerating torn tails by
//! truncating at the first bad checksum.  Wall-clock timestamps are stamped
//! into records for debugging but **never** consulted on replay.
//!
//! Replay is *bounded*: the journal is a directory of rotated segments
//! ([`journal::SegmentedJournal`]) interleaved with self-verifying scheduler
//! [`snapshot`]s, and recovery restores the newest snapshot whose digest
//! verifies, replaying only the segment suffix past it (falling back one
//! snapshot at a time — ultimately to full replay — on corruption, each
//! rejection typed as a [`SnapshotRejectReason`]).
//!
//! Around the scheduler sit the robustness layers:
//!
//! * **validation + dead-letter queue** ([`dlq`]) — malformed or infeasible
//!   submissions (NaN work, unknown databank, out-of-order release) are
//!   parked with a typed [`RejectReason`], never panicking;
//! * **degradation ladder** ([`service`]) — each decision tries
//!   monge → simplex → primal-dual with escalating time budgets, falls back
//!   on failure or timeout, and a circuit breaker sheds to the EDF heuristic
//!   after consecutive budget busts; the chosen tier is journaled so replay
//!   reproduces the degradation exactly;
//! * **live counters** ([`metrics`]) — accept/reject/dead-letter tallies,
//!   fallbacks, breaker state, queue depth and solve-latency quantiles.

#![deny(missing_docs)]

pub mod bus;
pub mod dlq;
pub mod event;
pub mod journal;
pub mod metrics;
pub mod scheduler;
pub mod service;
pub mod snapshot;
pub mod trace;

pub use bus::{spawn_service, BusHandle, BusMessage, BusSendError};
pub use dlq::{DeadLetter, DeadLetterQueue};
pub use event::{
    validate_submission, JournalEvent, JournalRecord, RejectReason, SolveTier, Submission,
};
pub use journal::{
    JournalError, JournalWriter, RotationCrashPoint, RotationPolicy, SegmentedJournal, TailStatus,
    TornReason,
};
pub use metrics::ServeMetrics;
pub use scheduler::{AcceptedJob, PreparedDecision, ServeScheduler, SolveFailure};
pub use service::{
    RecoverError, RecoveryReport, ServeConfig, SnapshotRejectReason, StretchServe, SubmitOutcome,
};
pub use snapshot::{ServiceCounters, Snapshot, SnapshotError};
pub use trace::{
    RecordError, RecordedRun, ReplayError, ReplayOutcome, Trace, TraceError, TraceMeta,
    TraceRecorder, TraceSeal, TraceTail, TRACE_MAGIC, TRACE_VERSION,
};
