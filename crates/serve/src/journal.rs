//! The durable event journal: an append-only, length-prefixed and
//! checksummed record log, written *before* the scheduler consumes each
//! event (write-ahead) — rotated into numbered **segments** so recovery
//! work and disk usage stay bounded however long the stream runs.
//!
//! A journal is a *directory* containing
//!
//! ```text
//! segment-000000.strj      sealed segments (immutable, fully synced)
//! segment-000001.strj
//! segment-000002.open      the single active segment being appended to
//! snapshot-000001.strsnp   scheduler-state snapshots (see `snapshot`)
//! ```
//!
//! Every segment file has the layout
//!
//! ```text
//! [ 8-byte magic "STRJRN01" ]
//! [ u32 payload_len | u32 crc32(payload) | payload ]*
//! ```
//!
//! All integers little-endian.  The journal is the *only* source of truth:
//! scheduler state is a pure function of the record sequence, so recovery is
//! replay.  A crash can leave a torn tail — a partial header, a partial
//! payload, or a payload whose checksum no longer matches; [`load`] stops at
//! the first such record and reports where the valid prefix ends, and
//! [`JournalWriter::append_at`] truncates the file there before appending
//! again.  Torn tails are *data loss of at most the in-flight record*, never
//! corruption of the prefix — and they can only occur in the **last** segment
//! of the chain: sealing fsyncs the data before the atomic rename, so a torn
//! sealed segment mid-chain is disk corruption, not a crash artefact.
//!
//! [`SegmentedJournal`] owns rotation: when the active segment exceeds the
//! [`RotationPolicy`] record/byte threshold it is sealed
//! (`.open` → `.strj`, an atomic rename), optionally a snapshot covering
//! everything up to the sealed segment is written (temp file → fsync →
//! atomic rename), sealed segments older than the oldest retained snapshot
//! are garbage-collected, and a fresh active segment opens.  Recovery picks
//! the newest snapshot whose digest verifies and replays only the segment
//! suffix past it — see `service::recover` for the decision tree.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::event::{decode_payload, encode_payload, JournalRecord, PayloadError};

/// Magic bytes opening every journal file (format version 01).
pub const MAGIC: [u8; 8] = *b"STRJRN01";

/// Frame header size: `u32` length + `u32` checksum.
pub const RECORD_HEADER_LEN: usize = 8;

/// Sanity cap on a single payload: anything larger is torn/garbage, not a
/// record this crate ever writes.
pub const MAX_PAYLOAD_LEN: u32 = 1 << 20;

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the ubiquitous
/// `crc32` of zlib/PNG.  Bitwise implementation: journal records are tens of
/// bytes, a lookup table would be noise.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// I/O or format failure of the journal itself (as opposed to a torn tail,
/// which is an expected crash artefact reported via [`TailStatus`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// An OS-level I/O operation failed.
    Io {
        /// What the journal was doing (`"open"`, `"append"`, …).
        op: &'static str,
        /// The journal path.
        path: PathBuf,
        /// The rendered OS error.
        message: String,
    },
    /// The file does not start with [`MAGIC`]: it is not a journal (or the
    /// creating process died before the header hit the disk).  Refusing to
    /// guess beats replaying garbage.
    BadMagic {
        /// The offending path.
        path: PathBuf,
    },
    /// The journal directory's segment files contradict the rotation
    /// invariants (e.g. two `.open` segments).  No crash of this crate's own
    /// write sequence can produce this — it means external interference.
    BadLayout {
        /// The journal directory.
        dir: PathBuf,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { op, path, message } => {
                write!(f, "journal {op} failed on {}: {message}", path.display())
            }
            JournalError::BadMagic { path } => {
                write!(f, "{} is not a journal (bad magic)", path.display())
            }
            JournalError::BadLayout { dir, reason } => {
                write!(
                    f,
                    "journal directory {} is malformed: {reason}",
                    dir.display()
                )
            }
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(op: &'static str, path: &Path, e: std::io::Error) -> JournalError {
    JournalError::Io {
        op,
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// Why the tail of a journal was discarded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TornReason {
    /// Fewer than [`RECORD_HEADER_LEN`] bytes remained.
    TruncatedHeader,
    /// The length prefix exceeds [`MAX_PAYLOAD_LEN`].
    OversizedLength,
    /// The payload is shorter than its length prefix.
    TruncatedPayload,
    /// The payload checksum does not match.
    ChecksumMismatch,
    /// The checksum matched but the payload does not decode (only reachable
    /// through a checksum collision on corrupted bytes).
    MalformedPayload(PayloadError),
}

impl std::fmt::Display for TornReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TornReason::TruncatedHeader => write!(f, "truncated record header"),
            TornReason::OversizedLength => write!(f, "oversized record length"),
            TornReason::TruncatedPayload => write!(f, "truncated record payload"),
            TornReason::ChecksumMismatch => write!(f, "record checksum mismatch"),
            TornReason::MalformedPayload(e) => write!(f, "malformed record payload: {e}"),
        }
    }
}

/// State of the journal tail after [`load`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TailStatus {
    /// Every byte of the file parsed as a valid record.
    Clean,
    /// The file ends in a torn record starting at `valid_bytes`.
    Torn {
        /// Length of the valid prefix (magic + whole records); the file
        /// should be truncated here before appending.
        valid_bytes: u64,
        /// What was wrong with the first invalid record.
        reason: TornReason,
    },
}

impl TailStatus {
    /// Length of the valid prefix in bytes (`file length` when clean is
    /// resolved by the caller, so clean returns `None`).
    pub fn torn_at(&self) -> Option<u64> {
        match self {
            TailStatus::Clean => None,
            TailStatus::Torn { valid_bytes, .. } => Some(*valid_bytes),
        }
    }
}

/// Parses journal bytes (already read from disk) into records plus the tail
/// status.  Pure function of the bytes — the testable core of [`load`].
pub fn parse(bytes: &[u8], path: &Path) -> Result<(Vec<JournalRecord>, TailStatus), JournalError> {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return Err(JournalError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let mut records = Vec::new();
    let mut offset = MAGIC.len();
    let torn = |offset: usize, reason: TornReason| TailStatus::Torn {
        valid_bytes: offset as u64,
        reason,
    };
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            return Ok((records, TailStatus::Clean));
        }
        if remaining < RECORD_HEADER_LEN {
            return Ok((records, torn(offset, TornReason::TruncatedHeader)));
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        if len > MAX_PAYLOAD_LEN {
            return Ok((records, torn(offset, TornReason::OversizedLength)));
        }
        let len = len as usize;
        if remaining - RECORD_HEADER_LEN < len {
            return Ok((records, torn(offset, TornReason::TruncatedPayload)));
        }
        let payload = &bytes[offset + RECORD_HEADER_LEN..offset + RECORD_HEADER_LEN + len];
        if crc32(payload) != crc {
            return Ok((records, torn(offset, TornReason::ChecksumMismatch)));
        }
        match decode_payload(payload) {
            Ok(record) => records.push(record),
            Err(e) => return Ok((records, torn(offset, TornReason::MalformedPayload(e)))),
        }
        offset += RECORD_HEADER_LEN + len;
    }
}

/// Reads a journal file and parses its valid prefix.
///
/// A torn tail is *not* an error: the records of the valid prefix are
/// returned together with [`TailStatus::Torn`] telling the caller where to
/// truncate.  Errors are reserved for I/O failures and non-journal files.
pub fn load(path: &Path) -> Result<(Vec<JournalRecord>, TailStatus), JournalError> {
    let mut file = File::open(path).map_err(|e| io_err("open", path, e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| io_err("read", path, e))?;
    parse(&bytes, path)
}

/// Append handle on a journal file.
///
/// Every append writes the full frame with a single `write_all` and then
/// `sync_data`s, so the record is durable before the scheduler consumes the
/// event (the write-ahead contract).
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
}

impl JournalWriter {
    /// Creates (or truncates) a fresh journal at `path` and writes the magic
    /// header durably.
    pub fn create(path: &Path) -> Result<Self, JournalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err("create", path, e))?;
        file.write_all(&MAGIC)
            .map_err(|e| io_err("write-magic", path, e))?;
        file.sync_data().map_err(|e| io_err("sync", path, e))?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Reopens an existing journal for appending, first truncating it to
    /// `valid_bytes` (the prefix [`load`] validated) so a torn tail can never
    /// shadow future appends.
    pub fn append_at(path: &Path, valid_bytes: u64) -> Result<Self, JournalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err("open", path, e))?;
        file.set_len(valid_bytes)
            .map_err(|e| io_err("truncate", path, e))?;
        file.sync_data().map_err(|e| io_err("sync", path, e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek", path, e))?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Appends one record durably (frame write + `sync_data`).  Returns the
    /// frame length in bytes, which rotation accounting sums.
    pub fn append(&mut self, record: &JournalRecord) -> Result<u64, JournalError> {
        let payload = encode_payload(record);
        let mut frame = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("append", &self.path, e))?;
        self.file
            .sync_data()
            .map_err(|e| io_err("sync", &self.path, e))?;
        Ok(frame.len() as u64)
    }

    /// Forces an explicit flush (appends already sync; this is for
    /// close-time belt and braces).
    pub fn sync(&self) -> Result<(), JournalError> {
        self.file
            .sync_data()
            .map_err(|e| io_err("sync", &self.path, e))
    }

    /// The journal path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// File extension of sealed (immutable, fully synced) segments.
pub const SEGMENT_SEALED_EXT: &str = "strj";

/// File extension of the single active segment being appended to.
pub const SEGMENT_OPEN_EXT: &str = "open";

/// File extension of scheduler-state snapshots.
pub const SNAPSHOT_EXT: &str = "strsnp";

/// File name of segment `index` (`segment-000042.strj` / `.open`).
pub fn segment_file_name(index: u64, sealed: bool) -> String {
    let ext = if sealed {
        SEGMENT_SEALED_EXT
    } else {
        SEGMENT_OPEN_EXT
    };
    format!("segment-{index:06}.{ext}")
}

/// Path of segment `index` inside journal directory `dir`.
pub fn segment_path(dir: &Path, index: u64, sealed: bool) -> PathBuf {
    dir.join(segment_file_name(index, sealed))
}

/// File name of the snapshot covering every record up to and including
/// sealed segment `upto` (`snapshot-000042.strsnp`).
pub fn snapshot_file_name(upto: u64) -> String {
    format!("snapshot-{upto:06}.{SNAPSHOT_EXT}")
}

/// Path of the snapshot covering sealed segment `upto` inside `dir`.
pub fn snapshot_path(dir: &Path, upto: u64) -> PathBuf {
    dir.join(snapshot_file_name(upto))
}

fn snapshot_tmp_path(dir: &Path, upto: u64) -> PathBuf {
    dir.join(format!("snapshot-{upto:06}.tmp"))
}

/// Parses `segment-NNNNNN.<ext>` / `snapshot-NNNNNN.strsnp` names.
fn parse_artefact(name: &str) -> Option<(&'static str, u64)> {
    let (kind, rest) = if let Some(rest) = name.strip_prefix("segment-") {
        ("segment", rest)
    } else if let Some(rest) = name.strip_prefix("snapshot-") {
        ("snapshot", rest)
    } else {
        return None;
    };
    let (digits, ext) = rest.split_once('.')?;
    let index: u64 = digits.parse().ok()?;
    match (kind, ext) {
        ("segment", e) if e == SEGMENT_SEALED_EXT => Some(("sealed", index)),
        ("segment", e) if e == SEGMENT_OPEN_EXT => Some(("open", index)),
        ("snapshot", e) if e == SNAPSHOT_EXT => Some(("snapshot", index)),
        // `.tmp` snapshots are in-flight writes abandoned by a crash: the
        // scan ignores them (recovery must never trust an un-renamed file).
        _ => None,
    }
}

/// What a journal directory holds: the segment chain and the snapshots.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SegmentScan {
    /// Indices of sealed segments, ascending.
    pub sealed: Vec<u64>,
    /// Index of the active (`.open`) segment, if one exists (a crash between
    /// sealing and opening the next segment leaves none).
    pub open: Option<u64>,
    /// `upto` indices of snapshot files, ascending.
    pub snapshots: Vec<u64>,
}

impl SegmentScan {
    /// Every segment index in replay order (sealed then active).
    pub fn chain(&self) -> Vec<u64> {
        let mut chain = self.sealed.clone();
        if let Some(open) = self.open {
            chain.push(open);
        }
        chain
    }
}

/// Lists the segments and snapshots of a journal directory.
///
/// Unknown files (and abandoned `snapshot-*.tmp` writes) are ignored; two
/// `.open` segments, or an `.open` segment that also exists sealed, are
/// reported as [`JournalError::BadLayout`] — no crash of this crate's own
/// rotation sequence can produce either.
pub fn scan_dir(dir: &Path) -> Result<SegmentScan, JournalError> {
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("scan", dir, e))?;
    let mut scan = SegmentScan::default();
    for entry in entries {
        let entry = entry.map_err(|e| io_err("scan", dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        match parse_artefact(name) {
            Some(("sealed", index)) => scan.sealed.push(index),
            Some(("open", index)) => {
                if let Some(previous) = scan.open.replace(index) {
                    return Err(JournalError::BadLayout {
                        dir: dir.to_path_buf(),
                        reason: format!("two active segments ({previous} and {index})"),
                    });
                }
            }
            Some(("snapshot", upto)) => scan.snapshots.push(upto),
            _ => {}
        }
    }
    scan.sealed.sort_unstable();
    scan.snapshots.sort_unstable();
    if let Some(open) = scan.open {
        if scan.sealed.contains(&open) {
            return Err(JournalError::BadLayout {
                dir: dir.to_path_buf(),
                reason: format!("segment {open} exists both sealed and open"),
            });
        }
        if scan.sealed.iter().any(|&s| s > open) {
            return Err(JournalError::BadLayout {
                dir: dir.to_path_buf(),
                reason: format!("active segment {open} is older than a sealed segment"),
            });
        }
    }
    Ok(scan)
}

/// Durably fsyncs a directory so a just-renamed/created file name survives a
/// crash (the file *data* is synced separately, before the rename).
fn sync_dir(dir: &Path) -> Result<(), JournalError> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err("sync-dir", dir, e))
}

/// When the record/byte threshold rotates the active segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RotationPolicy {
    /// Seal the active segment once it holds this many records.
    pub max_records: u64,
    /// … or once its frame bytes (excluding the magic) reach this many.
    pub max_bytes: u64,
}

impl Default for RotationPolicy {
    /// 1024 records or 1 MiB per segment — recovery replays at most one
    /// segment's worth of records past the newest snapshot.
    fn default() -> Self {
        RotationPolicy {
            max_records: 1024,
            max_bytes: 1 << 20,
        }
    }
}

/// Where a chaos-injected crash aborts the rotation sequence — the tool
/// behind the crash-during-rotation recovery tests.  Each point maps to a
/// real crash window of the seal → snapshot → reopen sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RotationCrashPoint {
    /// After the seal rename, before the snapshot temp file is written.
    AfterSeal,
    /// After the snapshot temp file is written and fsynced, before the
    /// atomic rename publishes it.
    AfterSnapshotTemp,
    /// After the snapshot rename, before garbage collection and before the
    /// next active segment is created.
    AfterSnapshotRename,
}

/// What one [`SegmentedJournal::rotate`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RotationOutcome {
    /// Index of the segment just sealed.
    pub sealed: u64,
    /// `true` when a snapshot covering the sealed segment was published.
    pub snapshot_written: bool,
    /// Sealed segments garbage-collected.
    pub gc_segments: usize,
    /// Snapshots garbage-collected.
    pub gc_snapshots: usize,
}

/// Append handle on a segment-rotated journal directory.
///
/// Owns the active segment's [`JournalWriter`] plus the rotation counters;
/// the *caller* (the service) decides when to check [`should_rotate`] and
/// supplies the encoded snapshot bytes, because only it can serialize
/// scheduler state at a record boundary.
///
/// [`should_rotate`]: SegmentedJournal::should_rotate
#[derive(Debug)]
pub struct SegmentedJournal {
    dir: PathBuf,
    policy: RotationPolicy,
    /// Index of the active segment.
    index: u64,
    writer: JournalWriter,
    /// Records in the active segment.
    segment_records: u64,
    /// Frame bytes (headers + payloads, not the magic) in the active segment.
    segment_bytes: u64,
    /// Records across every segment ever written (sealed + active), i.e. the
    /// journal's logical length.
    total_records: u64,
}

impl SegmentedJournal {
    /// Creates a fresh journal directory at `dir` (wiping any journal
    /// artefacts already there) and opens segment 0.
    pub fn create(dir: &Path, policy: RotationPolicy) -> Result<Self, JournalError> {
        if dir.is_file() {
            // Pre-rotation journals were single files; a stale one at the
            // directory path would shadow the new layout.
            std::fs::remove_file(dir).map_err(|e| io_err("create", dir, e))?;
        }
        std::fs::create_dir_all(dir).map_err(|e| io_err("create", dir, e))?;
        for scan in [scan_dir(dir)?] {
            for index in scan.sealed {
                let p = segment_path(dir, index, true);
                std::fs::remove_file(&p).map_err(|e| io_err("create", &p, e))?;
            }
            if let Some(index) = scan.open {
                let p = segment_path(dir, index, false);
                std::fs::remove_file(&p).map_err(|e| io_err("create", &p, e))?;
            }
            for upto in scan.snapshots {
                let p = snapshot_path(dir, upto);
                std::fs::remove_file(&p).map_err(|e| io_err("create", &p, e))?;
            }
        }
        let writer = JournalWriter::create(&segment_path(dir, 0, false))?;
        sync_dir(dir)?;
        Ok(SegmentedJournal {
            dir: dir.to_path_buf(),
            policy,
            index: 0,
            writer,
            segment_records: 0,
            segment_bytes: 0,
            total_records: 0,
        })
    }

    /// Reopens a recovered journal directory for appending.
    ///
    /// `last_segment` is the final segment of the recovered chain (`None`
    /// when every segment was garbage-collected and only a snapshot
    /// remains); recovery has already truncated its torn tail to
    /// `valid_bytes` / `records` worth of prefix.  If the last segment is
    /// sealed (a crash hit between sealing and opening the successor) a
    /// fresh active segment opens after it — sealed segments are never
    /// reopened.
    pub fn open_after_recovery(
        dir: &Path,
        policy: RotationPolicy,
        last_segment: Option<(u64, bool)>,
        valid_bytes: u64,
        records_in_last: u64,
        total_records: u64,
    ) -> Result<Self, JournalError> {
        let (index, writer, segment_records, segment_bytes) = match last_segment {
            Some((index, false)) => {
                let path = segment_path(dir, index, false);
                // A valid prefix shorter than the magic means the segment
                // file was created but its header never hit the disk —
                // recreate it rather than appending after garbage.
                let writer = if valid_bytes < MAGIC.len() as u64 {
                    JournalWriter::create(&path)?
                } else {
                    JournalWriter::append_at(&path, valid_bytes)?
                };
                let bytes = valid_bytes.saturating_sub(MAGIC.len() as u64);
                (index, writer, records_in_last, bytes)
            }
            Some((index, true)) => {
                let writer = JournalWriter::create(&segment_path(dir, index + 1, false))?;
                sync_dir(dir)?;
                (index + 1, writer, 0, 0)
            }
            None => {
                // Only snapshots survive: continue the chain after the
                // newest one (`total_records` already counts its records).
                let index = scan_dir(dir)?.snapshots.last().map_or(0, |&s| s + 1);
                let writer = JournalWriter::create(&segment_path(dir, index, false))?;
                sync_dir(dir)?;
                (index, writer, 0, 0)
            }
        };
        Ok(SegmentedJournal {
            dir: dir.to_path_buf(),
            policy,
            index,
            writer,
            segment_records,
            segment_bytes,
            total_records,
        })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Index of the active segment.
    pub fn active_index(&self) -> u64 {
        self.index
    }

    /// Records across every segment ever written (the journal's logical
    /// length).
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Forces an explicit flush of the active segment.
    pub fn sync(&self) -> Result<(), JournalError> {
        self.writer.sync()
    }

    /// Appends one record durably to the active segment.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        let frame_bytes = self.writer.append(record)?;
        self.segment_records += 1;
        self.segment_bytes += frame_bytes;
        self.total_records += 1;
        Ok(())
    }

    /// `true` once the active segment exceeds the rotation policy.  The
    /// caller checks this *after* the appended record has been applied to
    /// the scheduler, so a snapshot taken at rotation covers exactly the
    /// sealed prefix.
    pub fn should_rotate(&self) -> bool {
        self.segment_records >= self.policy.max_records
            || self.segment_bytes >= self.policy.max_bytes
    }

    /// Seals the active segment and opens the next one.
    ///
    /// The sequence — each step durable before the next — is
    ///
    /// 1. fsync the active segment, rename `.open` → `.strj` (atomic),
    ///    fsync the directory: the seal either happened or it did not;
    /// 2. if `snapshot` bytes were supplied: write them to
    ///    `snapshot-NNNNNN.tmp`, fsync, rename to `.strsnp`, fsync the
    ///    directory — a crash mid-write leaves only an ignored `.tmp`;
    /// 3. garbage-collect: keep the newest `retain_snapshots` snapshots,
    ///    delete older ones, and delete sealed segments at or below the
    ///    oldest *kept* snapshot (their records are all covered by it);
    /// 4. create the next active segment.
    ///
    /// `chaos` aborts the process at the named point — the deterministic
    /// stand-in for a crash landing inside the rotation window.
    pub fn rotate(
        &mut self,
        snapshot: Option<&[u8]>,
        retain_snapshots: usize,
        chaos: Option<RotationCrashPoint>,
    ) -> Result<RotationOutcome, JournalError> {
        let sealed = self.index;
        let open_path = segment_path(&self.dir, sealed, false);
        let sealed_path = segment_path(&self.dir, sealed, true);
        self.writer.sync()?;
        std::fs::rename(&open_path, &sealed_path).map_err(|e| io_err("seal", &open_path, e))?;
        sync_dir(&self.dir)?;
        if chaos == Some(RotationCrashPoint::AfterSeal) {
            std::process::abort();
        }

        let snapshot_written = if let Some(bytes) = snapshot {
            let tmp = snapshot_tmp_path(&self.dir, sealed);
            let publish = snapshot_path(&self.dir, sealed);
            let mut file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)
                .map_err(|e| io_err("snapshot-write", &tmp, e))?;
            file.write_all(bytes)
                .map_err(|e| io_err("snapshot-write", &tmp, e))?;
            file.sync_data()
                .map_err(|e| io_err("snapshot-sync", &tmp, e))?;
            drop(file);
            if chaos == Some(RotationCrashPoint::AfterSnapshotTemp) {
                std::process::abort();
            }
            std::fs::rename(&tmp, &publish).map_err(|e| io_err("snapshot-publish", &tmp, e))?;
            sync_dir(&self.dir)?;
            if chaos == Some(RotationCrashPoint::AfterSnapshotRename) {
                std::process::abort();
            }
            true
        } else {
            false
        };

        let (gc_segments, gc_snapshots) = gc(&self.dir, retain_snapshots)?;

        self.index = sealed + 1;
        self.writer = JournalWriter::create(&segment_path(&self.dir, self.index, false))?;
        sync_dir(&self.dir)?;
        self.segment_records = 0;
        self.segment_bytes = 0;
        Ok(RotationOutcome {
            sealed,
            snapshot_written,
            gc_segments,
            gc_snapshots,
        })
    }
}

/// Garbage-collects a journal directory: keeps the newest
/// `retain_snapshots` snapshots, deletes older snapshots, and deletes sealed
/// segments at or below the oldest kept snapshot (every record they hold is
/// covered by it).  With no snapshot on disk nothing is deleted.  Returns
/// `(segments deleted, snapshots deleted)`.
pub fn gc(dir: &Path, retain_snapshots: usize) -> Result<(usize, usize), JournalError> {
    let scan = scan_dir(dir)?;
    if scan.snapshots.is_empty() {
        return Ok((0, 0));
    }
    let retain = retain_snapshots.max(1);
    let kept_from = scan.snapshots.len().saturating_sub(retain);
    let oldest_kept = scan.snapshots[kept_from];
    let mut gc_snapshots = 0;
    for &upto in &scan.snapshots[..kept_from] {
        let p = snapshot_path(dir, upto);
        std::fs::remove_file(&p).map_err(|e| io_err("gc", &p, e))?;
        gc_snapshots += 1;
    }
    let mut gc_segments = 0;
    for &index in scan.sealed.iter().filter(|&&s| s <= oldest_kept) {
        let p = segment_path(dir, index, true);
        std::fs::remove_file(&p).map_err(|e| io_err("gc", &p, e))?;
        gc_segments += 1;
    }
    Ok((gc_segments, gc_snapshots))
}

/// Current wall clock in microseconds since the Unix epoch (0 if the clock
/// reads before the epoch).  Stamped into records for debugging; replay
/// never reads it.
pub fn wall_clock_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Copies journal directory `src` to `dst` with every wall-clock stamp in
/// every segment zeroed — the tool behind the "timestamps never influence
/// replay" pin.  Snapshot files carry no wall clocks and are copied
/// byte-identical.  Fails on a torn segment (the caller should recover
/// first).
pub fn rewrite_zeroed(src: &Path, dst: &Path) -> Result<usize, JournalError> {
    let scan = scan_dir(src)?;
    std::fs::create_dir_all(dst).map_err(|e| io_err("rewrite-zeroed", dst, e))?;
    let mut total = 0;
    for &index in &scan.chain() {
        let sealed = scan.sealed.contains(&index);
        let segment = segment_path(src, index, sealed);
        let (records, tail) = load(&segment)?;
        if tail != TailStatus::Clean {
            return Err(JournalError::Io {
                op: "rewrite-zeroed",
                path: segment,
                message: "source segment has a torn tail; recover it first".into(),
            });
        }
        let mut writer = JournalWriter::create(&segment_path(dst, index, sealed))?;
        for record in &records {
            writer.append(&JournalRecord {
                wall_micros: 0,
                event: record.event,
            })?;
        }
        total += records.len();
    }
    for &upto in &scan.snapshots {
        std::fs::copy(snapshot_path(src, upto), snapshot_path(dst, upto))
            .map_err(|e| io_err("rewrite-zeroed", &snapshot_path(src, upto), e))?;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{JournalEvent, SolveTier};

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "stretch-serve-journal-{name}-{}",
            std::process::id()
        ));
        p
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord {
                wall_micros: 11,
                event: JournalEvent::Submitted {
                    seq: 0,
                    release: 0.0,
                    work: 120.0,
                    databank: 0,
                },
            },
            JournalRecord {
                wall_micros: 22,
                event: JournalEvent::Decision {
                    tier: SolveTier::Monge,
                },
            },
            JournalRecord {
                wall_micros: 33,
                event: JournalEvent::Submitted {
                    seq: 1,
                    release: 2.5,
                    work: 60.0,
                    databank: 1,
                },
            },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard zlib/PNG check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_then_load_round_trips() {
        let path = tmp("roundtrip");
        let mut w = JournalWriter::create(&path).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        let (records, tail) = load(&path).unwrap();
        assert_eq!(records, sample_records());
        assert_eq!(tail, TailStatus::Clean);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_yields_valid_prefix_and_torn_tail() {
        let path = tmp("torn");
        let mut w = JournalWriter::create(&path).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        // Chop mid-way through the last record's payload.
        let cut = bytes.len() - 5;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let (records, tail) = load(&path).unwrap();
        assert_eq!(records, sample_records()[..2]);
        match tail {
            TailStatus::Torn { valid_bytes, .. } => {
                // Truncate + append must recover a writable journal.
                let mut w = JournalWriter::append_at(&path, valid_bytes).unwrap();
                w.append(&sample_records()[2]).unwrap();
                let (records, tail) = load(&path).unwrap();
                assert_eq!(records, sample_records());
                assert_eq!(tail, TailStatus::Clean);
            }
            TailStatus::Clean => panic!("expected torn tail"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_byte_is_a_checksum_mismatch_not_a_panic() {
        let path = tmp("corrupt");
        let mut w = JournalWriter::create(&path).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let flip = bytes.len() - 3;
        bytes[flip] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (records, tail) = load(&path).unwrap();
        assert_eq!(records, sample_records()[..2]);
        assert!(matches!(
            tail,
            TailStatus::Torn {
                reason: TornReason::ChecksumMismatch,
                ..
            }
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_journal_file_is_a_typed_error() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"not a journal at all").unwrap();
        assert!(matches!(load(&path), Err(JournalError::BadMagic { .. })));
        std::fs::write(&path, b"STR").unwrap();
        assert!(matches!(load(&path), Err(JournalError::BadMagic { .. })));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rewrite_zeroed_strips_wall_clock_only() {
        let src = tmp("zero-src");
        let dst = tmp("zero-dst");
        let _ = std::fs::remove_dir_all(&src);
        let _ = std::fs::remove_dir_all(&dst);
        let mut journal = SegmentedJournal::create(
            &src,
            RotationPolicy {
                max_records: 2,
                max_bytes: u64::MAX,
            },
        )
        .unwrap();
        for r in sample_records() {
            journal.append(&r).unwrap();
            if journal.should_rotate() {
                journal.rotate(None, usize::MAX, None).unwrap();
            }
        }
        assert_eq!(rewrite_zeroed(&src, &dst).unwrap(), 3);
        let scan = scan_dir(&dst).unwrap();
        assert_eq!(scan.sealed, vec![0]);
        assert_eq!(scan.open, Some(1));
        let mut zeroed = Vec::new();
        for &index in &scan.chain() {
            let sealed = scan.sealed.contains(&index);
            let (records, tail) = load(&segment_path(&dst, index, sealed)).unwrap();
            assert_eq!(tail, TailStatus::Clean);
            zeroed.extend(records);
        }
        for (zeroed, original) in zeroed.iter().zip(sample_records()) {
            assert_eq!(zeroed.wall_micros, 0);
            assert_eq!(zeroed.event, original.event);
        }
        std::fs::remove_dir_all(&src).unwrap();
        std::fs::remove_dir_all(&dst).unwrap();
    }

    #[test]
    fn rotation_seals_segments_and_scan_orders_the_chain() {
        let dir = tmp("rotate");
        let _ = std::fs::remove_dir_all(&dir);
        let mut journal = SegmentedJournal::create(
            &dir,
            RotationPolicy {
                max_records: 1,
                max_bytes: u64::MAX,
            },
        )
        .unwrap();
        for (i, r) in sample_records().iter().enumerate() {
            journal.append(r).unwrap();
            assert!(journal.should_rotate());
            let outcome = journal.rotate(None, usize::MAX, None).unwrap();
            assert_eq!(outcome.sealed, i as u64);
            assert!(!outcome.snapshot_written);
        }
        assert_eq!(journal.total_records(), 3);
        assert_eq!(journal.active_index(), 3);
        let scan = scan_dir(&dir).unwrap();
        assert_eq!(scan.sealed, vec![0, 1, 2]);
        assert_eq!(scan.open, Some(3));
        assert_eq!(scan.chain(), vec![0, 1, 2, 3]);
        assert!(scan.snapshots.is_empty());
        // Each sealed segment holds exactly one record, torn-free.
        for &index in &scan.sealed {
            let (records, tail) = load(&segment_path(&dir, index, true)).unwrap();
            assert_eq!(records.len(), 1);
            assert_eq!(tail, TailStatus::Clean);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_keeps_newest_snapshots_and_covered_suffix_segments() {
        let dir = tmp("gc");
        let _ = std::fs::remove_dir_all(&dir);
        let mut journal = SegmentedJournal::create(
            &dir,
            RotationPolicy {
                max_records: 1,
                max_bytes: u64::MAX,
            },
        )
        .unwrap();
        let records = sample_records();
        // Three rotations, each publishing a snapshot, retaining 2.  Every
        // rotation deletes the sealed segments at or below the oldest *kept*
        // snapshot (their records are covered by it), so the just-sealed
        // segment dies immediately while two snapshots cover it; the third
        // rotation additionally expires snapshot 0.
        for (i, r) in records.iter().enumerate() {
            journal.append(r).unwrap();
            let outcome = journal.rotate(Some(b"snapshot-bytes"), 2, None).unwrap();
            assert!(outcome.snapshot_written);
            match i {
                0 => {
                    // Snapshot 0 covers segment 0: gone at once.
                    assert_eq!((outcome.gc_segments, outcome.gc_snapshots), (1, 0));
                }
                1 => {
                    // Oldest kept is still snapshot 0; nothing new to drop.
                    assert_eq!((outcome.gc_segments, outcome.gc_snapshots), (0, 0));
                }
                _ => {
                    // Snapshot 0 expires; segment 1 is covered by the new
                    // oldest kept (snapshot 1).
                    assert_eq!((outcome.gc_segments, outcome.gc_snapshots), (1, 1));
                }
            }
        }
        let scan = scan_dir(&dir).unwrap();
        assert_eq!(scan.snapshots, vec![1, 2]);
        assert_eq!(scan.sealed, vec![2]);
        assert_eq!(scan.open, Some(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_rejects_contradictory_layouts() {
        let dir = tmp("badlayout");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(segment_path(&dir, 0, false), MAGIC).unwrap();
        std::fs::write(segment_path(&dir, 1, false), MAGIC).unwrap();
        assert!(matches!(
            scan_dir(&dir),
            Err(JournalError::BadLayout { .. })
        ));
        std::fs::remove_file(segment_path(&dir, 1, false)).unwrap();
        std::fs::write(segment_path(&dir, 0, true), MAGIC).unwrap();
        assert!(matches!(
            scan_dir(&dir),
            Err(JournalError::BadLayout { .. })
        ));
        // An active segment older than a sealed one is equally impossible.
        std::fs::remove_file(segment_path(&dir, 0, false)).unwrap();
        std::fs::write(segment_path(&dir, 1, true), MAGIC).unwrap();
        std::fs::write(segment_path(&dir, 0, false), MAGIC).unwrap();
        assert!(matches!(
            scan_dir(&dir),
            Err(JournalError::BadLayout { .. })
        ));
        // Abandoned `.tmp` snapshots and foreign files are ignored.
        std::fs::remove_file(segment_path(&dir, 0, false)).unwrap();
        std::fs::write(dir.join("snapshot-000001.tmp"), b"half-written").unwrap();
        std::fs::write(dir.join("README"), b"not a journal artefact").unwrap();
        let scan = scan_dir(&dir).unwrap();
        assert_eq!(scan.sealed, vec![0, 1]);
        assert_eq!(scan.open, None);
        assert!(scan.snapshots.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
