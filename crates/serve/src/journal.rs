//! The durable event journal: an append-only, length-prefixed and
//! checksummed record log, written *before* the scheduler consumes each
//! event (write-ahead).
//!
//! File layout:
//!
//! ```text
//! [ 8-byte magic "STRJRN01" ]
//! [ u32 payload_len | u32 crc32(payload) | payload ]*
//! ```
//!
//! All integers little-endian.  The journal is the *only* source of truth:
//! scheduler state is a pure function of the record sequence, so recovery is
//! replay.  A crash can leave a torn tail — a partial header, a partial
//! payload, or a payload whose checksum no longer matches; [`load`] stops at
//! the first such record and reports where the valid prefix ends, and
//! [`JournalWriter::append_at`] truncates the file there before appending
//! again.  Torn tails are *data loss of at most the in-flight record*, never
//! corruption of the prefix.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::event::{decode_payload, encode_payload, JournalRecord, PayloadError};

/// Magic bytes opening every journal file (format version 01).
pub const MAGIC: [u8; 8] = *b"STRJRN01";

/// Frame header size: `u32` length + `u32` checksum.
pub const RECORD_HEADER_LEN: usize = 8;

/// Sanity cap on a single payload: anything larger is torn/garbage, not a
/// record this crate ever writes.
pub const MAX_PAYLOAD_LEN: u32 = 1 << 20;

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the ubiquitous
/// `crc32` of zlib/PNG.  Bitwise implementation: journal records are tens of
/// bytes, a lookup table would be noise.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// I/O or format failure of the journal itself (as opposed to a torn tail,
/// which is an expected crash artefact reported via [`TailStatus`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalError {
    /// An OS-level I/O operation failed.
    Io {
        /// What the journal was doing (`"open"`, `"append"`, …).
        op: &'static str,
        /// The journal path.
        path: PathBuf,
        /// The rendered OS error.
        message: String,
    },
    /// The file does not start with [`MAGIC`]: it is not a journal (or the
    /// creating process died before the header hit the disk).  Refusing to
    /// guess beats replaying garbage.
    BadMagic {
        /// The offending path.
        path: PathBuf,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { op, path, message } => {
                write!(f, "journal {op} failed on {}: {message}", path.display())
            }
            JournalError::BadMagic { path } => {
                write!(f, "{} is not a journal (bad magic)", path.display())
            }
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(op: &'static str, path: &Path, e: std::io::Error) -> JournalError {
    JournalError::Io {
        op,
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// Why the tail of a journal was discarded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TornReason {
    /// Fewer than [`RECORD_HEADER_LEN`] bytes remained.
    TruncatedHeader,
    /// The length prefix exceeds [`MAX_PAYLOAD_LEN`].
    OversizedLength,
    /// The payload is shorter than its length prefix.
    TruncatedPayload,
    /// The payload checksum does not match.
    ChecksumMismatch,
    /// The checksum matched but the payload does not decode (only reachable
    /// through a checksum collision on corrupted bytes).
    MalformedPayload(PayloadError),
}

impl std::fmt::Display for TornReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TornReason::TruncatedHeader => write!(f, "truncated record header"),
            TornReason::OversizedLength => write!(f, "oversized record length"),
            TornReason::TruncatedPayload => write!(f, "truncated record payload"),
            TornReason::ChecksumMismatch => write!(f, "record checksum mismatch"),
            TornReason::MalformedPayload(e) => write!(f, "malformed record payload: {e}"),
        }
    }
}

/// State of the journal tail after [`load`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TailStatus {
    /// Every byte of the file parsed as a valid record.
    Clean,
    /// The file ends in a torn record starting at `valid_bytes`.
    Torn {
        /// Length of the valid prefix (magic + whole records); the file
        /// should be truncated here before appending.
        valid_bytes: u64,
        /// What was wrong with the first invalid record.
        reason: TornReason,
    },
}

impl TailStatus {
    /// Length of the valid prefix in bytes (`file length` when clean is
    /// resolved by the caller, so clean returns `None`).
    pub fn torn_at(&self) -> Option<u64> {
        match self {
            TailStatus::Clean => None,
            TailStatus::Torn { valid_bytes, .. } => Some(*valid_bytes),
        }
    }
}

/// Parses journal bytes (already read from disk) into records plus the tail
/// status.  Pure function of the bytes — the testable core of [`load`].
pub fn parse(bytes: &[u8], path: &Path) -> Result<(Vec<JournalRecord>, TailStatus), JournalError> {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return Err(JournalError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let mut records = Vec::new();
    let mut offset = MAGIC.len();
    let torn = |offset: usize, reason: TornReason| TailStatus::Torn {
        valid_bytes: offset as u64,
        reason,
    };
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            return Ok((records, TailStatus::Clean));
        }
        if remaining < RECORD_HEADER_LEN {
            return Ok((records, torn(offset, TornReason::TruncatedHeader)));
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        if len > MAX_PAYLOAD_LEN {
            return Ok((records, torn(offset, TornReason::OversizedLength)));
        }
        let len = len as usize;
        if remaining - RECORD_HEADER_LEN < len {
            return Ok((records, torn(offset, TornReason::TruncatedPayload)));
        }
        let payload = &bytes[offset + RECORD_HEADER_LEN..offset + RECORD_HEADER_LEN + len];
        if crc32(payload) != crc {
            return Ok((records, torn(offset, TornReason::ChecksumMismatch)));
        }
        match decode_payload(payload) {
            Ok(record) => records.push(record),
            Err(e) => return Ok((records, torn(offset, TornReason::MalformedPayload(e)))),
        }
        offset += RECORD_HEADER_LEN + len;
    }
}

/// Reads a journal file and parses its valid prefix.
///
/// A torn tail is *not* an error: the records of the valid prefix are
/// returned together with [`TailStatus::Torn`] telling the caller where to
/// truncate.  Errors are reserved for I/O failures and non-journal files.
pub fn load(path: &Path) -> Result<(Vec<JournalRecord>, TailStatus), JournalError> {
    let mut file = File::open(path).map_err(|e| io_err("open", path, e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| io_err("read", path, e))?;
    parse(&bytes, path)
}

/// Append handle on a journal file.
///
/// Every append writes the full frame with a single `write_all` and then
/// `sync_data`s, so the record is durable before the scheduler consumes the
/// event (the write-ahead contract).
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
}

impl JournalWriter {
    /// Creates (or truncates) a fresh journal at `path` and writes the magic
    /// header durably.
    pub fn create(path: &Path) -> Result<Self, JournalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err("create", path, e))?;
        file.write_all(&MAGIC)
            .map_err(|e| io_err("write-magic", path, e))?;
        file.sync_data().map_err(|e| io_err("sync", path, e))?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Reopens an existing journal for appending, first truncating it to
    /// `valid_bytes` (the prefix [`load`] validated) so a torn tail can never
    /// shadow future appends.
    pub fn append_at(path: &Path, valid_bytes: u64) -> Result<Self, JournalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err("open", path, e))?;
        file.set_len(valid_bytes)
            .map_err(|e| io_err("truncate", path, e))?;
        file.sync_data().map_err(|e| io_err("sync", path, e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek", path, e))?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Appends one record durably (frame write + `sync_data`).
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        let payload = encode_payload(record);
        let mut frame = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("append", &self.path, e))?;
        self.file
            .sync_data()
            .map_err(|e| io_err("sync", &self.path, e))
    }

    /// Forces an explicit flush (appends already sync; this is for
    /// close-time belt and braces).
    pub fn sync(&self) -> Result<(), JournalError> {
        self.file
            .sync_data()
            .map_err(|e| io_err("sync", &self.path, e))
    }

    /// The journal path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Current wall clock in microseconds since the Unix epoch (0 if the clock
/// reads before the epoch).  Stamped into records for debugging; replay
/// never reads it.
pub fn wall_clock_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Copies `src` to `dst` with every wall-clock stamp zeroed — the tool behind
/// the "timestamps never influence replay" pin.  Fails on a torn source (the
/// caller should recover first).
pub fn rewrite_zeroed(src: &Path, dst: &Path) -> Result<usize, JournalError> {
    let (records, tail) = load(src)?;
    if tail != TailStatus::Clean {
        return Err(JournalError::Io {
            op: "rewrite-zeroed",
            path: src.to_path_buf(),
            message: "source journal has a torn tail; recover it first".into(),
        });
    }
    let mut writer = JournalWriter::create(dst)?;
    for record in &records {
        writer.append(&JournalRecord {
            wall_micros: 0,
            event: record.event,
        })?;
    }
    Ok(records.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{JournalEvent, SolveTier};

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "stretch-serve-journal-{name}-{}",
            std::process::id()
        ));
        p
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord {
                wall_micros: 11,
                event: JournalEvent::Submitted {
                    seq: 0,
                    release: 0.0,
                    work: 120.0,
                    databank: 0,
                },
            },
            JournalRecord {
                wall_micros: 22,
                event: JournalEvent::Decision {
                    tier: SolveTier::Monge,
                },
            },
            JournalRecord {
                wall_micros: 33,
                event: JournalEvent::Submitted {
                    seq: 1,
                    release: 2.5,
                    work: 60.0,
                    databank: 1,
                },
            },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard zlib/PNG check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_then_load_round_trips() {
        let path = tmp("roundtrip");
        let mut w = JournalWriter::create(&path).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        let (records, tail) = load(&path).unwrap();
        assert_eq!(records, sample_records());
        assert_eq!(tail, TailStatus::Clean);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_yields_valid_prefix_and_torn_tail() {
        let path = tmp("torn");
        let mut w = JournalWriter::create(&path).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        // Chop mid-way through the last record's payload.
        let cut = bytes.len() - 5;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let (records, tail) = load(&path).unwrap();
        assert_eq!(records, sample_records()[..2]);
        match tail {
            TailStatus::Torn { valid_bytes, .. } => {
                // Truncate + append must recover a writable journal.
                let mut w = JournalWriter::append_at(&path, valid_bytes).unwrap();
                w.append(&sample_records()[2]).unwrap();
                let (records, tail) = load(&path).unwrap();
                assert_eq!(records, sample_records());
                assert_eq!(tail, TailStatus::Clean);
            }
            TailStatus::Clean => panic!("expected torn tail"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_byte_is_a_checksum_mismatch_not_a_panic() {
        let path = tmp("corrupt");
        let mut w = JournalWriter::create(&path).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let flip = bytes.len() - 3;
        bytes[flip] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (records, tail) = load(&path).unwrap();
        assert_eq!(records, sample_records()[..2]);
        assert!(matches!(
            tail,
            TailStatus::Torn {
                reason: TornReason::ChecksumMismatch,
                ..
            }
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_journal_file_is_a_typed_error() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"not a journal at all").unwrap();
        assert!(matches!(load(&path), Err(JournalError::BadMagic { .. })));
        std::fs::write(&path, b"STR").unwrap();
        assert!(matches!(load(&path), Err(JournalError::BadMagic { .. })));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rewrite_zeroed_strips_wall_clock_only() {
        let src = tmp("zero-src");
        let dst = tmp("zero-dst");
        let mut w = JournalWriter::create(&src).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        assert_eq!(rewrite_zeroed(&src, &dst).unwrap(), 3);
        let (records, tail) = load(&dst).unwrap();
        assert_eq!(tail, TailStatus::Clean);
        for (zeroed, original) in records.iter().zip(sample_records()) {
            assert_eq!(zeroed.wall_micros, 0);
            assert_eq!(zeroed.event, original.event);
        }
        std::fs::remove_file(&src).unwrap();
        std::fs::remove_file(&dst).unwrap();
    }
}
