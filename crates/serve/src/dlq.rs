//! Bounded dead-letter queue.
//!
//! Rejected submissions are data, not crashes: each one is parked here with
//! its typed [`RejectReason`] so operators can inspect (and possibly replay)
//! them.  The queue is bounded — under a flood of garbage the *oldest*
//! letters are dropped and counted, so the DLQ itself can never exhaust
//! memory.

use std::collections::VecDeque;

use crate::event::{RejectReason, Submission};

/// One dead letter: the rejected submission plus why it was rejected.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeadLetter {
    /// The submission as received.
    pub submission: Submission,
    /// Why it was rejected.
    pub reason: RejectReason,
    /// Wall-clock stamp (microseconds since epoch) at rejection time.
    /// Debugging only, like every wall-clock in this crate.
    pub wall_micros: u64,
}

/// Bounded FIFO of dead letters.
#[derive(Clone, Debug)]
pub struct DeadLetterQueue {
    letters: VecDeque<DeadLetter>,
    capacity: usize,
    total: u64,
    dropped: u64,
}

impl DeadLetterQueue {
    /// A queue retaining at most `capacity` letters (capacity 0 counts but
    /// retains nothing).
    pub fn new(capacity: usize) -> Self {
        DeadLetterQueue {
            letters: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            total: 0,
            dropped: 0,
        }
    }

    /// Parks a rejected submission, evicting oldest letters until the queue
    /// fits its bound.  The eviction loop uses `>=`, not `==`: if the queue
    /// is ever *over* capacity (a shrink via [`Self::set_capacity`]), a
    /// strict-equality check would never fire again and the bound would be
    /// exceeded forever.
    pub fn push(&mut self, letter: DeadLetter) {
        self.total += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        while self.letters.len() >= self.capacity {
            self.letters.pop_front();
            self.dropped += 1;
        }
        self.letters.push_back(letter);
    }

    /// Changes the retention bound.  Letters beyond a shrunken bound are
    /// *not* evicted eagerly — they age out on the next pushes — which is
    /// exactly the state the `>=` eviction in [`Self::push`] exists to
    /// handle.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    /// Letters currently retained, oldest first.
    pub fn letters(&self) -> impl Iterator<Item = &DeadLetter> {
        self.letters.iter()
    }

    /// Number of letters currently retained.
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// `true` when no letter is retained.
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }

    /// Total letters ever pushed (retained + dropped).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Letters evicted because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn letter(databank: usize) -> DeadLetter {
        DeadLetter {
            submission: Submission::new(0.0, 10.0, databank),
            reason: RejectReason::UnknownDatabank {
                databank,
                num_databanks: 2,
            },
            wall_micros: 0,
        }
    }

    #[test]
    fn bounded_queue_evicts_oldest_and_counts_drops() {
        let mut dlq = DeadLetterQueue::new(2);
        for d in 0..5 {
            dlq.push(letter(d + 10));
        }
        assert_eq!(dlq.len(), 2);
        assert_eq!(dlq.total(), 5);
        assert_eq!(dlq.dropped(), 3);
        let kept: Vec<usize> = dlq.letters().map(|l| l.submission.databank).collect();
        assert_eq!(kept, vec![13, 14]);
    }

    #[test]
    fn over_capacity_queue_recovers_its_bound() {
        // Regression: eviction used strict `==` against the capacity, so a
        // queue sitting *above* its bound (capacity shrunk after letters
        // accumulated) never evicted again and grew without limit.
        let mut dlq = DeadLetterQueue::new(4);
        for d in 0..4 {
            dlq.push(letter(d));
        }
        assert_eq!(dlq.len(), 4);
        dlq.set_capacity(2);
        // With `==` this push would have seen len 4 != 2 and grown to 5 —
        // and every later push would grow it further.
        dlq.push(letter(90));
        assert_eq!(dlq.len(), 2, "push must restore the shrunken bound");
        dlq.push(letter(91));
        assert_eq!(dlq.len(), 2);
        let kept: Vec<usize> = dlq.letters().map(|l| l.submission.databank).collect();
        assert_eq!(kept, vec![90, 91], "oldest letters evicted first");
        assert_eq!(dlq.total(), 6);
        assert_eq!(dlq.dropped(), 4);
    }

    #[test]
    fn zero_capacity_counts_without_retaining() {
        let mut dlq = DeadLetterQueue::new(0);
        dlq.push(letter(3));
        assert!(dlq.is_empty());
        assert_eq!(dlq.total(), 1);
        assert_eq!(dlq.dropped(), 1);
    }
}
