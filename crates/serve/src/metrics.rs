//! Live service counters.
//!
//! Metrics are observational only: they are *not* part of the replayed
//! state, do not enter the state digest, and recovery rebuilds only the
//! replay-derived ones (`replayed_records`, decision tallies).  Solve-latency
//! quantiles reuse the streaming [`P2Quantile`] sketch from
//! `stretch-metrics` — constant memory, no sample buffer.

use stretch_metrics::{P2Quantile, StreamingStats};

use crate::event::SolveTier;

/// Counter block of a running [`crate::StretchServe`].
#[derive(Clone, Debug)]
pub struct ServeMetrics {
    /// Submissions offered to the service (accepted + rejected).
    pub submitted: u64,
    /// Submissions validated, journaled and staged.
    pub accepted: u64,
    /// Submissions rejected into the dead-letter queue.
    pub dead_lettered: u64,
    /// Scheduling decisions taken (all tiers).
    pub decisions: u64,
    /// Decisions per tier, indexed by [`SolveTier::code`].
    pub decisions_by_tier: [u64; 4],
    /// Ladder rungs skipped past (solve failure, chaos injection or budget
    /// timeout on a non-final tier).
    pub fallbacks: u64,
    /// Decisions whose winning solve still exceeded its budget.
    pub budget_busts: u64,
    /// Times the circuit breaker tripped open.
    pub breaker_opens: u64,
    /// Decisions shed to EDF while the breaker was open.
    pub shed_decisions: u64,
    /// Journal records replayed during recovery.
    pub replayed_records: u64,
    /// Bytes of torn tail truncated during recovery.
    pub torn_bytes_truncated: u64,
    solve_seconds: StreamingStats,
    solve_p50: P2Quantile,
    solve_p99: P2Quantile,
}

impl ServeMetrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        ServeMetrics {
            submitted: 0,
            accepted: 0,
            dead_lettered: 0,
            decisions: 0,
            decisions_by_tier: [0; 4],
            fallbacks: 0,
            budget_busts: 0,
            breaker_opens: 0,
            shed_decisions: 0,
            replayed_records: 0,
            torn_bytes_truncated: 0,
            solve_seconds: StreamingStats::new(),
            solve_p50: P2Quantile::new(0.5),
            solve_p99: P2Quantile::new(0.99),
        }
    }

    /// Folds one decision into the tallies.
    pub fn observe_decision(&mut self, tier: SolveTier, solve_seconds: f64) {
        self.decisions += 1;
        self.decisions_by_tier[tier.code() as usize] += 1;
        self.solve_seconds.observe(solve_seconds);
        self.solve_p50.observe(solve_seconds);
        self.solve_p99.observe(solve_seconds);
    }

    /// Median solve latency (seconds), if any decision was observed.
    pub fn solve_p50(&self) -> Option<f64> {
        self.solve_p50.value()
    }

    /// 99th-percentile solve latency (seconds), if any decision was observed.
    pub fn solve_p99(&self) -> Option<f64> {
        self.solve_p99.value()
    }

    /// Number of latency samples folded in.
    pub fn solve_samples(&self) -> usize {
        self.solve_p50.count()
    }

    /// One-line operator summary (for logs and the `repro_serve` bin).
    pub fn render(&self, queue_depth: usize) -> String {
        format!(
            "submitted={} accepted={} dead_lettered={} decisions={} \
             tiers[monge/simplex/pd/edf]={}/{}/{}/{} fallbacks={} busts={} \
             breaker_opens={} shed={} replayed={} queue_depth={} \
             solve_p50={} solve_p99={}",
            self.submitted,
            self.accepted,
            self.dead_lettered,
            self.decisions,
            self.decisions_by_tier[0],
            self.decisions_by_tier[1],
            self.decisions_by_tier[2],
            self.decisions_by_tier[3],
            self.fallbacks,
            self.budget_busts,
            self.breaker_opens,
            self.shed_decisions,
            self.replayed_records,
            queue_depth,
            self.solve_p50()
                .map_or_else(|| "n/a".into(), |v| format!("{v:.6}s")),
            self.solve_p99()
                .map_or_else(|| "n/a".into(), |v| format!("{v:.6}s")),
        )
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_tallies_and_quantiles_accumulate() {
        let mut m = ServeMetrics::new();
        for i in 0..100 {
            let tier = if i % 10 == 0 {
                SolveTier::Edf
            } else {
                SolveTier::Monge
            };
            m.observe_decision(tier, f64::from(i) * 1e-3);
        }
        assert_eq!(m.decisions, 100);
        assert_eq!(m.decisions_by_tier[SolveTier::Monge.code() as usize], 90);
        assert_eq!(m.decisions_by_tier[SolveTier::Edf.code() as usize], 10);
        let p50 = m.solve_p50().unwrap();
        let p99 = m.solve_p99().unwrap();
        assert!(p50 > 0.02 && p50 < 0.08, "p50 {p50}");
        assert!(p99 > p50, "p99 {p99} <= p50 {p50}");
        assert!(m.render(3).contains("decisions=100"));
    }
}
