//! Bounded-replay recovery contract of the rotated journal.
//!
//! * **Suffix-only replay**: after a stream long enough to seal several
//!   segments and publish snapshots, recovery restores the newest snapshot
//!   and replays only the records past it — asserted through the
//!   [`RecoveryReport`] record counts — yet reaches state bit-identical to
//!   the uninterrupted run, on every backend, warm and cold.
//! * **Snapshot corruption**: flipping *any* byte of the newest snapshot
//!   demotes recovery one rung (typed rejection, older snapshot wins) with
//!   no state divergence; a wrong embedded digest is equally rejected.
//! * **Mid-rotation crash states**: directory surgery reproduces each crash
//!   window of the seal → snapshot → reopen sequence; recovery diffs clean
//!   from every one of them.
//! * **Unrecoverable**: when every snapshot is rejected and segment 0 has
//!   been garbage-collected, recovery fails with the full typed rejection
//!   ladder instead of fabricating state.

use std::path::{Path, PathBuf};

use stretch_core::refstream::reference_instance;
use stretch_core::{BackendKind, SolverConfig};
use stretch_serve::journal::{self, RotationPolicy};
use stretch_serve::{
    snapshot, RecoverError, RecoveryReport, ServeConfig, SnapshotRejectReason, StretchServe,
    Submission,
};
use stretch_workload::Instance;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "stretch-serve-rotation-{name}-{}",
        std::process::id()
    ));
    p
}

/// A config rotating every `max_records` records, snapshotting every
/// `snapshot_every`th seal, retaining 2 snapshots.
fn rotated_config(solver: SolverConfig, max_records: u64, snapshot_every: u64) -> ServeConfig {
    let mut config = ServeConfig::with_solver(solver);
    config.solve_budget = std::time::Duration::from_secs(60);
    config.rotation = RotationPolicy {
        max_records,
        max_bytes: u64::MAX,
    };
    config.snapshot_every = snapshot_every;
    config.snapshot_retain = 2;
    config
}

/// Streams every job of `instance` through a fresh service *without*
/// draining it — the pre-crash half of each scenario — and returns the
/// service for digest capture before the simulated crash (drop).
fn stream_jobs(path: &Path, instance: &Instance, config: ServeConfig) -> StretchServe {
    let _ = std::fs::remove_dir_all(path);
    let mut serve = StretchServe::create(path, instance.platform.clone(), config).unwrap();
    for job in &instance.jobs {
        let outcome = serve
            .submit(Submission::new(job.release, job.work, job.databank))
            .unwrap();
        assert!(outcome.is_accepted(), "rejected: {outcome:?}");
    }
    serve
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Copies a (flat) journal directory byte-for-byte.
fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// The internal consistency every successful report must satisfy.
fn assert_report_consistent(report: &RecoveryReport) {
    assert_eq!(
        report.records,
        report.snapshot_records as usize + report.replayed_records,
        "record accounting does not add up: {report:?}"
    );
    if report.snapshot.is_none() {
        assert_eq!(report.snapshot_records, 0);
    }
}

#[test]
fn suffix_only_replay_matches_uninterrupted_run_on_every_backend() {
    let instance = reference_instance(3, 3, 20, 3);
    for backend in BackendKind::ALL {
        for warm_start in [true, false] {
            let solver = SolverConfig {
                backend,
                warm_start,
                incremental: true,
            };
            let config = rotated_config(solver, 4, 3);
            let name = format!("suffix-{}-{warm_start}", backend.name());

            // Uninterrupted run: the ground truth for digest + completions.
            let full_path = tmp(&format!("{name}-full"));
            let mut full = stream_jobs(&full_path, &instance, config.clone());
            let crash_digest = full.state_digest();
            full.finish().unwrap();

            // Crashed run: same stream, dropped without finish().
            let path = tmp(&name);
            drop(stream_jobs(&path, &instance, config.clone()));

            let scan = journal::scan_dir(&path).unwrap();
            assert!(
                scan.sealed.len() >= 3,
                "{name}: want >= 3 sealed segments on disk, got {:?}",
                scan.sealed
            );
            assert!(scan.snapshots.len() >= 2, "{name}: {:?}", scan.snapshots);
            let newest = *scan.snapshots.last().unwrap();

            let (mut recovered, report) =
                StretchServe::recover(&path, instance.platform.clone(), config).unwrap();
            assert_report_consistent(&report);
            assert_eq!(report.snapshot, Some(newest), "{name}: wrong candidate");
            assert!(report.snapshot_records > 0, "{name}: empty snapshot");
            assert!(
                report.replayed_records > 0 && report.replayed_records < report.records,
                "{name}: replay was not a proper suffix: {report:?}"
            );
            assert_eq!(report.submissions, instance.jobs.len() as u64);
            assert!(report.rejected_snapshots.is_empty());
            assert_eq!(
                recovered.state_digest(),
                crash_digest,
                "{name}: snapshot + suffix replay diverged from the live state"
            );
            // Draining the recovered service lands on the uninterrupted
            // run's exact completions.
            recovered.finish().unwrap();
            assert_eq!(bits(recovered.completions()), bits(full.completions()));
            std::fs::remove_dir_all(&path).unwrap();
            std::fs::remove_dir_all(&full_path).unwrap();
        }
    }
}

/// The reference stream for the corruption/surgery scenarios: short enough
/// to sweep every snapshot byte, long enough to seal several segments.
fn surgery_instance() -> Instance {
    reference_instance(3, 3, 12, 7)
}

fn surgery_config() -> ServeConfig {
    rotated_config(SolverConfig::default(), 2, 1)
}

#[test]
fn corrupting_any_snapshot_byte_falls_back_one_rung_without_divergence() {
    let instance = surgery_instance();
    let pristine = tmp("snapcorrupt-pristine");
    let live = stream_jobs(&pristine, &instance, surgery_config());
    let crash_digest = live.state_digest();
    drop(live);

    let scan = journal::scan_dir(&pristine).unwrap();
    assert!(scan.snapshots.len() >= 2, "{:?}", scan.snapshots);
    let newest = *scan.snapshots.last().unwrap();
    let previous = scan.snapshots[scan.snapshots.len() - 2];
    let snapshot_bytes = std::fs::read(journal::snapshot_path(&pristine, newest)).unwrap();

    let case = tmp("snapcorrupt-case");
    for offset in 0..snapshot_bytes.len() {
        copy_dir(&pristine, &case);
        let mut corrupted = snapshot_bytes.clone();
        corrupted[offset] ^= 0x40;
        std::fs::write(journal::snapshot_path(&case, newest), &corrupted).unwrap();

        let (recovered, report) =
            StretchServe::recover(&case, instance.platform.clone(), surgery_config())
                .unwrap_or_else(|e| panic!("offset {offset}: {e}"));
        assert_report_consistent(&report);
        assert_eq!(
            report.snapshot,
            Some(previous),
            "offset {offset}: fallback skipped the next-older snapshot"
        );
        assert_eq!(report.rejected_snapshots.len(), 1, "offset {offset}");
        let (rejected_upto, reason) = &report.rejected_snapshots[0];
        assert_eq!(*rejected_upto, newest);
        assert!(
            matches!(reason, SnapshotRejectReason::Decode(_)),
            "offset {offset}: single-byte corruption must be caught at decode, got {reason:?}"
        );
        // The rejected snapshot can never heal: recovery deletes it.
        assert!(!journal::snapshot_path(&case, newest).exists());
        assert_eq!(
            recovered.state_digest(),
            crash_digest,
            "offset {offset}: fallback recovery diverged"
        );
    }
    std::fs::remove_dir_all(&case).unwrap();
    std::fs::remove_dir_all(&pristine).unwrap();
}

#[test]
fn wrong_embedded_digest_is_rejected_as_digest_mismatch() {
    let instance = surgery_instance();
    let pristine = tmp("digest-pristine");
    let live = stream_jobs(&pristine, &instance, surgery_config());
    let crash_digest = live.state_digest();
    drop(live);

    let scan = journal::scan_dir(&pristine).unwrap();
    let newest = *scan.snapshots.last().unwrap();
    // A snapshot whose framing and checksum are perfectly valid but whose
    // embedded digest disagrees with the state it carries: only the
    // recompute-and-compare layer can catch this.
    let snap_path = journal::snapshot_path(&pristine, newest);
    let mut snap = snapshot::load(&snap_path).unwrap();
    let claimed = snap.digest.wrapping_add(1);
    snap.digest = claimed;
    std::fs::write(&snap_path, snapshot::encode(&snap)).unwrap();

    let (recovered, report) =
        StretchServe::recover(&pristine, instance.platform.clone(), surgery_config()).unwrap();
    assert_report_consistent(&report);
    assert_eq!(report.rejected_snapshots.len(), 1);
    match &report.rejected_snapshots[0] {
        (upto, SnapshotRejectReason::DigestMismatch { expected, actual }) => {
            assert_eq!(*upto, newest);
            assert_eq!(*expected, claimed);
            assert_eq!(*actual, claimed.wrapping_sub(1));
        }
        other => panic!("expected a digest mismatch, got {other:?}"),
    }
    assert_eq!(recovered.state_digest(), crash_digest);
    std::fs::remove_dir_all(&pristine).unwrap();
}

#[test]
fn mid_rotation_crash_states_recover_to_the_live_state() {
    let instance = surgery_instance();
    let pristine = tmp("midrot-pristine");
    let live = stream_jobs(&pristine, &instance, surgery_config());
    let crash_digest = live.state_digest();
    drop(live);
    let scan = journal::scan_dir(&pristine).unwrap();
    let open = scan.open.expect("active segment");

    // Crash window 1 — after the seal rename, before the snapshot: the
    // chain ends in a sealed segment, no fresh `.open` exists yet.
    let case = tmp("midrot-afterseal");
    copy_dir(&pristine, &case);
    std::fs::rename(
        journal::segment_path(&case, open, false),
        journal::segment_path(&case, open, true),
    )
    .unwrap();
    let (recovered, report) =
        StretchServe::recover(&case, instance.platform.clone(), surgery_config()).unwrap();
    assert_report_consistent(&report);
    assert_eq!(recovered.state_digest(), crash_digest, "after-seal state");
    // Reopening never reuses a sealed segment: a fresh successor appears.
    let rescan = journal::scan_dir(&recovered.journal_path()).unwrap();
    assert_eq!(rescan.open, Some(open + 1));
    drop(recovered);
    std::fs::remove_dir_all(&case).unwrap();

    // Crash window 2 — after the snapshot temp write, before its rename:
    // same as window 1 plus an abandoned `.tmp`, which must be ignored.
    let case = tmp("midrot-aftertmp");
    copy_dir(&pristine, &case);
    std::fs::rename(
        journal::segment_path(&case, open, false),
        journal::segment_path(&case, open, true),
    )
    .unwrap();
    std::fs::write(case.join(format!("snapshot-{open:06}.tmp")), b"in-flight").unwrap();
    let (recovered, report) =
        StretchServe::recover(&case, instance.platform.clone(), surgery_config()).unwrap();
    assert_report_consistent(&report);
    assert!(report.rejected_snapshots.is_empty(), "trusted a .tmp file");
    assert_eq!(recovered.state_digest(), crash_digest, "after-tmp state");
    drop(recovered);
    std::fs::remove_dir_all(&case).unwrap();

    // Crash window 3 — after the snapshot rename, before the next segment
    // opens.  With `max_records: 1` every append rotates at the end of the
    // call that wrote it, so after any submit() the active segment holds
    // only its magic header; deleting that fresh `.open` then reproduces
    // the crash state exactly, and the newest snapshot covers *every*
    // record: replay is empty.
    let every_record = rotated_config(SolverConfig::default(), 1, 1);
    let case = tmp("midrot-aftersnap");
    let _ = std::fs::remove_dir_all(&case);
    let mut serve =
        StretchServe::create(&case, instance.platform.clone(), every_record.clone()).unwrap();
    let mut boundary = None;
    for job in &instance.jobs {
        serve
            .submit(Submission::new(job.release, job.work, job.databank))
            .unwrap();
        let scan = journal::scan_dir(&case).unwrap();
        let open = scan.open.unwrap();
        let open_len = std::fs::metadata(journal::segment_path(&case, open, false))
            .unwrap()
            .len();
        if !scan.snapshots.is_empty() && open_len == journal::MAGIC.len() as u64 {
            boundary = Some((serve.state_digest(), open, *scan.snapshots.last().unwrap()));
            break;
        }
    }
    let (boundary_digest, open, newest) =
        boundary.expect("stream never landed on a rotation boundary");
    drop(serve);
    std::fs::remove_file(journal::segment_path(&case, open, false)).unwrap();
    let (recovered, report) =
        StretchServe::recover(&case, instance.platform.clone(), every_record).unwrap();
    assert_report_consistent(&report);
    assert_eq!(report.snapshot, Some(newest));
    assert_eq!(
        report.replayed_records, 0,
        "snapshot covers the whole stream; nothing should replay: {report:?}"
    );
    assert_eq!(
        recovered.state_digest(),
        boundary_digest,
        "after-snap state"
    );
    drop(recovered);
    std::fs::remove_dir_all(&case).unwrap();
    std::fs::remove_dir_all(&pristine).unwrap();
}

#[test]
fn recovery_is_unrecoverable_only_when_every_candidate_is_exhausted() {
    let instance = surgery_instance();
    let pristine = tmp("unrec-pristine");
    drop(stream_jobs(&pristine, &instance, surgery_config()));
    let scan = journal::scan_dir(&pristine).unwrap();
    assert!(
        !scan.sealed.contains(&0),
        "segment 0 should be garbage-collected: {:?}",
        scan.sealed
    );

    // Every snapshot corrupted + segment 0 long gone: nothing left to trust.
    let case = tmp("unrec-case");
    copy_dir(&pristine, &case);
    for &upto in &scan.snapshots {
        let p = journal::snapshot_path(&case, upto);
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&p, &bytes).unwrap();
    }
    match StretchServe::recover(&case, instance.platform.clone(), surgery_config()) {
        Err(RecoverError::Unrecoverable { rejected }) => {
            assert_eq!(rejected.len(), scan.snapshots.len());
            assert!(rejected
                .iter()
                .all(|(_, r)| matches!(r, SnapshotRejectReason::Decode(_))));
            // Failed recovery must not destroy evidence: the rejected
            // snapshots stay on disk for the operator.
            for &upto in &scan.snapshots {
                assert!(journal::snapshot_path(&case, upto).exists());
            }
        }
        Err(other) => panic!("expected Unrecoverable, got {other}"),
        Ok((_, report)) => panic!("expected Unrecoverable, recovered with {report:?}"),
    }
    std::fs::remove_dir_all(&case).unwrap();

    // A corrupt sealed segment inside the only remaining suffix is equally
    // fatal once the newest snapshot is gone — but with a *typed* ladder:
    // Decode for the snapshot, Segment for the torn sealed suffix.
    let newest = *scan.snapshots.last().unwrap();
    let previous = scan.snapshots[scan.snapshots.len() - 2];
    let suffix_seal = *scan
        .sealed
        .iter()
        .find(|&&s| s > previous && s <= newest)
        .expect("a sealed segment between the two snapshots");
    let case = tmp("unrec-seg-case");
    copy_dir(&pristine, &case);
    let snap_path = journal::snapshot_path(&case, newest);
    let mut bytes = std::fs::read(&snap_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&snap_path, &bytes).unwrap();
    let seg_path = journal::segment_path(&case, suffix_seal, true);
    let seg = std::fs::read(&seg_path).unwrap();
    std::fs::write(&seg_path, &seg[..seg.len() - 3]).unwrap();
    match StretchServe::recover(&case, instance.platform.clone(), surgery_config()) {
        Err(RecoverError::Unrecoverable { rejected }) => {
            assert!(matches!(
                rejected[0],
                (u, SnapshotRejectReason::Decode(_)) if u == newest
            ));
            assert!(
                rejected[1..].iter().all(|(_, r)| matches!(
                    r,
                    SnapshotRejectReason::Segment { segment, .. } if *segment == suffix_seal
                )),
                "{rejected:?}"
            );
        }
        Err(other) => panic!("expected Unrecoverable, got {other}"),
        Ok((_, report)) => panic!("expected Unrecoverable, recovered with {report:?}"),
    }
    std::fs::remove_dir_all(&case).unwrap();
    std::fs::remove_dir_all(&pristine).unwrap();
}
