//! Torn-write recovery contract: for *any* truncation or single-byte
//! corruption of a recorded journal segment, recovery either succeeds with
//! state bit-identical to some valid record prefix, or fails with a typed
//! error — it never panics and never silently diverges.
//!
//! The truncation sweep is exhaustive (every byte offset of the segment
//! file); the proptest adds random byte corruption on top.  Both operate on
//! an unrotated journal — a single active segment, the layout every journal
//! starts in; the rotated-chain and snapshot corruption sweeps live in
//! `rotation.rs`.

use std::path::{Path, PathBuf};

use proptest::prelude::*;
use stretch_platform::fixtures::small_platform;
use stretch_platform::Platform;
use stretch_serve::journal::{self, JournalWriter};
use stretch_serve::{RecoverError, ServeConfig, StretchServe, Submission};

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("stretch-serve-torn-{name}-{}", std::process::id()));
    p
}

/// Records a reference journal: six jobs over five distinct events on the
/// small fixture platform, drained to completion — submissions, decisions
/// and the final drain decision all present.  The default rotation policy
/// never triggers on a stream this short, so the journal directory holds
/// exactly one active segment.
fn record_reference_journal(path: &Path) {
    let mut serve = StretchServe::create(path, small_platform(), ServeConfig::default()).unwrap();
    let stream = [
        (0.0, 300.0, 0),
        (0.0, 60.0, 1),
        (2.5, 120.0, 0),
        (4.0, 30.0, 1),
        (6.0, 90.0, 0),
        (7.5, 45.0, 1),
    ];
    for (release, work, databank) in stream {
        assert!(serve
            .submit(Submission::new(release, work, databank))
            .unwrap()
            .is_accepted());
    }
    serve.finish().unwrap();
}

/// Bytes of the single active segment of an unrotated journal directory.
fn sole_segment_bytes(dir: &Path) -> Vec<u8> {
    let scan = journal::scan_dir(dir).unwrap();
    assert!(scan.sealed.is_empty(), "reference journal rotated");
    assert!(scan.snapshots.is_empty());
    std::fs::read(journal::segment_path(dir, scan.open.unwrap(), false)).unwrap()
}

/// Digest of the recovered state after replaying exactly the first `k`
/// records — the ground truth every truncated/corrupted recovery must land
/// on.
fn prefix_digests(bytes: &[u8], platform: &Platform, scratch: &Path) -> Vec<u64> {
    let parse_path = tmp("parse");
    std::fs::write(&parse_path, bytes).unwrap();
    let (records, tail) = journal::load(&parse_path).unwrap();
    assert_eq!(tail, journal::TailStatus::Clean);
    std::fs::remove_file(&parse_path).unwrap();

    let mut digests = Vec::with_capacity(records.len() + 1);
    for k in 0..=records.len() {
        let _ = std::fs::remove_dir_all(scratch);
        std::fs::create_dir_all(scratch).unwrap();
        let mut writer = JournalWriter::create(&journal::segment_path(scratch, 0, false)).unwrap();
        for record in &records[..k] {
            writer.append(record).unwrap();
        }
        drop(writer);
        let (serve, report) =
            StretchServe::recover(scratch, platform.clone(), ServeConfig::default()).unwrap();
        assert_eq!(report.records, k);
        digests.push(serve.state_digest());
    }
    std::fs::remove_dir_all(scratch).unwrap();
    digests
}

/// Writes `bytes` as the sole active segment of a fresh journal directory.
fn write_sole_segment(dir: &Path, bytes: &[u8]) {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(journal::segment_path(dir, 0, false), bytes).unwrap();
}

#[test]
fn recovery_from_every_truncation_offset_is_prefix_exact() {
    let journal_path = tmp("exhaustive");
    record_reference_journal(&journal_path);
    let bytes = sole_segment_bytes(&journal_path);
    std::fs::remove_dir_all(&journal_path).unwrap();
    let platform = small_platform();
    let digests = prefix_digests(&bytes, &platform, &tmp("exhaustive-prefix"));

    let case_path = tmp("exhaustive-case");
    for cut in 0..=bytes.len() {
        write_sole_segment(&case_path, &bytes[..cut]);
        match StretchServe::recover(&case_path, platform.clone(), ServeConfig::default()) {
            Ok((serve, report)) => {
                assert!(
                    cut >= journal::MAGIC.len(),
                    "cut {cut}: accepted torn magic"
                );
                assert_eq!(
                    serve.state_digest(),
                    digests[report.records],
                    "cut {cut}: recovered state is not the {}-record prefix state",
                    report.records
                );
            }
            Err(RecoverError::Journal(journal::JournalError::BadMagic { .. })) => {
                assert!(
                    cut < journal::MAGIC.len(),
                    "cut {cut}: spurious bad-magic on a well-formed prefix"
                );
            }
            Err(e) => panic!("cut {cut}: unexpected recovery error {e}"),
        }
    }
    std::fs::remove_dir_all(&case_path).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recovery_from_corrupted_bytes_never_panics_or_diverges(
        offset in 0u64..1_000_000,
        mask in 1u64..256,
    ) {
        let journal_path = tmp("proptest");
        record_reference_journal(&journal_path);
        let mut bytes = sole_segment_bytes(&journal_path);
        std::fs::remove_dir_all(&journal_path).unwrap();
        let platform = small_platform();
        let digests = prefix_digests(&bytes, &platform, &tmp("proptest-prefix"));

        let offset = (offset as usize) % bytes.len();
        bytes[offset] ^= mask as u8;
        let case_path = tmp("proptest-case");
        write_sole_segment(&case_path, &bytes);
        match StretchServe::recover(&case_path, platform, ServeConfig::default()) {
            Ok((serve, report)) => {
                // A corrupted byte must truncate at (or before) the record
                // containing it; whatever prefix survives, the recovered
                // state is bit-identical to that prefix's state.
                prop_assert!(offset >= journal::MAGIC.len());
                prop_assert_eq!(serve.state_digest(), digests[report.records]);
            }
            Err(RecoverError::Journal(journal::JournalError::BadMagic { .. })) => {
                prop_assert!(offset < journal::MAGIC.len());
            }
            // Checksum-colliding garbage surfaces as a typed corrupt-record
            // error — acceptable; panicking or silent divergence is not.
            Err(RecoverError::Corrupt { .. }) => {}
            Err(e) => panic!("unexpected recovery error {e}"),
        }
        std::fs::remove_dir_all(&case_path).unwrap();
    }
}
