//! On-disk contract of the `.strt` recorded-trace format: for *any*
//! truncation or single-byte corruption of a recorded trace, parsing
//! either recovers a bit-exact event prefix with a typed torn-tail
//! verdict, or fails with a typed error — it never panics and never
//! misdecodes.  Foreign files, foreign codec versions and post-seal
//! garbage are rejected or fenced off explicitly.
//!
//! The truncation sweep is exhaustive (every byte offset of the trace
//! file); the proptest adds random single-byte corruption on top — the
//! trace twin of `torn_journal.rs`.

use std::path::{Path, PathBuf};

use proptest::prelude::*;
use stretch_platform::fixtures::small_platform;
use stretch_serve::journal;
use stretch_serve::trace::{self, Trace, TraceError, TraceTail, TraceTornReason};
use stretch_serve::{ServeConfig, SolveTier, Submission};

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("stretch-trace-fmt-{name}-{}", std::process::id()));
    p
}

/// Records the six-job reference stream (the journal tests' stream) into
/// a sealed trace at `path` and returns the trace file's bytes.
fn reference_trace_bytes(name: &str) -> Vec<u8> {
    let trace_path = tmp(&format!("{name}.strt"));
    let journal_dir = tmp(&format!("{name}-journal"));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let stream = [
        (0.0, 300.0, 0),
        (0.0, 60.0, 1),
        (2.5, 120.0, 0),
        (4.0, 30.0, 1),
        (6.0, 90.0, 0),
        (7.5, 45.0, 1),
    ];
    let submissions: Vec<Submission> = stream
        .iter()
        .map(|&(release, work, databank)| Submission::new(release, work, databank))
        .collect();
    let run = trace::record_run(
        &trace_path,
        &journal_dir,
        small_platform(),
        ServeConfig::default(),
        &submissions,
    )
    .unwrap();
    assert_eq!(run.rejected, 0);
    let bytes = std::fs::read(&trace_path).unwrap();
    std::fs::remove_file(&trace_path).unwrap();
    std::fs::remove_dir_all(&journal_dir).unwrap();
    bytes
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Asserts `torn` decodes a bit-exact event prefix of `full`: same
/// leading submissions and completions, and a seal only if the whole
/// file survived.
fn assert_event_prefix(torn: &Trace, full: &Trace, context: &str) {
    assert!(
        torn.submissions.len() <= full.submissions.len(),
        "{context}: more submissions than recorded"
    );
    for (i, (t, f)) in torn.submissions.iter().zip(&full.submissions).enumerate() {
        assert_eq!(t.seq, f.seq, "{context}: submission {i} seq");
        assert_eq!(
            t.release.to_bits(),
            f.release.to_bits(),
            "{context}: submission {i} release bits"
        );
        assert_eq!(
            t.work.to_bits(),
            f.work.to_bits(),
            "{context}: submission {i} work bits"
        );
        assert_eq!(t.databank, f.databank, "{context}: submission {i} databank");
    }
    assert!(
        torn.completions.len() <= full.completions.len(),
        "{context}: more completions than recorded"
    );
    for (i, (t, f)) in torn.completions.iter().zip(&full.completions).enumerate() {
        assert_eq!(t.job, f.job, "{context}: completion {i} job");
        assert_eq!(
            t.completion.to_bits(),
            f.completion.to_bits(),
            "{context}: completion {i} bits"
        );
    }
    if let Some(seal) = torn.seal {
        assert_eq!(Some(seal), full.seal, "{context}: seal diverged");
    }
}

/// Hand-frames one payload with the journal's `[len][crc][payload]`
/// layout — for crafting torn and foreign-version fixtures.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(journal::RECORD_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&journal::crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// A header-frame payload declaring codec version `version`.
fn header_payload(version: u32) -> Vec<u8> {
    let mut payload = vec![0u8; 15];
    payload[0] = 1; // TAG_HEADER
    payload[1..5].copy_from_slice(&version.to_le_bytes());
    payload[5] = SolveTier::Monge.code();
    payload[6] = 1;
    // Bytes 7..15: wall-clock stamp, irrelevant to parsing.
    payload
}

#[test]
fn round_trip_preserves_every_event_bit_for_bit() {
    let bytes = reference_trace_bytes("roundtrip");
    let path = Path::new("roundtrip.strt");
    let (decoded, tail) = trace::parse(&bytes, path).unwrap();
    assert_eq!(tail, TraceTail::Clean);
    assert!(decoded.is_sealed());
    assert_eq!(decoded.meta.unwrap().version, trace::TRACE_VERSION);
    assert_eq!(decoded.submissions.len(), 6);
    assert_eq!(decoded.completions.len(), 6);

    // Replaying the decoded trace under the full matrix reproduces the
    // sealed digest and completions in every cell: the six-job stream
    // has unique System-(2) optima at every decision point.
    let platform = small_platform();
    let matrix = trace::replay_matrix(&decoded, &platform).unwrap();
    let seal = decoded.seal.unwrap();
    for (config, outcome) in &matrix {
        assert_eq!(
            outcome.digest,
            seal.digest,
            "cell {}/warm={} digest diverged",
            config.backend.name(),
            config.warm_start
        );
        assert!(outcome.matches_recorded);
        assert_eq!(
            bits(&outcome.completions),
            decoded
                .completions
                .iter()
                .map(|c| c.completion.to_bits())
                .collect::<Vec<u64>>()
        );
    }
}

#[test]
fn parsing_every_truncation_offset_recovers_an_exact_prefix() {
    let bytes = reference_trace_bytes("truncate");
    let path = Path::new("truncate.strt");
    let (full, tail) = trace::parse(&bytes, path).unwrap();
    assert_eq!(tail, TraceTail::Clean);

    for cut in 0..=bytes.len() {
        match trace::parse(&bytes[..cut], path) {
            Ok((torn, tail)) => {
                assert!(
                    cut >= trace::TRACE_MAGIC.len(),
                    "cut {cut}: accepted torn magic"
                );
                assert_event_prefix(&torn, &full, &format!("cut {cut}"));
                match tail {
                    TraceTail::Clean => {
                        // Only frame boundaries parse clean.
                        assert!(torn.seal.is_none() || cut == bytes.len());
                    }
                    TraceTail::Torn { valid_bytes, .. } => {
                        assert!(
                            valid_bytes as usize <= cut,
                            "cut {cut}: valid prefix past the cut"
                        );
                    }
                }
                if torn.is_sealed() {
                    assert_eq!(cut, bytes.len(), "cut {cut}: truncated trace claims sealed");
                } else {
                    // An unsealed prefix must refuse to replay rather
                    // than replay a half-recorded run.
                    assert_eq!(
                        trace::replay_matrix(&torn, &small_platform()).unwrap_err(),
                        trace::ReplayError::Unsealed
                    );
                }
            }
            Err(TraceError::BadMagic { .. }) => {
                assert!(
                    cut < trace::TRACE_MAGIC.len(),
                    "cut {cut}: spurious bad-magic on a well-formed prefix"
                );
            }
            Err(e) => panic!("cut {cut}: unexpected parse error {e}"),
        }
    }
}

#[test]
fn foreign_codec_versions_are_rejected_not_misdecoded() {
    for found in [0u32, 2, 7, u32::MAX] {
        let mut bytes = trace::TRACE_MAGIC.to_vec();
        bytes.extend_from_slice(&frame(&header_payload(found)));
        match trace::parse(&bytes, Path::new("foreign.strt")) {
            Err(TraceError::UnsupportedVersion { found: got, .. }) => {
                assert_eq!(got, found);
            }
            other => panic!("version {found} accepted: {other:?}"),
        }
    }
    // The supported version with the same hand-framing parses fine.
    let mut bytes = trace::TRACE_MAGIC.to_vec();
    bytes.extend_from_slice(&frame(&header_payload(trace::TRACE_VERSION)));
    let (decoded, tail) = trace::parse(&bytes, Path::new("native.strt")).unwrap();
    assert_eq!(tail, TraceTail::Clean);
    assert_eq!(decoded.meta.unwrap().version, trace::TRACE_VERSION);
}

#[test]
fn a_trace_must_open_with_a_header_frame() {
    // A well-formed submission frame first: typed MissingHeader error.
    let mut payload = vec![0u8; 41];
    payload[0] = 2; // TAG_SUBMISSION
    let mut bytes = trace::TRACE_MAGIC.to_vec();
    bytes.extend_from_slice(&frame(&payload));
    assert!(matches!(
        trace::parse(&bytes, Path::new("headerless.strt")),
        Err(TraceError::MissingHeader { .. })
    ));

    // A second header frame mid-stream: the file tears at the splice.
    let mut bytes = trace::TRACE_MAGIC.to_vec();
    bytes.extend_from_slice(&frame(&header_payload(trace::TRACE_VERSION)));
    let splice = bytes.len();
    bytes.extend_from_slice(&frame(&header_payload(trace::TRACE_VERSION)));
    let (decoded, tail) = trace::parse(&bytes, Path::new("spliced.strt")).unwrap();
    assert_eq!(
        tail,
        TraceTail::Torn {
            valid_bytes: splice as u64,
            reason: TraceTornReason::MalformedFrame,
        }
    );
    assert!(!decoded.is_sealed());
}

#[test]
fn garbage_after_the_seal_is_fenced_off() {
    let mut bytes = reference_trace_bytes("postseal");
    let sealed_len = bytes.len();
    let path = Path::new("postseal.strt");
    // An interrupted rewrite appended frames after the seal: the sealed
    // prefix is the trace; the tail is reported torn at the seal.
    bytes.extend_from_slice(&frame(&[3u8; 17])); // well-formed completion frame
    bytes.extend_from_slice(b"trailing junk");
    let (decoded, tail) = trace::parse(&bytes, path).unwrap();
    assert_eq!(
        tail,
        TraceTail::Torn {
            valid_bytes: sealed_len as u64,
            reason: TraceTornReason::MalformedFrame,
        }
    );
    assert!(decoded.is_sealed(), "sealed prefix lost to trailing junk");
    assert_eq!(decoded.submissions.len(), 6);
    // The fenced trace still replays.
    let matrix = trace::replay_matrix(&decoded, &small_platform()).unwrap();
    assert!(matrix.iter().all(|(_, outcome)| outcome.matches_recorded));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parsing_corrupted_bytes_never_panics_or_misdecodes(
        offset in 0u64..1_000_000,
        mask in 1u64..256,
    ) {
        let mut bytes = reference_trace_bytes("proptest");
        let path = Path::new("proptest.strt");
        let (full, _) = trace::parse(&bytes, path).unwrap();

        let offset = (offset as usize) % bytes.len();
        bytes[offset] ^= mask as u8;
        match trace::parse(&bytes, path) {
            Ok((torn, _)) => {
                // A corrupted byte tears the frame containing it (the
                // CRC catches every single-byte flip); whatever prefix
                // survives is bit-exact, and a trace missing any frame
                // cannot claim to be sealed and complete.
                prop_assert!(offset >= trace::TRACE_MAGIC.len());
                assert_event_prefix(&torn, &full, &format!("offset {offset}"));
                prop_assert!(!torn.is_sealed());
                prop_assert_eq!(
                    trace::replay_matrix(&torn, &small_platform()).unwrap_err(),
                    trace::ReplayError::Unsealed
                );
            }
            Err(TraceError::BadMagic { .. }) => {
                prop_assert!(offset < trace::TRACE_MAGIC.len());
            }
            // A flip inside the header's version field cannot survive the
            // CRC, so UnsupportedVersion is unreachable here; any other
            // typed error would be a codec bug.
            Err(e) => panic!("offset {offset}: unexpected parse error {e}"),
        }
    }
}
