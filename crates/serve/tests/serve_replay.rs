//! Replay-determinism contract of the serve layer.
//!
//! * **Differential**: feeding a reference stream through [`StretchServe`]
//!   produces bit-identical completions to `run_online_with` on the same
//!   instance — the service is the on-line algorithm, re-packaged, on every
//!   backend, warm and cold.
//! * **Zeroed timestamps**: wall-clock fields never influence replay.
//! * **Degradation**: chaos-injected fallbacks and circuit-breaker shedding
//!   are journaled as tiers, so a recovered process reproduces the degraded
//!   schedule bit for bit.
//! * **Recorded traces**: a `.strt` recording of a live run replays through
//!   the full pipeline deterministically — bit-identical warm vs. cold on
//!   every backend, and bit-identical to the sealed recording under the
//!   recording backend.

use std::path::{Path, PathBuf};
use std::time::Duration;

use stretch_core::online::run_online_with;
use stretch_core::refstream::reference_instance;
use stretch_core::{BackendKind, OnlineVariant, SolverConfig};
use stretch_platform::fixtures::small_platform;
use stretch_serve::trace::TraceTail;
use stretch_serve::{
    journal, trace, RejectReason, ServeConfig, SolveTier, StretchServe, Submission, SubmitOutcome,
};
use stretch_workload::Instance;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "stretch-serve-replay-{name}-{}",
        std::process::id()
    ));
    p
}

/// Streams an instance's jobs (already sorted by release) through a fresh
/// service and drains it.
fn serve_instance(path: &Path, instance: &Instance, config: ServeConfig) -> StretchServe {
    let mut serve = StretchServe::create(path, instance.platform.clone(), config).unwrap();
    for job in &instance.jobs {
        let outcome = serve
            .submit(Submission::new(job.release, job.work, job.databank))
            .unwrap();
        assert!(outcome.is_accepted(), "rejected: {outcome:?}");
    }
    serve.finish().unwrap();
    serve
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// A config whose solve budget a loaded CI machine can never bust, so the
/// tier-count assertions below see no accidental degradation.
fn lenient(solver: SolverConfig) -> ServeConfig {
    let mut config = ServeConfig::with_solver(solver);
    config.solve_budget = Duration::from_secs(60);
    config
}

#[test]
fn service_matches_run_online_on_every_backend_warm_and_cold() {
    let instance = reference_instance(3, 3, 20, 3);
    for backend in BackendKind::ALL {
        for warm_start in [true, false] {
            let solver = SolverConfig {
                backend,
                warm_start,
                incremental: true,
            };
            let expected = run_online_with(&instance, OnlineVariant::Online, solver).unwrap();
            let path = tmp(&format!("diff-{}-{warm_start}", backend.name()));
            let serve = serve_instance(&path, &instance, lenient(solver));
            assert_eq!(
                bits(serve.completions()),
                bits(&expected),
                "backend {} warm {warm_start}: service diverged from run_online",
                backend.name()
            );
            // Only the primary tier ever decided: no degradation happened.
            let tiers = serve.metrics().decisions_by_tier;
            assert_eq!(
                tiers[SolveTier::of_backend(backend).code() as usize],
                serve.metrics().decisions
            );
            std::fs::remove_dir_all(&path).unwrap();
        }
    }
}

#[test]
fn zeroed_timestamps_replay_to_identical_state() {
    let instance = reference_instance(3, 3, 20, 3);
    let path = tmp("zero-live");
    let zeroed = tmp("zero-copy");
    let serve = serve_instance(&path, &instance, ServeConfig::default());
    let live_digest = serve.state_digest();
    drop(serve);

    journal::rewrite_zeroed(&path, &zeroed).unwrap();
    let (mut a, ra) =
        StretchServe::recover(&path, instance.platform.clone(), ServeConfig::default()).unwrap();
    let (mut b, rb) =
        StretchServe::recover(&zeroed, instance.platform.clone(), ServeConfig::default()).unwrap();
    assert_eq!(ra, rb);
    assert_eq!(
        a.state_digest(),
        b.state_digest(),
        "wall-clock stamps leaked into replay"
    );
    a.finish().unwrap();
    b.finish().unwrap();
    assert_eq!(a.state_digest(), b.state_digest());
    assert_eq!(a.state_digest(), live_digest);
    assert_eq!(bits(a.completions()), bits(b.completions()));
    std::fs::remove_dir_all(&path).unwrap();
    std::fs::remove_dir_all(&zeroed).unwrap();
}

#[test]
fn chaos_fallbacks_are_journaled_and_replayed() {
    let instance = reference_instance(3, 3, 20, 3);
    // Decision 0: monge fails -> simplex.  Decision 1: monge and simplex
    // fail -> primal-dual.  Everything else on the primary rung.
    let mut config = lenient(SolverConfig {
        backend: BackendKind::Monge,
        warm_start: true,
        incremental: true,
    });
    config.chaos_tier_failures = vec![
        (0, SolveTier::Monge),
        (1, SolveTier::Monge),
        (1, SolveTier::Simplex),
    ];
    let path = tmp("chaos");
    let mut live = serve_instance(&path, &instance, config.clone());
    let m = live.metrics().clone();
    assert!(
        m.decisions >= 3,
        "stream too short: {} decisions",
        m.decisions
    );
    assert_eq!(m.decisions_by_tier[SolveTier::Simplex.code() as usize], 1);
    assert_eq!(
        m.decisions_by_tier[SolveTier::PrimalDual.code() as usize],
        1
    );
    assert_eq!(
        m.decisions_by_tier[SolveTier::Monge.code() as usize],
        m.decisions - 2
    );
    assert_eq!(m.fallbacks, 3);
    live.finish().unwrap();

    // Recovery must reproduce the degraded tiers from the journal alone —
    // the recovering config carries no chaos.
    let (mut recovered, report) = StretchServe::recover(
        &path,
        instance.platform.clone(),
        ServeConfig::with_solver(config.solver),
    )
    .unwrap();
    assert_eq!(report.decisions, m.decisions);
    let rm = recovered.metrics().clone();
    assert_eq!(rm.decisions_by_tier, m.decisions_by_tier);
    recovered.finish().unwrap();
    assert_eq!(recovered.state_digest(), live.state_digest());
    assert_eq!(bits(recovered.completions()), bits(live.completions()));
    std::fs::remove_dir_all(&path).unwrap();
}

#[test]
fn breaker_sheds_to_edf_and_replays_identically() {
    let instance = reference_instance(3, 3, 20, 3);
    // A zero budget busts every solve; after `breaker_threshold` busts the
    // breaker opens and sheds `breaker_cooldown` decisions to EDF.
    let config = ServeConfig {
        solve_budget: Duration::ZERO,
        breaker_threshold: 2,
        breaker_cooldown: 3,
        ..ServeConfig::default()
    };
    let path = tmp("breaker");
    let mut live = serve_instance(&path, &instance, config.clone());
    let m = live.metrics().clone();
    assert!(m.budget_busts >= 2, "busts {}", m.budget_busts);
    assert!(m.breaker_opens >= 1, "breaker never opened");
    assert!(
        m.shed_decisions >= config.breaker_cooldown as u64
            || m.decisions < (config.breaker_threshold + config.breaker_cooldown) as u64,
        "breaker opened but shed only {} decisions",
        m.shed_decisions
    );
    assert!(m.decisions_by_tier[SolveTier::Edf.code() as usize] >= m.shed_decisions);
    live.finish().unwrap();

    // The shed EDF decisions are in the journal; recovery (with a sane
    // budget) replays the identical degraded schedule.
    let (mut recovered, _) =
        StretchServe::recover(&path, instance.platform.clone(), ServeConfig::default()).unwrap();
    assert_eq!(
        recovered.metrics().decisions_by_tier,
        m.decisions_by_tier,
        "replayed tiers diverged from the live degradation"
    );
    recovered.finish().unwrap();
    assert_eq!(recovered.state_digest(), live.state_digest());
    assert_eq!(bits(recovered.completions()), bits(live.completions()));
    std::fs::remove_dir_all(&path).unwrap();
}

#[test]
fn malformed_and_out_of_order_submissions_are_dead_lettered() {
    let path = tmp("dlq");
    let mut serve = StretchServe::create(&path, small_platform(), ServeConfig::default()).unwrap();
    assert!(serve
        .submit(Submission::new(5.0, 100.0, 0))
        .unwrap()
        .is_accepted());

    let rejected = [
        Submission::new(f64::NAN, 10.0, 0),
        Submission::new(-1.0, 10.0, 0),
        Submission::new(5.0, f64::NAN, 0),
        Submission::new(5.0, -3.0, 0),
        Submission::new(5.0, 0.0, 0),
        Submission::new(5.0, 10.0, 42),
        Submission::new(1.0, 10.0, 0), // behind the frontier
    ];
    for s in rejected {
        match serve.submit(s).unwrap() {
            SubmitOutcome::Rejected(_) => {}
            SubmitOutcome::Accepted(id) => panic!("{s:?} accepted as job {id}"),
        }
    }
    let reasons: Vec<_> = serve.dlq().letters().map(|l| l.reason).collect();
    assert_eq!(reasons.len(), 7);
    assert!(matches!(reasons[0], RejectReason::InvalidJob(_)));
    assert!(matches!(reasons[5], RejectReason::UnknownDatabank { .. }));
    assert!(matches!(
        reasons[6],
        RejectReason::OutOfOrder { frontier, .. } if frontier == 5.0
    ));

    // The accepted stream is unaffected by the garbage around it.
    serve.finish().unwrap();
    assert_eq!(serve.metrics().accepted, 1);
    assert_eq!(serve.metrics().dead_lettered, 7);
    assert!(serve.completions()[0].is_finite());
    // Closed service rejects further submissions instead of panicking.
    assert_eq!(
        serve.submit(Submission::new(9.0, 10.0, 0)).unwrap(),
        SubmitOutcome::Rejected(RejectReason::Closed)
    );
    std::fs::remove_dir_all(&path).unwrap();
}

/// Records `instance` through a full serve run under `solver` and returns
/// the sealed trace plus the recording digest.
fn record_trace(name: &str, instance: &Instance, solver: SolverConfig) -> (trace::Trace, u64) {
    let trace_path = tmp(&format!("trace-{name}.strt"));
    let journal_dir = tmp(&format!("trace-{name}-journal"));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let submissions: Vec<Submission> = instance
        .jobs
        .iter()
        .map(|j| Submission::new(j.release, j.work, j.databank))
        .collect();
    let run = trace::record_run(
        &trace_path,
        &journal_dir,
        instance.platform.clone(),
        lenient(solver),
        &submissions,
    )
    .unwrap();
    assert_eq!(run.rejected, 0, "reference stream partially rejected");
    let (recorded, tail) = trace::load(&trace_path).unwrap();
    assert_eq!(tail, TraceTail::Clean);
    assert!(recorded.is_sealed());
    std::fs::remove_file(&trace_path).unwrap();
    std::fs::remove_dir_all(&journal_dir).unwrap();
    (recorded, run.digest)
}

#[test]
fn recorded_traces_replay_deterministically_across_the_backend_matrix() {
    // A generic stream admits degenerate System-(2) optima where the
    // primal-dual backend legitimately picks a different allocation than
    // the flow backends, so the cross-backend contract is per backend:
    // warm and cold replays are bit-identical, the two flow backends
    // (simplex, monge) agree bit for bit, and the recording backend's
    // cells reproduce the sealed digest and completions exactly.
    let instance = reference_instance(3, 3, 20, 3);
    let recording = SolverConfig {
        backend: BackendKind::Monge,
        warm_start: true,
        incremental: true,
    };
    let (recorded, sealed_digest) = record_trace("generic", &instance, recording);
    let matrix = trace::replay_matrix(&recorded, &instance.platform).unwrap();
    assert_eq!(matrix.len(), BackendKind::ALL.len() * 2);

    let cell = |backend: BackendKind, warm_start: bool| {
        &matrix
            .iter()
            .find(|(c, _)| c.backend == backend && c.warm_start == warm_start)
            .unwrap()
            .1
    };
    for backend in BackendKind::ALL {
        let warm = cell(backend, true);
        let cold = cell(backend, false);
        assert_eq!(
            warm.digest,
            cold.digest,
            "backend {}: warm and cold replays diverged",
            backend.name()
        );
        assert_eq!(bits(&warm.completions), bits(&cold.completions));
    }
    let simplex = cell(BackendKind::NetworkSimplex, true);
    let monge = cell(BackendKind::Monge, true);
    assert_eq!(
        simplex.digest, monge.digest,
        "the two flow backends replayed to different digests"
    );
    assert_eq!(bits(&simplex.completions), bits(&monge.completions));
    for warm_start in [true, false] {
        let outcome = cell(recording.backend, warm_start);
        assert_eq!(outcome.digest, sealed_digest);
        assert!(
            outcome.matches_recorded,
            "recording backend (warm={warm_start}) does not reproduce its own recording"
        );
    }
}

#[test]
fn unique_optima_streams_replay_identically_in_every_matrix_cell() {
    // The six-job reference stream of the journal tests has a unique
    // System-(2) optimum at every decision point, so the strongest form
    // of the contract holds: all 3 backends × warm/cold land on the
    // recorded digest and completions bit for bit.
    let stream = [
        (0.0, 300.0, 0),
        (0.0, 60.0, 1),
        (2.5, 120.0, 0),
        (4.0, 30.0, 1),
        (6.0, 90.0, 0),
        (7.5, 45.0, 1),
    ];
    let jobs = stream
        .iter()
        .map(|&(release, work, databank)| stretch_workload::Job::new(0, release, work, databank))
        .collect();
    let instance = Instance::new(small_platform(), jobs);
    let (recorded, sealed_digest) = record_trace(
        "unique",
        &instance,
        SolverConfig {
            backend: BackendKind::PrimalDual,
            warm_start: true,
            incremental: true,
        },
    );
    let matrix = trace::replay_matrix(&recorded, &instance.platform).unwrap();
    for (config, outcome) in &matrix {
        assert_eq!(
            outcome.digest,
            sealed_digest,
            "cell {}/warm={} diverged from the recording",
            config.backend.name(),
            config.warm_start
        );
        assert!(outcome.matches_recorded);
    }
}

#[test]
fn recovery_mid_stream_continues_to_the_uninterrupted_result() {
    // Split the stream at every prefix point: run the first k submissions in
    // one "process", recover, run the rest, and compare against the
    // uninterrupted run — the in-process version of the SIGKILL harness.
    let instance = reference_instance(3, 3, 12, 7);
    let full_path = tmp("split-full");
    let full = serve_instance(&full_path, &instance, ServeConfig::default());
    for k in 0..=instance.jobs.len() {
        let path = tmp(&format!("split-{k}"));
        {
            let mut first =
                StretchServe::create(&path, instance.platform.clone(), ServeConfig::default())
                    .unwrap();
            for job in &instance.jobs[..k] {
                first
                    .submit(Submission::new(job.release, job.work, job.databank))
                    .unwrap();
            }
            // Dropped without finish(): the "crash".
        }
        let (mut second, _) =
            StretchServe::recover(&path, instance.platform.clone(), ServeConfig::default())
                .unwrap();
        for job in &instance.jobs[k..] {
            let outcome = second
                .submit(Submission::new(job.release, job.work, job.databank))
                .unwrap();
            assert!(outcome.is_accepted(), "k={k}: {outcome:?}");
        }
        second.finish().unwrap();
        assert_eq!(
            second.state_digest(),
            full.state_digest(),
            "k={k}: recovered run diverged"
        );
        assert_eq!(bits(second.completions()), bits(full.completions()));
        std::fs::remove_dir_all(&path).unwrap();
    }
    std::fs::remove_dir_all(&full_path).unwrap();
}
