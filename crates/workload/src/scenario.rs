//! Workload scenario families beyond the paper's steady-state model.
//!
//! §5.1 of the paper studies a single arrival model: homogeneous Poisson
//! arrivals per databank, every request scanning its whole databank, all
//! databanks equally popular.  Real GriPPS-style portals deviate from each
//! of those assumptions, and large-stretch literature (Srivastav–Trystram,
//! Moseley–Pruhs–Stein) shows the heuristic rankings only separate under
//! such stress.  A [`Scenario`] selects one deviation at a time so its
//! effect on the Table-1 rankings can be isolated:
//!
//! * [`Scenario::Bursty`] — arrivals concentrate into periodic bursts
//!   (non-homogeneous Poisson, on/off square-wave rate);
//! * [`Scenario::HeavyTailed`] — request sizes follow a unit-mean Pareto
//!   law, mixing scans of small fractions with multi-pass scans;
//! * [`Scenario::SkewedPopularity`] — databank request rates follow a
//!   Zipf law instead of being proportional to serving capacity alone.
//!
//! Every family is **density-preserving**: the expected number of jobs and
//! the expected total work per window both match the steady scenario at the
//! same [`WorkloadConfig`](crate::WorkloadConfig), so the load axis of the
//! experimental grid keeps its meaning across families.

use rand::Rng;

/// One arrival/size/popularity model for workload generation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum Scenario {
    /// The paper's model: homogeneous Poisson arrivals, full scans, uniform
    /// databank popularity.
    #[default]
    Steady,
    /// Arrivals concentrate into `cycles` periodic bursts per window; within
    /// each cycle only the first `duty` fraction receives arrivals, at rate
    /// `base_rate / duty` (expected count preserved).  `duty` must lie in
    /// `(0, 1]`; `duty = 1` degenerates to [`Scenario::Steady`] arrivals.
    Bursty {
        /// Number of bursts per arrival window.
        cycles: usize,
        /// Fraction of each cycle during which arrivals occur.
        duty: f64,
    },
    /// Request sizes are multiplied by a unit-mean Pareto factor with shape
    /// `alpha` (must exceed 1 so the mean exists): most requests scan a
    /// small fraction of the databank, a heavy tail re-scans it many times.
    HeavyTailed {
        /// Pareto shape; smaller values give heavier tails (paper-adjacent
        /// studies use 1.1–2.5).
        alpha: f64,
    },
    /// Databank arrival rates are re-weighted by a Zipf law with the given
    /// exponent: databank `d` (0-based) receives weight `(d+1)^-exponent`,
    /// normalised so the expected total job count is unchanged.
    SkewedPopularity {
        /// Zipf exponent; `0.0` is uniform, `1.0` classic Zipf.
        exponent: f64,
    },
    /// A steady stream post-processed by the workload adversary
    /// ([`crate::adversary`]): a seeded hill-climb perturbs release dates,
    /// sizes and databank targets to maximise the starvation-pressure
    /// proxy.  Job *count* is preserved (mutations never add or remove
    /// jobs) but sizes and arrival placement are deliberately hostile, so
    /// this family is **not** density-preserving — that is its point.
    Adversarial {
        /// Scenario-level search seed, mixed with the generator draw so
        /// each instance of a campaign explores a different
        /// neighbourhood deterministically.
        seed: u64,
        /// Hill-climb rounds per instance.
        rounds: u32,
    },
    /// A recorded `.strt` trace stands in for generation entirely: the
    /// campaign layer (`stretch-experiments`) loads checked-in trace
    /// fixture `index` and replays it instead of drawing jobs.  At the
    /// workload level this family generates a steady stream (the
    /// fallthrough), so the variant stays usable without the serve layer.
    Trace {
        /// Which checked-in trace fixture to replay.
        index: u32,
    },
}

impl Scenario {
    /// Compact label used in configuration labels and result files.
    pub fn label(&self) -> String {
        match *self {
            Scenario::Steady => "steady".to_string(),
            Scenario::Bursty { cycles, duty } => format!("bursty{cycles}x{duty:.2}"),
            Scenario::HeavyTailed { alpha } => format!("heavy{alpha:.2}"),
            Scenario::SkewedPopularity { exponent } => format!("zipf{exponent:.2}"),
            Scenario::Adversarial { seed, rounds } => format!("adv{seed}r{rounds}"),
            Scenario::Trace { index } => format!("trace{index}"),
        }
    }

    /// Validates the scenario parameters, panicking with a descriptive
    /// message on nonsense values (mirrors the other generator asserts).
    pub fn validate(&self) {
        match *self {
            Scenario::Steady => {}
            Scenario::Bursty { cycles, duty } => {
                assert!(cycles > 0, "bursty scenario needs at least one cycle");
                assert!(
                    duty > 0.0 && duty <= 1.0,
                    "bursty duty must be in (0, 1], got {duty}"
                );
            }
            Scenario::HeavyTailed { alpha } => {
                assert!(
                    alpha > 1.0 && alpha.is_finite(),
                    "heavy-tail shape must exceed 1 (finite mean), got {alpha}"
                );
            }
            Scenario::SkewedPopularity { exponent } => {
                assert!(
                    exponent >= 0.0 && exponent.is_finite(),
                    "popularity exponent must be nonnegative, got {exponent}"
                );
            }
            Scenario::Adversarial { rounds, .. } => {
                assert!(rounds > 0, "adversarial scenario needs at least one round");
            }
            Scenario::Trace { .. } => {}
        }
    }

    /// Popularity weight of databank `databank` among `count` databanks.
    ///
    /// Weights are normalised to **mean 1** over the databanks, so scaling
    /// every arrival rate by its weight keeps the expected total job count
    /// of the window unchanged.
    pub fn popularity_weight(&self, databank: usize, count: usize) -> f64 {
        match *self {
            Scenario::SkewedPopularity { exponent } => {
                let raw = |d: usize| ((d + 1) as f64).powf(-exponent);
                let total: f64 = (0..count).map(raw).sum();
                raw(databank) * count as f64 / total
            }
            _ => 1.0,
        }
    }

    /// Multiplicative size factor for one request (unit mean).
    pub fn size_factor<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Scenario::HeavyTailed { alpha } => {
                // Pareto with scale xm = (alpha-1)/alpha has mean exactly 1.
                let xm = (alpha - 1.0) / alpha;
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                xm / u.powf(1.0 / alpha)
            }
            _ => 1.0,
        }
    }

    /// Maps an arrival drawn in *active time* (the time axis in which the
    /// Poisson process is homogeneous) back to wall-clock time in a window
    /// of length `window`.
    ///
    /// For [`Scenario::Bursty`], active time covers only the on-phases: the
    /// active axis has length `duty · window` and is split evenly across
    /// `cycles` bursts, each burst occupying the start of its cycle.  For
    /// every other family active time *is* wall-clock time.
    pub fn arrival_time(&self, active_t: f64, window: f64) -> f64 {
        match *self {
            Scenario::Bursty { cycles, duty } => {
                let cycle_len = window / cycles as f64;
                let on_len = duty * cycle_len;
                let cycle = (active_t / on_len).floor();
                let offset = active_t - cycle * on_len;
                cycle * cycle_len + offset
            }
            _ => active_t,
        }
    }

    /// Length of the active-time axis for a window of length `window` (the
    /// horizon up to which homogeneous arrivals must be drawn).
    pub fn active_window(&self, window: f64) -> f64 {
        match *self {
            Scenario::Bursty { duty, .. } => duty * window,
            _ => window,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn labels_are_distinct_and_readable() {
        let scenarios = [
            Scenario::Steady,
            Scenario::Bursty {
                cycles: 3,
                duty: 0.25,
            },
            Scenario::HeavyTailed { alpha: 1.5 },
            Scenario::SkewedPopularity { exponent: 1.0 },
            Scenario::Adversarial {
                seed: 11,
                rounds: 16,
            },
            Scenario::Trace { index: 0 },
        ];
        let labels: Vec<String> = scenarios.iter().map(|s| s.label()).collect();
        assert_eq!(labels[0], "steady");
        assert_eq!(labels[1], "bursty3x0.25");
        assert_eq!(labels[2], "heavy1.50");
        assert_eq!(labels[3], "zipf1.00");
        assert_eq!(labels[4], "adv11r16");
        assert_eq!(labels[5], "trace0");
        let unique: std::collections::HashSet<&String> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }

    #[test]
    fn popularity_weights_have_mean_one() {
        for exponent in [0.0, 0.5, 1.0, 2.0] {
            let s = Scenario::SkewedPopularity { exponent };
            let count = 7;
            let total: f64 = (0..count).map(|d| s.popularity_weight(d, count)).sum();
            assert!(
                (total - count as f64).abs() < 1e-9,
                "exponent {exponent}: total {total}"
            );
            // Weights decrease with rank.
            for d in 1..count {
                assert!(s.popularity_weight(d, count) <= s.popularity_weight(d - 1, count) + 1e-12);
            }
        }
    }

    #[test]
    fn heavy_tail_size_factor_has_unit_mean() {
        let s = Scenario::HeavyTailed { alpha: 2.0 };
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| s.size_factor(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // The minimum possible factor is xm = 0.5 for alpha = 2.
        let min = (0..1000)
            .map(|_| s.size_factor(&mut rng))
            .fold(f64::INFINITY, f64::min);
        assert!(min >= 0.5 - 1e-12);
    }

    #[test]
    fn bursty_arrival_times_land_in_on_phases() {
        let s = Scenario::Bursty {
            cycles: 4,
            duty: 0.25,
        };
        let window = 100.0;
        assert_eq!(s.active_window(window), 25.0);
        // Active time sweeps [0, 25); images must fall inside the first
        // quarter of each 25-second cycle.
        for k in 0..1000 {
            let active = k as f64 * 0.025;
            let t = s.arrival_time(active, window);
            let cycle_offset = t % 25.0;
            assert!(
                cycle_offset <= 25.0 * 0.25 + 1e-9,
                "arrival {t} outside burst"
            );
            assert!((0.0..window + 1e-9).contains(&t));
        }
        // Order is preserved.
        let a = s.arrival_time(3.0, window);
        let b = s.arrival_time(9.0, window);
        assert!(a < b);
    }

    #[test]
    fn steady_is_the_identity_everywhere() {
        let s = Scenario::Steady;
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(s.popularity_weight(3, 10), 1.0);
        assert_eq!(s.size_factor(&mut rng), 1.0);
        assert_eq!(s.arrival_time(7.5, 100.0), 7.5);
        assert_eq!(s.active_window(100.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "duty")]
    fn invalid_duty_rejected() {
        Scenario::Bursty {
            cycles: 2,
            duty: 1.5,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn invalid_alpha_rejected() {
        Scenario::HeavyTailed { alpha: 0.9 }.validate();
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_adversary_rounds_rejected() {
        Scenario::Adversarial { seed: 1, rounds: 0 }.validate();
    }

    #[test]
    fn trace_and_adversarial_are_transparent_to_the_flow_shape_hooks() {
        // Both families reshape (or replace) the stream *after* the steady
        // draw, so the per-draw hooks must behave exactly like steady.
        let mut rng = SmallRng::seed_from_u64(2);
        for s in [
            Scenario::Adversarial { seed: 3, rounds: 8 },
            Scenario::Trace { index: 1 },
        ] {
            s.validate();
            assert_eq!(s.popularity_weight(2, 5), 1.0);
            assert_eq!(s.size_factor(&mut rng), 1.0);
            assert_eq!(s.arrival_time(4.25, 100.0), 4.25);
            assert_eq!(s.active_window(100.0), 100.0);
        }
    }
}
