//! Random workload generation (§5.1 of the paper).
//!
//! For every databank, requests arrive according to a Poisson process whose
//! rate is derived from the **workload density**: the ratio of the aggregate
//! job size submitted per unit of time against a databank to the aggregate
//! computational power able to serve that databank.  A density of 1.0 means
//! the eligible processors are, on average, exactly loaded.

use crate::adversary::{self, AdversaryConfig};
use crate::instance::Instance;
use crate::job::Job;
use crate::scenario::Scenario;
use rand::Rng;
use stretch_platform::{reference, Platform};

/// Workload-side experimental parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadConfig {
    /// Workload density (§5.1 item 6); the values studied in the paper range
    /// from 0.0125 (Figure 3) to 3.0 (Tables 5–10).
    pub density: f64,
    /// Length of the arrival window in seconds (15 minutes in the paper).
    pub window: f64,
    /// Fraction of the target databank scanned by each request.  The paper's
    /// requests scan the whole databank (1.0); smaller values produce shorter
    /// jobs with the same arrival intensity.
    pub scan_fraction: f64,
    /// Arrival/size/popularity family; [`Scenario::Steady`] is the paper's
    /// model, the others stress the heuristics while preserving the expected
    /// load (see [`crate::scenario`]).
    pub scenario: Scenario,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            density: 1.0,
            window: reference::ARRIVAL_WINDOW_S,
            scan_fraction: 1.0,
            scenario: Scenario::Steady,
        }
    }
}

impl WorkloadConfig {
    /// Creates a configuration with the paper's defaults and the given
    /// density.
    pub fn with_density(density: f64) -> Self {
        assert!(density > 0.0 && density.is_finite());
        WorkloadConfig {
            density,
            ..Default::default()
        }
    }
}

/// Random workload generator.
#[derive(Clone, Debug)]
pub struct WorkloadGenerator {
    config: WorkloadConfig,
}

impl WorkloadGenerator {
    /// Creates a generator for `config`.
    pub fn new(config: WorkloadConfig) -> Self {
        assert!(config.density > 0.0, "density must be positive");
        assert!(config.window > 0.0, "window must be positive");
        assert!(
            config.scan_fraction > 0.0 && config.scan_fraction <= 1.0,
            "scan fraction must be in (0, 1]"
        );
        config.scenario.validate();
        WorkloadGenerator { config }
    }

    /// The configuration driving this generator.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The paper's (steady) arrival rate: `density = rate · job_size /
    /// aggregate_speed_for(databank)`, hence `rate = density ·
    /// aggregate_speed / job_size`.
    fn base_rate(&self, platform: &Platform, databank: usize) -> f64 {
        let job_size = platform.databanks[databank].size_mb * self.config.scan_fraction;
        let power = platform.aggregate_speed_for(databank);
        self.config.density * power / job_size
    }

    /// Poisson arrival rate (jobs per second) for one databank on `platform`.
    ///
    /// The steady per-databank base rate scaled by the scenario's popularity
    /// weight, re-normalised against this platform's base rates so the
    /// platform-wide expected job count is **exactly** scenario-independent
    /// (popularity redistributes requests between databanks, it never adds
    /// load).
    pub fn arrival_rate(&self, platform: &Platform, databank: usize) -> f64 {
        if !matches!(self.config.scenario, Scenario::SkewedPopularity { .. }) {
            return self.base_rate(platform, databank);
        }
        let count = platform.num_databanks();
        let weight = self.config.scenario.popularity_weight(databank, count);
        let total_base: f64 = (0..count).map(|d| self.base_rate(platform, d)).sum();
        let total_weighted: f64 = (0..count)
            .map(|d| self.base_rate(platform, d) * self.config.scenario.popularity_weight(d, count))
            .sum();
        self.base_rate(platform, databank) * weight * total_base / total_weighted
    }

    /// Draws a workload (a job flow) for `platform`.
    ///
    /// For each databank, inter-arrival times are exponential with the rate
    /// given by [`WorkloadGenerator::arrival_rate`]; arrivals beyond the
    /// window are discarded.  Non-steady scenarios reshape the flow without
    /// changing its expected load: bursty arrivals are drawn homogeneously
    /// in *active time* and mapped into the on-phases, heavy-tailed sizes
    /// multiply each job by a unit-mean Pareto factor.  The per-databank
    /// flows are merged and sorted by release date.  The result always
    /// contains at least one job (if every Poisson draw came out empty, one
    /// job on databank 0 is released at time 0 so downstream metrics are
    /// well defined).
    pub fn generate<R: Rng + ?Sized>(&self, platform: &Platform, rng: &mut R) -> Vec<Job> {
        let scenario = self.config.scenario;
        let mut jobs = Vec::new();
        for db in &platform.databanks {
            let rate = self.arrival_rate(platform, db.id);
            let job_size = db.size_mb * self.config.scan_fraction;
            // Homogeneous arrivals on the active-time axis; same expected
            // count as `rate` over the full window.  Only bursty scenarios
            // rescale the axis: for everything else the rate is used as-is
            // (`rate * w / w` is not an f64 no-op, and the steady stream
            // must stay bit-identical to the paper-era generator).
            let (active_window, active_rate) = match scenario {
                Scenario::Bursty { .. } => {
                    let active = scenario.active_window(self.config.window);
                    (active, rate * self.config.window / active)
                }
                _ => (self.config.window, rate),
            };
            let mut t = 0.0;
            loop {
                // Exponential inter-arrival time with mean 1/active_rate.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t += -u.ln() / active_rate;
                if t > active_window {
                    break;
                }
                let release = scenario.arrival_time(t, self.config.window);
                let work = job_size * scenario.size_factor(rng);
                jobs.push(Job::new(jobs.len(), release, work, db.id));
            }
        }
        if jobs.is_empty() {
            let db = &platform.databanks[0];
            jobs.push(Job::new(0, 0.0, db.size_mb * self.config.scan_fraction, 0));
        }
        jobs.sort_by(|a, b| a.release.total_cmp(&b.release));
        for (k, j) in jobs.iter_mut().enumerate() {
            j.id = k;
        }
        if let Scenario::Adversarial { seed, rounds } = scenario {
            // Post-process the steady draw with the hill-climb adversary.
            // The search seed mixes the scenario seed with one draw from
            // the caller's RNG, so each instance of a campaign explores a
            // different neighbourhood while staying a pure function of
            // (generator seed, scenario).
            let draw: u64 = rng.gen_range(0..u64::MAX);
            let search_config = AdversaryConfig {
                seed: adversary::mix_seed(seed, draw),
                rounds,
                ..AdversaryConfig::default()
            };
            let base = Instance::new(platform.clone(), jobs);
            let result = adversary::search(&base, search_config, adversary::starvation_pressure);
            return result.best.jobs;
        }
        jobs
    }

    /// Generates a full [`Instance`] (platform + jobs).
    pub fn generate_instance<R: Rng + ?Sized>(&self, platform: Platform, rng: &mut R) -> Instance {
        let jobs = self.generate(&platform, rng);
        Instance::new(platform, jobs)
    }

    /// Expected number of jobs the generator will emit for `platform`.
    pub fn expected_job_count(&self, platform: &Platform) -> f64 {
        platform
            .databanks
            .iter()
            .map(|db| self.arrival_rate(platform, db.id) * self.config.window)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use stretch_platform::fixtures::small_platform;

    #[test]
    fn arrival_rate_matches_density_definition() {
        let platform = small_platform();
        let generator = WorkloadGenerator::new(WorkloadConfig::with_density(2.0));
        // Databank 0: size 100 MB, aggregate eligible speed 60 MB/s.
        let rate = generator.arrival_rate(&platform, 0);
        assert!((rate - 2.0 * 60.0 / 100.0).abs() < 1e-12);
        // Databank 1: size 200 MB, eligible speed 40 MB/s.
        let rate = generator.arrival_rate(&platform, 1);
        assert!((rate - 2.0 * 40.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn generated_jobs_are_sorted_and_within_window() {
        let platform = small_platform();
        let mut rng = SmallRng::seed_from_u64(11);
        let generator = WorkloadGenerator::new(WorkloadConfig {
            density: 1.0,
            window: 100.0,
            scan_fraction: 1.0,
            ..Default::default()
        });
        let jobs = generator.generate(&platform, &mut rng);
        assert!(!jobs.is_empty());
        for w in jobs.windows(2) {
            assert!(w[0].release <= w[1].release);
        }
        for (k, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, k);
            assert!(j.release <= 100.0);
            assert!(j.databank < platform.num_databanks());
        }
    }

    #[test]
    fn empirical_job_count_tracks_expectation() {
        let platform = small_platform();
        let generator = WorkloadGenerator::new(WorkloadConfig {
            density: 1.5,
            window: 400.0,
            scan_fraction: 1.0,
            ..Default::default()
        });
        let expected = generator.expected_job_count(&platform);
        let mut total = 0usize;
        let runs = 40;
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..runs {
            total += generator.generate(&platform, &mut rng).len();
        }
        let mean = total as f64 / runs as f64;
        // Poisson mean should be within 15 % over 40 runs of several hundred
        // arrivals each.
        assert!(
            (mean - expected).abs() / expected < 0.15,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn scan_fraction_scales_job_sizes() {
        let platform = small_platform();
        let mut rng = SmallRng::seed_from_u64(3);
        let generator = WorkloadGenerator::new(WorkloadConfig {
            density: 1.0,
            window: 50.0,
            scan_fraction: 0.25,
            ..Default::default()
        });
        let jobs = generator.generate(&platform, &mut rng);
        for j in &jobs {
            let db_size = platform.databanks[j.databank].size_mb;
            assert!((j.work - db_size * 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn generate_instance_builds_consistent_instance() {
        let platform = small_platform();
        let mut rng = SmallRng::seed_from_u64(19);
        let generator = WorkloadGenerator::new(WorkloadConfig::with_density(0.5));
        let inst = generator.generate_instance(platform, &mut rng);
        assert!(inst.num_jobs() > 0);
        for j in 0..inst.num_jobs() {
            assert!(!inst.eligible_processors(j).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "density must be positive")]
    fn zero_density_rejected() {
        WorkloadGenerator::new(WorkloadConfig {
            density: 0.0,
            window: 1.0,
            scan_fraction: 1.0,
            ..Default::default()
        });
    }

    #[test]
    fn scenarios_preserve_the_expected_job_count() {
        // The load-preservation contract: every family's empirical job count
        // tracks the *steady* expectation at the same density.
        let platform = small_platform();
        let steady = WorkloadGenerator::new(WorkloadConfig {
            density: 1.0,
            window: 600.0,
            scan_fraction: 1.0,
            ..Default::default()
        });
        let expected = steady.expected_job_count(&platform);
        for scenario in [
            Scenario::Bursty {
                cycles: 5,
                duty: 0.2,
            },
            Scenario::HeavyTailed { alpha: 1.8 },
            Scenario::SkewedPopularity { exponent: 1.0 },
        ] {
            let generator = WorkloadGenerator::new(WorkloadConfig {
                density: 1.0,
                window: 600.0,
                scan_fraction: 1.0,
                scenario,
            });
            assert!(
                (generator.expected_job_count(&platform) - expected).abs() / expected < 1e-9,
                "{scenario:?} changes the analytic expectation"
            );
            let mut rng = SmallRng::seed_from_u64(17);
            let runs = 30;
            let total: usize = (0..runs)
                .map(|_| generator.generate(&platform, &mut rng).len())
                .sum();
            let mean = total as f64 / runs as f64;
            assert!(
                (mean - expected).abs() / expected < 0.2,
                "{scenario:?}: mean {mean} vs expected {expected}"
            );
        }
    }

    #[test]
    fn bursty_scenario_confines_arrivals_to_bursts() {
        let platform = small_platform();
        let mut rng = SmallRng::seed_from_u64(23);
        let generator = WorkloadGenerator::new(WorkloadConfig {
            density: 2.0,
            window: 100.0,
            scan_fraction: 1.0,
            scenario: Scenario::Bursty {
                cycles: 4,
                duty: 0.25,
            },
        });
        let jobs = generator.generate(&platform, &mut rng);
        assert!(jobs.len() > 10);
        for j in &jobs {
            let offset = j.release % 25.0;
            assert!(
                offset <= 25.0 * 0.25 + 1e-9,
                "job at {} off-burst",
                j.release
            );
        }
    }

    #[test]
    fn heavy_tailed_sizes_vary_but_keep_the_mean_work() {
        let platform = small_platform();
        let mut rng = SmallRng::seed_from_u64(31);
        let generator = WorkloadGenerator::new(WorkloadConfig {
            density: 1.0,
            window: 2000.0,
            scan_fraction: 1.0,
            scenario: Scenario::HeavyTailed { alpha: 2.5 },
        });
        let jobs = generator.generate(&platform, &mut rng);
        // Sizes are no longer a single point mass per databank.
        let db0: Vec<f64> = jobs
            .iter()
            .filter(|j| j.databank == 0)
            .map(|j| j.work)
            .collect();
        assert!(db0.len() > 50);
        let mean = db0.iter().sum::<f64>() / db0.len() as f64;
        let base = platform.databanks[0].size_mb;
        assert!(
            (mean - base).abs() / base < 0.25,
            "mean work {mean} vs {base}"
        );
        let distinct: std::collections::HashSet<u64> = db0.iter().map(|w| w.to_bits()).collect();
        assert!(distinct.len() > db0.len() / 2, "sizes should vary");
    }

    #[test]
    fn skewed_popularity_orders_databank_request_counts() {
        let platform = small_platform();
        let mut rng = SmallRng::seed_from_u64(37);
        let generator = WorkloadGenerator::new(WorkloadConfig {
            density: 1.0,
            window: 1500.0,
            scan_fraction: 1.0,
            scenario: Scenario::SkewedPopularity { exponent: 2.0 },
        });
        let jobs = generator.generate(&platform, &mut rng);
        let count = |d: usize| jobs.iter().filter(|j| j.databank == d).count();
        // Databank 0 gets the lion's share under exponent 2.
        assert!(
            count(0) > count(1),
            "zipf skew should favour databank 0: {} vs {}",
            count(0),
            count(1)
        );
    }

    #[test]
    fn adversarial_scenario_is_deterministic_and_preserves_the_job_count() {
        let platform = small_platform();
        let config = WorkloadConfig {
            density: 1.0,
            window: 100.0,
            scan_fraction: 1.0,
            scenario: Scenario::Adversarial { seed: 5, rounds: 8 },
        };
        let generator = WorkloadGenerator::new(config);
        let a = generator.generate(&platform, &mut SmallRng::seed_from_u64(41));
        let b = generator.generate(&platform, &mut SmallRng::seed_from_u64(41));
        assert_eq!(a, b, "adversarial stream must be seed-reproducible");
        // Same draw, steady family: the adversary only perturbs, never
        // adds or removes jobs.
        let steady = WorkloadGenerator::new(WorkloadConfig {
            scenario: Scenario::Steady,
            ..config
        })
        .generate(&platform, &mut SmallRng::seed_from_u64(41));
        assert_eq!(a.len(), steady.len());
        // And it actually found something more hostile than the base draw.
        let hostile =
            crate::adversary::starvation_pressure(&Instance::new(platform.clone(), a.clone()));
        let base = crate::adversary::starvation_pressure(&Instance::new(platform, steady));
        assert!(
            hostile >= base,
            "adversarial stream scores {hostile} below its base {base}"
        );
    }

    #[test]
    fn steady_scenario_field_does_not_change_the_stream() {
        // Adding the scenario field must not perturb the paper's generator:
        // the steady path draws exactly the same randoms as before.
        let platform = small_platform();
        let a = WorkloadGenerator::new(WorkloadConfig {
            density: 1.0,
            window: 200.0,
            scan_fraction: 1.0,
            scenario: Scenario::Steady,
        })
        .generate(&platform, &mut SmallRng::seed_from_u64(51));
        let b = WorkloadGenerator::new(WorkloadConfig {
            density: 1.0,
            window: 200.0,
            scan_fraction: 1.0,
            ..Default::default()
        })
        .generate(&platform, &mut SmallRng::seed_from_u64(51));
        assert_eq!(a, b);
    }
}
