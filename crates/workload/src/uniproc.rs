//! The Lemma-1 single-processor view of an instance.

/// A job of the equivalent single-processor instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UniprocJob {
    /// Index of the job (shared with the multiprocessor instance).
    pub id: usize,
    /// Release date `r_j`.
    pub release: f64,
    /// Processing time `p_j^{(1)} = W_j / Σ 1/p_i` on the equivalent machine.
    pub processing_time: f64,
    /// Original work `W_j` (kept so stretch weights stay consistent between
    /// the two views).
    pub work: f64,
}

impl UniprocJob {
    /// Stretch weight `1 / p_j` used by the single-processor heuristics.
    ///
    /// Note that weighting by `1 / p_j^{(1)}` or by `1 / W_j` only differs by
    /// the constant factor `Σ 1/p_i`, so priority orders and optimal
    /// schedules are identical under either convention.
    pub fn stretch_weight(&self) -> f64 {
        1.0 / self.processing_time
    }

    /// Deadline associated with a max-stretch objective `F`:
    /// `d_j(F) = r_j + F · p_j` (§4.3.1 with `w_j = 1/p_j`).
    pub fn deadline(&self, max_stretch: f64) -> f64 {
        self.release + max_stretch * self.processing_time
    }
}

/// The equivalent single-processor instance of Lemma 1.
#[derive(Clone, Debug, PartialEq)]
pub struct UniprocInstance {
    /// Jobs with their transformed processing times, in release-date order.
    pub jobs: Vec<UniprocJob>,
    /// Speed of the equivalent processor (`Σ 1/p_i`, in MB/s).
    pub equivalent_speed: f64,
}

impl UniprocInstance {
    /// Builds a single-processor instance directly from
    /// `(release, processing_time)` pairs — handy for tests and for the
    /// adversarial constructions of Theorems 1 and 2, which are stated on one
    /// processor.
    pub fn from_times(jobs: &[(f64, f64)]) -> Self {
        let mut jobs: Vec<UniprocJob> = jobs
            .iter()
            .enumerate()
            .map(|(id, &(release, processing_time))| {
                assert!(processing_time > 0.0, "processing time must be positive");
                assert!(release >= 0.0, "release must be nonnegative");
                UniprocJob {
                    id,
                    release,
                    processing_time,
                    work: processing_time,
                }
            })
            .collect();
        jobs.sort_by(|a, b| a.release.total_cmp(&b.release));
        for (k, j) in jobs.iter_mut().enumerate() {
            j.id = k;
        }
        UniprocInstance {
            jobs,
            equivalent_speed: 1.0,
        }
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Sum of all processing times (the makespan lower bound when all jobs
    /// are released at time 0).
    pub fn total_processing_time(&self) -> f64 {
        self.jobs.iter().map(|j| j.processing_time).sum()
    }

    /// `Δ`: ratio of the largest to the smallest processing time.
    pub fn delta(&self) -> f64 {
        if self.jobs.is_empty() {
            return 1.0;
        }
        let min = self
            .jobs
            .iter()
            .map(|j| j.processing_time)
            .fold(f64::INFINITY, f64::min);
        let max = self
            .jobs
            .iter()
            .map(|j| j.processing_time)
            .fold(0.0, f64::max);
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_times_sorts_and_renumbers() {
        let inst = UniprocInstance::from_times(&[(3.0, 1.0), (0.0, 2.0), (1.0, 4.0)]);
        let releases: Vec<f64> = inst.jobs.iter().map(|j| j.release).collect();
        assert_eq!(releases, vec![0.0, 1.0, 3.0]);
        assert_eq!(inst.num_jobs(), 3);
        assert!((inst.total_processing_time() - 7.0).abs() < 1e-12);
        assert!((inst.delta() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn deadline_formula() {
        let j = UniprocJob {
            id: 0,
            release: 10.0,
            processing_time: 2.0,
            work: 2.0,
        };
        assert!((j.deadline(3.0) - 16.0).abs() < 1e-12);
        assert!((j.stretch_weight() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_instance_delta_is_one() {
        let inst = UniprocInstance::from_times(&[]);
        assert_eq!(inst.delta(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_processing_time_rejected() {
        UniprocInstance::from_times(&[(0.0, 0.0)]);
    }
}
