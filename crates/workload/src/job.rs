//! Individual requests (jobs).

use stretch_platform::DatabankId;

/// Identifier of a job inside an [`crate::Instance`].
pub type JobId = usize;

/// A motif-comparison request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Job {
    /// Index of the job in the instance; jobs are numbered by increasing
    /// release date, as in the paper.
    pub id: JobId,
    /// Release date `r_j` in seconds.
    pub release: f64,
    /// Amount of work `W_j` in megabytes of databank to scan.
    pub work: f64,
    /// The databank this request targets (determines which processors are
    /// eligible to run it).
    pub databank: DatabankId,
}

impl Job {
    /// Creates a job with validity checks.
    pub fn new(id: JobId, release: f64, work: f64, databank: DatabankId) -> Self {
        assert!(
            release >= 0.0 && release.is_finite(),
            "release must be nonnegative"
        );
        assert!(work > 0.0 && work.is_finite(), "work must be positive");
        Job {
            id,
            release,
            work,
            databank,
        }
    }

    /// The stretch weight `w_j = 1 / W_j` used throughout the paper.
    pub fn stretch_weight(&self) -> f64 {
        1.0 / self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_is_reciprocal_of_work() {
        let j = Job::new(0, 1.0, 4.0, 0);
        assert!((j.stretch_weight() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_work_rejected() {
        Job::new(0, 0.0, 0.0, 0);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_release_rejected() {
        Job::new(0, -1.0, 1.0, 0);
    }
}
