//! Individual requests (jobs).

use stretch_platform::DatabankId;

/// Identifier of a job inside an [`crate::Instance`].
pub type JobId = usize;

/// Why a job description is invalid (submission-shaped input).
///
/// Ingestion layers (the `stretch-serve` event bus) validate submissions
/// with [`Job::try_new`] and dead-letter the offenders carrying one of these
/// reasons; internal construction sites that *know* their inputs are sound
/// keep using [`Job::new`], which aborts with the same diagnostics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JobValidationError {
    /// The release date is NaN or infinite.
    NonFiniteRelease(f64),
    /// The release date is negative.
    NegativeRelease(f64),
    /// The work is NaN or infinite.
    NonFiniteWork(f64),
    /// The work is zero or negative.
    NonPositiveWork(f64),
}

impl std::fmt::Display for JobValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobValidationError::NonFiniteRelease(r) => {
                write!(f, "release must be finite, got {r}")
            }
            JobValidationError::NegativeRelease(r) => {
                write!(f, "release must be nonnegative, got {r}")
            }
            JobValidationError::NonFiniteWork(w) => write!(f, "work must be finite, got {w}"),
            JobValidationError::NonPositiveWork(w) => {
                write!(f, "work must be positive, got {w}")
            }
        }
    }
}

impl std::error::Error for JobValidationError {}

/// A motif-comparison request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Job {
    /// Index of the job in the instance; jobs are numbered by increasing
    /// release date, as in the paper.
    pub id: JobId,
    /// Release date `r_j` in seconds.
    pub release: f64,
    /// Amount of work `W_j` in megabytes of databank to scan.
    pub work: f64,
    /// The databank this request targets (determines which processors are
    /// eligible to run it).
    pub databank: DatabankId,
}

impl Job {
    /// Creates a job with validity checks, aborting on invalid input.
    ///
    /// For inputs derived from untrusted submissions use [`Job::try_new`],
    /// which returns a typed error instead of panicking.
    pub fn new(id: JobId, release: f64, work: f64, databank: DatabankId) -> Self {
        match Self::try_new(id, release, work, databank) {
            Ok(job) => job,
            Err(
                e @ (JobValidationError::NonFiniteRelease(_)
                | JobValidationError::NegativeRelease(_)),
            ) => {
                panic!("release must be nonnegative and finite: {e}")
            }
            Err(e) => panic!("work must be positive and finite: {e}"),
        }
    }

    /// Creates a job, returning a typed error on invalid input (NaN or
    /// negative release, non-positive or non-finite work) instead of
    /// panicking — the ingestion-path counterpart of [`Job::new`].
    pub fn try_new(
        id: JobId,
        release: f64,
        work: f64,
        databank: DatabankId,
    ) -> Result<Self, JobValidationError> {
        if !release.is_finite() {
            return Err(JobValidationError::NonFiniteRelease(release));
        }
        if release < 0.0 {
            return Err(JobValidationError::NegativeRelease(release));
        }
        if !work.is_finite() {
            return Err(JobValidationError::NonFiniteWork(work));
        }
        if work <= 0.0 {
            return Err(JobValidationError::NonPositiveWork(work));
        }
        Ok(Job {
            id,
            release,
            work,
            databank,
        })
    }

    /// The stretch weight `w_j = 1 / W_j` used throughout the paper.
    pub fn stretch_weight(&self) -> f64 {
        1.0 / self.work
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_is_reciprocal_of_work() {
        let j = Job::new(0, 1.0, 4.0, 0);
        assert!((j.stretch_weight() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_work_rejected() {
        Job::new(0, 0.0, 0.0, 0);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_release_rejected() {
        Job::new(0, -1.0, 1.0, 0);
    }

    #[test]
    fn try_new_returns_typed_errors_instead_of_panicking() {
        assert!(matches!(
            Job::try_new(0, f64::NAN, 1.0, 0),
            Err(JobValidationError::NonFiniteRelease(_))
        ));
        assert!(matches!(
            Job::try_new(0, -2.0, 1.0, 0),
            Err(JobValidationError::NegativeRelease(r)) if r == -2.0
        ));
        assert!(matches!(
            Job::try_new(0, 0.0, f64::INFINITY, 0),
            Err(JobValidationError::NonFiniteWork(_))
        ));
        assert!(matches!(
            Job::try_new(0, 0.0, -1.0, 0),
            Err(JobValidationError::NonPositiveWork(w)) if w == -1.0
        ));
        assert!(Job::try_new(0, 0.0, 1.0, 0).is_ok());
    }
}
