//! A scheduling instance: one platform plus one flow of jobs.

use crate::job::{Job, JobId};
use crate::uniproc::{UniprocInstance, UniprocJob};
use stretch_platform::{Platform, ProcessorId};

/// Why a set of jobs cannot form an [`Instance`] on a given platform
/// (submission-shaped input: the serve layer dead-letters these instead of
/// aborting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstanceValidationError {
    /// A job targets a databank id the platform does not know.
    UnknownDatabank {
        /// Id of the offending job (as numbered by the caller).
        job: JobId,
        /// The unknown databank id.
        databank: usize,
    },
    /// A job targets a databank hosted by no cluster: no processor could
    /// ever execute it, so no finite stretch is achievable.
    UnhostedDatabank {
        /// Id of the offending job (as numbered by the caller).
        job: JobId,
        /// The unhosted databank id.
        databank: usize,
    },
}

impl std::fmt::Display for InstanceValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceValidationError::UnknownDatabank { job, databank } => {
                write!(f, "job {job} targets unknown databank {databank}")
            }
            InstanceValidationError::UnhostedDatabank { job, databank } => {
                write!(
                    f,
                    "job {job} targets databank {databank} which is hosted nowhere"
                )
            }
        }
    }
}

impl std::error::Error for InstanceValidationError {}

/// A complete problem instance.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The computing platform.
    pub platform: Platform,
    /// The jobs, sorted by nondecreasing release date and numbered
    /// accordingly (`jobs[k].id == k`).
    pub jobs: Vec<Job>,
}

impl Instance {
    /// Builds an instance, sorting the jobs by release date and renumbering
    /// them so that `jobs[k].id == k` (the paper's convention).
    ///
    /// Panics when a job targets a databank that no cluster hosts (such a job
    /// could never be executed).  For submission-derived job lists use
    /// [`Instance::try_new`], which reports the offender as a typed error.
    pub fn new(platform: Platform, jobs: Vec<Job>) -> Self {
        match Self::try_new(platform, jobs) {
            Ok(instance) => instance,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Instance::new`] with typed validation errors instead of panics:
    /// returns the first job whose databank is unknown to the platform or
    /// hosted nowhere.
    pub fn try_new(
        platform: Platform,
        mut jobs: Vec<Job>,
    ) -> Result<Self, InstanceValidationError> {
        for job in &jobs {
            if job.databank >= platform.num_databanks() {
                return Err(InstanceValidationError::UnknownDatabank {
                    job: job.id,
                    databank: job.databank,
                });
            }
            if platform.eligible_processors(job.databank).is_empty() {
                return Err(InstanceValidationError::UnhostedDatabank {
                    job: job.id,
                    databank: job.databank,
                });
            }
        }
        // total_cmp, not partial_cmp().unwrap(): release dates are validated
        // finite at Job construction, but a NaN smuggled in through a raw
        // struct literal must not turn a sort into a panic on this
        // ingestion-reachable path (NaNs simply sort last).
        jobs.sort_by(|a, b| a.release.total_cmp(&b.release));
        for (k, job) in jobs.iter_mut().enumerate() {
            job.id = k;
        }
        Ok(Instance { platform, jobs })
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Processors allowed to run `job` (restricted availability).
    pub fn eligible_processors(&self, job: JobId) -> Vec<ProcessorId> {
        self.platform.eligible_processors(self.jobs[job].databank)
    }

    /// `p_{i,j}`: processing time of `job` alone on `processor`, or `None`
    /// when the processor cannot serve it.
    pub fn processing_time(&self, processor: ProcessorId, job: JobId) -> Option<f64> {
        let j = &self.jobs[job];
        self.platform.processing_time(processor, j.databank, j.work)
    }

    /// Total work of the instance (MB).
    pub fn total_work(&self) -> f64 {
        self.jobs.iter().map(|j| j.work).sum()
    }

    /// `Δ`: ratio of the largest to the smallest job size (1 for an empty
    /// instance).  This is the parameter appearing in all the competitive
    /// ratios of §4.
    pub fn delta(&self) -> f64 {
        let min = self
            .jobs
            .iter()
            .map(|j| j.work)
            .fold(f64::INFINITY, f64::min);
        let max = self.jobs.iter().map(|j| j.work).fold(0.0, f64::max);
        if self.jobs.is_empty() {
            1.0
        } else {
            max / min
        }
    }

    /// `true` when every databank is replicated on every site, i.e. the
    /// instance is a *uniform* (unrestricted) one to which Lemma 1 applies
    /// exactly.
    pub fn is_fully_available(&self) -> bool {
        (0..self.platform.num_databanks())
            .all(|d| self.platform.eligible_processors(d).len() == self.platform.num_processors())
    }

    /// The Lemma-1 equivalent single-processor instance.
    ///
    /// The `m` machines are replaced by one machine of speed `Σ 1/p_i`
    /// (the platform's aggregate speed); each job keeps its release date and
    /// its processing time becomes `W_j / Σ 1/p_i`.
    ///
    /// For restricted-availability instances this transformation is still
    /// well defined but no longer exact (§3.2 and Figure 2 of the paper); the
    /// scheduler uses it as a heuristic reference in that case.
    pub fn uniprocessor_equivalent(&self) -> UniprocInstance {
        let speed = self.platform.aggregate_speed();
        let jobs = self
            .jobs
            .iter()
            .map(|j| UniprocJob {
                id: j.id,
                release: j.release,
                processing_time: j.work / speed,
                work: j.work,
            })
            .collect();
        UniprocInstance {
            jobs,
            equivalent_speed: speed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stretch_platform::fixtures::small_platform;

    fn sample_jobs() -> Vec<Job> {
        vec![
            Job::new(0, 5.0, 100.0, 0),
            Job::new(1, 0.0, 200.0, 1),
            Job::new(2, 2.0, 50.0, 0),
        ]
    }

    #[test]
    fn jobs_are_sorted_and_renumbered() {
        let inst = Instance::new(small_platform(), sample_jobs());
        let releases: Vec<f64> = inst.jobs.iter().map(|j| j.release).collect();
        assert_eq!(releases, vec![0.0, 2.0, 5.0]);
        for (k, j) in inst.jobs.iter().enumerate() {
            assert_eq!(j.id, k);
        }
    }

    #[test]
    fn eligibility_and_processing_times() {
        let inst = Instance::new(small_platform(), sample_jobs());
        // After sorting, job 0 targets databank 1 (restricted to cluster 1).
        assert_eq!(inst.jobs[0].databank, 1);
        assert_eq!(inst.eligible_processors(0), vec![2, 3]);
        assert_eq!(inst.processing_time(0, 0), None);
        assert_eq!(inst.processing_time(2, 0), Some(10.0));
    }

    #[test]
    fn delta_and_total_work() {
        let inst = Instance::new(small_platform(), sample_jobs());
        assert!((inst.delta() - 4.0).abs() < 1e-12);
        assert!((inst.total_work() - 350.0).abs() < 1e-12);
    }

    #[test]
    fn uniprocessor_equivalent_follows_lemma_1() {
        let inst = Instance::new(small_platform(), sample_jobs());
        let uni = inst.uniprocessor_equivalent();
        assert!((uni.equivalent_speed - 60.0).abs() < 1e-12);
        for (orig, transformed) in inst.jobs.iter().zip(&uni.jobs) {
            assert_eq!(orig.release, transformed.release);
            assert!((transformed.processing_time - orig.work / 60.0).abs() < 1e-12);
        }
    }

    #[test]
    fn full_availability_detection() {
        let inst = Instance::new(small_platform(), sample_jobs());
        assert!(!inst.is_fully_available());
        // An instance that only uses databank 0 is *still* not fully
        // available in the platform sense (databank 1 exists but is
        // restricted); check the platform-level predicate rather than a
        // job-level one.
        assert!(!inst.is_fully_available());
    }

    #[test]
    #[should_panic(expected = "unknown databank")]
    fn job_with_unknown_databank_rejected() {
        let job = Job::new(0, 0.0, 10.0, 17);
        Instance::new(small_platform(), vec![job]);
    }

    #[test]
    fn try_new_reports_typed_validation_errors() {
        let bad = Job::new(3, 0.0, 10.0, 17);
        let err = Instance::try_new(small_platform(), vec![bad]).unwrap_err();
        assert_eq!(
            err,
            InstanceValidationError::UnknownDatabank {
                job: 3,
                databank: 17
            }
        );
        assert!(Instance::try_new(small_platform(), sample_jobs()).is_ok());
    }
}
