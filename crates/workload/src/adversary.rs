//! A searchable workload adversary: seeded local search over job streams.
//!
//! The paper's lower-bound constructions (`stretch-core`'s
//! `adversarial` module) are hand-built for the uniprocessor model.  This
//! module *searches* for hostile streams on the real platform model
//! instead: starting from any base [`Instance`], a seeded hill-climb
//! perturbs release dates, work sizes and databank targets, keeping a
//! mutant whenever it strictly increases a caller-supplied score.
//!
//! The score is a plain `FnMut(&Instance) -> f64`, so the module stays
//! free of scheduler dependencies: callers that can afford it score with
//! the achieved-online vs. offline-clairvoyant max-stretch ratio
//! (`stretch-core`'s oracle), while workload-internal users (the
//! [`Scenario::Adversarial`](crate::Scenario) family) use the cheap
//! deterministic [`starvation_pressure`] proxy, which rewards the
//! Theorem-1 shape — small rivals released inside a large job's natural
//! execution span.
//!
//! ## Determinism
//!
//! The search is a pure function of the base instance, the
//! [`AdversaryConfig`] (including its seed) and the score function:
//! candidates are drawn from a [`SmallRng`] seeded with `config.seed`,
//! score comparisons use `total_cmp`, and non-finite scores are
//! discarded.  Re-running a search reproduces the same best stream bit
//! for bit.

use crate::instance::Instance;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Work sizes are clamped into this range across mutations so repeated
/// scaling can never underflow to a rejected non-positive size or
/// overflow to infinity.
const WORK_FLOOR: f64 = 1e-6;
const WORK_CEIL: f64 = 1e12;

/// Budget and mutation magnitudes of one adversary search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdversaryConfig {
    /// Seed of the search's private RNG; the whole search is a pure
    /// function of `(base, config, score)`.
    pub seed: u64,
    /// Hill-climb rounds; each round evaluates [`candidates`] mutants of
    /// the incumbent.
    ///
    /// [`candidates`]: AdversaryConfig::candidates
    pub rounds: u32,
    /// Mutants drawn per round.
    pub candidates: u32,
    /// Release-date shifts are drawn from `±jitter · span`, where `span`
    /// is the base stream's release span (at least 1 s).
    pub release_jitter: f64,
    /// Work mutations multiply by `work_factor^u`, `u ∈ [-1, 1]`.
    pub work_factor: f64,
}

impl Default for AdversaryConfig {
    fn default() -> Self {
        AdversaryConfig {
            seed: 0xAD5E_ED00,
            rounds: 32,
            candidates: 6,
            release_jitter: 0.25,
            work_factor: 4.0,
        }
    }
}

impl AdversaryConfig {
    /// Validates the configuration, panicking with a descriptive message
    /// on nonsense values (mirrors the generator asserts).
    pub fn validate(&self) {
        assert!(self.rounds > 0, "adversary needs at least one round");
        assert!(
            self.candidates > 0,
            "adversary needs at least one candidate per round"
        );
        assert!(
            self.release_jitter > 0.0 && self.release_jitter.is_finite(),
            "release jitter must be positive and finite, got {}",
            self.release_jitter
        );
        assert!(
            self.work_factor > 1.0 && self.work_factor.is_finite(),
            "work factor must exceed 1, got {}",
            self.work_factor
        );
    }
}

/// Outcome of one [`search`].
#[derive(Clone, Debug)]
pub struct AdversaryResult {
    /// The worst (highest-scoring) stream found, starting from the base.
    pub best: Instance,
    /// Its score.
    pub best_score: f64,
    /// Mutants scored (excluding the base).
    pub evaluations: u64,
    /// Rounds that strictly improved the incumbent.
    pub improvements: u64,
}

/// Seeded hill-climb over job streams, maximizing `score`.
///
/// Each round draws [`AdversaryConfig::candidates`] mutants of the
/// incumbent (1–3 single-job edits each: shift a release, rescale a work,
/// retarget a databank), scores them, and adopts the round's best mutant
/// when it strictly beats the incumbent under `total_cmp`.  Candidates
/// with non-finite scores are discarded.  Mutants always remain valid
/// instances: releases are clamped nonnegative, works stay within a
/// positive finite range, and databank retargets only choose databanks
/// hosted by at least one cluster.
pub fn search<F>(base: &Instance, config: AdversaryConfig, mut score: F) -> AdversaryResult
where
    F: FnMut(&Instance) -> f64,
{
    config.validate();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let hosted: Vec<usize> = (0..base.platform.num_databanks())
        .filter(|&d| !base.platform.eligible_processors(d).is_empty())
        .collect();
    let span = base
        .jobs
        .iter()
        .map(|j| j.release)
        .fold(0.0f64, f64::max)
        .max(1.0);
    let max_shift = config.release_jitter * span;

    let mut best = base.clone();
    let mut best_score = score(&best);
    let mut evaluations = 0u64;
    let mut improvements = 0u64;

    for _ in 0..config.rounds {
        let mut round_best: Option<(Instance, f64)> = None;
        for _ in 0..config.candidates {
            let mut jobs = best.jobs.clone();
            if jobs.is_empty() {
                break;
            }
            let edits = rng.gen_range(1..4usize);
            for _ in 0..edits {
                let pick = rng.gen_range(0..jobs.len());
                let job = &mut jobs[pick];
                match rng.gen_range(0..3usize) {
                    0 => {
                        let shift = rng.gen_range(-max_shift..=max_shift);
                        job.release = (job.release + shift).max(0.0);
                    }
                    1 => {
                        let factor = config.work_factor.powf(rng.gen_range(-1.0..=1.0));
                        job.work = (job.work * factor).clamp(WORK_FLOOR, WORK_CEIL);
                    }
                    _ => {
                        if !hosted.is_empty() {
                            job.databank = hosted[rng.gen_range(0..hosted.len())];
                        }
                    }
                }
            }
            let Ok(candidate) = Instance::try_new(best.platform.clone(), jobs) else {
                continue;
            };
            let s = score(&candidate);
            evaluations += 1;
            if !s.is_finite() {
                continue;
            }
            let beats_round = match &round_best {
                Some((_, incumbent)) => s.total_cmp(incumbent) == std::cmp::Ordering::Greater,
                None => true,
            };
            if beats_round {
                round_best = Some((candidate, s));
            }
        }
        if let Some((candidate, s)) = round_best {
            if s.total_cmp(&best_score) == std::cmp::Ordering::Greater {
                best = candidate;
                best_score = s;
                improvements += 1;
            }
        }
    }

    AdversaryResult {
        best,
        best_score,
        evaluations,
        improvements,
    }
}

/// Deterministic, scheduler-free hostility proxy: the Theorem-1
/// starvation pressure of a stream.
///
/// For each job `j`, rivals released inside `j`'s natural execution span
/// (`W_j` over the platform's aggregate speed) force a conflict: either
/// `j` starves behind them or they inflate their own stretch waiting for
/// `j`.  Each rival contributes the ratio of its overlap with `j`'s span
/// to its own natural span (small rivals hurt more — stretch is
/// work-normalised); the proxy is the worst per-job total.  Pure
/// arithmetic fold over the job list, no RNG, no scheduler.
pub fn starvation_pressure(instance: &Instance) -> f64 {
    let speed = instance.platform.aggregate_speed();
    let mut worst = 0.0f64;
    for j in &instance.jobs {
        let end = j.release + j.work / speed;
        let mut pressure = 1.0;
        for k in &instance.jobs {
            if k.id != j.id && k.release >= j.release && k.release < end {
                let rival_span = (k.work / speed).max(f64::MIN_POSITIVE);
                pressure += (end - k.release) / rival_span;
            }
        }
        worst = worst.max(pressure);
    }
    worst
}

/// Derives a per-instance adversary seed from a scenario-level seed and a
/// generator draw (splitmix64 finalizer over the XOR), so distinct
/// instances of one campaign explore different neighbourhoods while each
/// stays individually reproducible.
pub fn mix_seed(scenario_seed: u64, draw: u64) -> u64 {
    let mut z = scenario_seed ^ draw;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use stretch_platform::fixtures::small_platform;

    fn base_instance() -> Instance {
        let jobs = vec![
            Job::new(0, 0.0, 300.0, 0),
            Job::new(1, 1.0, 60.0, 1),
            Job::new(2, 3.0, 120.0, 0),
            Job::new(3, 5.0, 30.0, 1),
            Job::new(4, 8.0, 90.0, 0),
        ];
        Instance::new(small_platform(), jobs)
    }

    #[test]
    fn search_is_deterministic_under_a_fixed_seed() {
        let base = base_instance();
        let config = AdversaryConfig {
            rounds: 8,
            ..Default::default()
        };
        let a = search(&base, config, starvation_pressure);
        let b = search(&base, config, starvation_pressure);
        assert_eq!(a.best_score.to_bits(), b.best_score.to_bits());
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.improvements, b.improvements);
        assert_eq!(a.best.jobs, b.best.jobs);
    }

    #[test]
    fn search_never_loses_ground_and_usually_gains() {
        let base = base_instance();
        let start = starvation_pressure(&base);
        let result = search(&base, AdversaryConfig::default(), starvation_pressure);
        assert!(result.best_score >= start);
        // 32 rounds × 6 candidates on a 5-job stream: the hill-climb
        // finds *some* improvement (the base stream is far from a
        // starvation worst case).
        assert!(result.improvements > 0, "no improving round found");
        assert!(result.best_score > start, "score did not improve");
    }

    #[test]
    fn mutants_stay_valid_instances() {
        let base = base_instance();
        let config = AdversaryConfig {
            rounds: 40,
            candidates: 8,
            ..Default::default()
        };
        let result = search(&base, config, starvation_pressure);
        assert_eq!(result.best.num_jobs(), base.num_jobs());
        for (k, j) in result.best.jobs.iter().enumerate() {
            assert_eq!(j.id, k);
            assert!(j.release >= 0.0 && j.release.is_finite());
            assert!(j.work > 0.0 && j.work.is_finite());
            assert!(!result.best.eligible_processors(k).is_empty());
        }
        for w in result.best.jobs.windows(2) {
            assert!(w[0].release <= w[1].release);
        }
    }

    #[test]
    fn starvation_pressure_rewards_the_theorem_1_shape() {
        // One large job swarmed by small rivals inside its span must score
        // higher than the same jobs spread far apart.
        let platform = small_platform();
        let swarmed = Instance::new(
            platform.clone(),
            vec![
                Job::new(0, 0.0, 300.0, 0),
                Job::new(1, 0.5, 10.0, 0),
                Job::new(2, 1.0, 10.0, 0),
                Job::new(3, 1.5, 10.0, 0),
            ],
        );
        let spread = Instance::new(
            platform,
            vec![
                Job::new(0, 0.0, 300.0, 0),
                Job::new(1, 100.0, 10.0, 0),
                Job::new(2, 200.0, 10.0, 0),
                Job::new(3, 300.0, 10.0, 0),
            ],
        );
        assert!(starvation_pressure(&swarmed) > starvation_pressure(&spread));
    }

    #[test]
    fn mix_seed_separates_nearby_inputs() {
        assert_ne!(mix_seed(1, 0), mix_seed(2, 0));
        assert_ne!(mix_seed(1, 0), mix_seed(1, 1));
        assert_eq!(mix_seed(7, 9), mix_seed(7, 9));
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let config = AdversaryConfig {
            rounds: 0,
            ..Default::default()
        };
        search(&base_instance(), config, starvation_pressure);
    }
}
