//! High-level LP builder on top of the raw simplex.
//!
//! [`Problem`] owns named nonnegative variables, an objective sense and a list
//! of constraints stated either as coefficient slices or as
//! [`LinExpr`] expressions.  It can be solved in
//! floating-point mode ([`Problem::solve`]) or in exact rational mode
//! ([`Problem::solve_exact`]); both return the same [`Solution`] shape.

use crate::expr::{LinExpr, VarId};
use crate::rational::Ratio;
use crate::scalar::LpScalar;
use crate::simplex::{RowRelation, SimplexOutcome, SimplexSolver};

/// Optimisation direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sense {
    /// Minimise the objective.
    Minimize,
    /// Maximise the objective.
    Maximize,
}

/// Constraint relation, re-exported at the builder level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

impl From<Relation> for RowRelation {
    fn from(r: Relation) -> Self {
        match r {
            Relation::Le => RowRelation::Le,
            Relation::Ge => RowRelation::Ge,
            Relation::Eq => RowRelation::Eq,
        }
    }
}

/// Errors returned by [`Problem::solve`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimisation direction.
    Unbounded,
    /// The pivot budget was exhausted (numerical trouble).
    IterationLimit,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "linear program is infeasible"),
            SolveError::Unbounded => write!(f, "linear program is unbounded"),
            SolveError::IterationLimit => write!(f, "simplex pivot limit exhausted"),
        }
    }
}

impl std::error::Error for SolveError {}

/// A solved LP: variable values and objective in the *user's* sense.
#[derive(Clone, Debug, PartialEq)]
pub struct Solution {
    /// Value of every structural variable, indexed by [`VarId`].
    pub values: Vec<f64>,
    /// Objective value in the direction requested by the user.
    pub objective: f64,
}

impl Solution {
    /// Value of one variable.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var]
    }
}

#[derive(Clone, Debug)]
struct Constraint {
    expr: LinExpr,
    relation: Relation,
    rhs: f64,
}

/// An LP under construction.
#[derive(Clone, Debug)]
pub struct Problem {
    sense: Sense,
    names: Vec<String>,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates an empty problem with the given optimisation direction.
    pub fn new(sense: Sense) -> Self {
        Problem {
            sense,
            names: Vec::new(),
            objective: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Adds a nonnegative variable and returns its id.
    pub fn add_var(&mut self, name: impl Into<String>) -> VarId {
        self.names.push(name.into());
        self.objective.push(0.0);
        self.names.len() - 1
    }

    /// Adds `count` anonymous variables, returning the id of the first one.
    pub fn add_vars(&mut self, count: usize, prefix: &str) -> VarId {
        let first = self.names.len();
        for k in 0..count {
            self.add_var(format!("{prefix}{k}"));
        }
        first
    }

    /// Number of variables added so far.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.names[var]
    }

    /// Sets (overwrites) the objective coefficient of `var`.
    pub fn set_objective_coeff(&mut self, var: VarId, coeff: f64) {
        self.objective[var] = coeff;
    }

    /// Adds `coeff` to the objective coefficient of `var`.
    pub fn add_objective_coeff(&mut self, var: VarId, coeff: f64) {
        self.objective[var] += coeff;
    }

    /// Adds the constraint `expr relation rhs`.
    ///
    /// Any constant part of `expr` is folded into the right-hand side.
    pub fn add_constraint(&mut self, expr: LinExpr, relation: Relation, rhs: f64) {
        let adjusted_rhs = rhs - expr.constant_part();
        self.constraints.push(Constraint {
            expr,
            relation,
            rhs: adjusted_rhs,
        });
    }

    /// Convenience: adds a constraint from `(var, coeff)` pairs.
    pub fn add_constraint_coeffs(&mut self, coeffs: &[(VarId, f64)], relation: Relation, rhs: f64) {
        let mut e = LinExpr::new();
        for &(v, c) in coeffs {
            e.add_term(v, c);
        }
        self.add_constraint(e, relation, rhs);
    }

    /// Constrains `var <= bound`.
    pub fn add_upper_bound(&mut self, var: VarId, bound: f64) {
        self.add_constraint(LinExpr::term(var, 1.0), Relation::Le, bound);
    }

    /// Constrains `var >= bound`.
    pub fn add_lower_bound(&mut self, var: VarId, bound: f64) {
        self.add_constraint(LinExpr::term(var, 1.0), Relation::Ge, bound);
    }

    fn build_solver<S: LpScalar>(&self) -> SimplexSolver<S> {
        let n = self.num_vars();
        let mut solver = SimplexSolver::<S>::new(n);
        let direction = match self.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        for (j, &c) in self.objective.iter().enumerate() {
            if c != 0.0 {
                solver.set_objective(j, S::from_f64(direction * c));
            }
        }
        for c in &self.constraints {
            let mut row = vec![S::zero(); n];
            for (v, coeff) in c.expr.terms() {
                row[v] = S::from_f64(coeff);
            }
            solver.add_row(row, c.relation.into(), S::from_f64(c.rhs));
        }
        solver
    }

    fn outcome_to_solution<S: LpScalar>(
        &self,
        outcome: SimplexOutcome<S>,
    ) -> Result<Solution, SolveError> {
        match outcome {
            SimplexOutcome::Optimal { values, objective } => {
                let sign = match self.sense {
                    Sense::Minimize => 1.0,
                    Sense::Maximize => -1.0,
                };
                Ok(Solution {
                    values: values.iter().map(|v| v.to_f64()).collect(),
                    objective: sign * objective.to_f64(),
                })
            }
            SimplexOutcome::Infeasible => Err(SolveError::Infeasible),
            SimplexOutcome::Unbounded => Err(SolveError::Unbounded),
            SimplexOutcome::IterationLimit => Err(SolveError::IterationLimit),
        }
    }

    /// Solves the LP in floating-point arithmetic.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        let solver = self.build_solver::<f64>();
        self.outcome_to_solution(solver.solve())
    }

    /// Solves the LP in exact rational arithmetic (`i128` rationals).
    ///
    /// Input coefficients are converted from `f64` through a continued
    /// fraction approximation with denominators up to 10⁹, which is exact for
    /// every value that was itself derived from small rationals.
    pub fn solve_exact(&self) -> Result<Solution, SolveError> {
        let solver = self.build_solver::<Ratio>();
        self.outcome_to_solution(solver.solve())
    }

    /// Checks that `solution` satisfies every constraint within `tol`.
    pub fn is_feasible(&self, solution: &[f64], tol: f64) -> bool {
        if solution.len() < self.num_vars() {
            return false;
        }
        if solution[..self.num_vars()].iter().any(|&v| v < -tol) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs = c.expr.eval(solution) - c.expr.constant_part();
            match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.set_objective_coeff(x, 3.0);
        p.set_objective_coeff(y, 2.0);
        p.add_constraint_coeffs(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        p.add_constraint_coeffs(&[(x, 1.0), (y, 3.0)], Relation::Le, 6.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective - 12.0).abs() < 1e-9);
        assert!(p.is_feasible(&sol.values, 1e-7));
    }

    #[test]
    fn minimisation_with_bounds() {
        // min x + 2y s.t. x + y >= 3, y <= 1  ->  y = 1, x = 2, obj = 4
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.set_objective_coeff(x, 1.0);
        p.set_objective_coeff(y, 2.0);
        p.add_constraint_coeffs(&[(x, 1.0), (y, 1.0)], Relation::Ge, 3.0);
        p.add_upper_bound(y, 1.0);
        let sol = p.solve().unwrap();
        // Putting everything on x is cheaper: x = 3, y = 0, obj = 3.
        assert!((sol.objective - 3.0).abs() < 1e-7);
    }

    #[test]
    fn constant_in_expression_folds_into_rhs() {
        // (x + 1) <= 3  <=>  x <= 2 ; minimise -x -> x = 2
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x");
        p.set_objective_coeff(x, 1.0);
        let mut e = LinExpr::term(x, 1.0);
        e.add_constant(1.0);
        p.add_constraint(e, Relation::Le, 3.0);
        let sol = p.solve().unwrap();
        assert!((sol.value(x) - 2.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_and_unbounded_errors() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        p.add_lower_bound(x, 2.0);
        p.add_upper_bound(x, 1.0);
        assert_eq!(p.solve(), Err(SolveError::Infeasible));

        let mut q = Problem::new(Sense::Maximize);
        let y = q.add_var("y");
        q.set_objective_coeff(y, 1.0);
        q.add_lower_bound(y, 0.0);
        assert_eq!(q.solve(), Err(SolveError::Unbounded));
    }

    #[test]
    fn exact_matches_float_on_small_lp() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.set_objective_coeff(x, 1.0);
        p.set_objective_coeff(y, 1.0);
        p.add_constraint_coeffs(&[(x, 2.0), (y, 1.0)], Relation::Ge, 4.0);
        p.add_constraint_coeffs(&[(x, 1.0), (y, 3.0)], Relation::Ge, 6.0);
        let f = p.solve().unwrap();
        let e = p.solve_exact().unwrap();
        assert!((f.objective - e.objective).abs() < 1e-7);
    }

    #[test]
    fn anonymous_variable_block() {
        let mut p = Problem::new(Sense::Minimize);
        let first = p.add_vars(5, "alpha_");
        assert_eq!(p.num_vars(), 5);
        assert_eq!(p.var_name(first), "alpha_0");
        assert_eq!(p.var_name(first + 4), "alpha_4");
    }

    #[test]
    fn feasibility_checker_rejects_violations() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        p.add_upper_bound(x, 1.0);
        assert!(p.is_feasible(&[0.5], 1e-9));
        assert!(!p.is_feasible(&[2.0], 1e-9));
        assert!(!p.is_feasible(&[-0.5], 1e-9));
        assert!(!p.is_feasible(&[], 1e-9));
    }
}
