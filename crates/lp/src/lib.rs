//! # stretch-lp
//!
//! A small, self-contained linear-programming tool-kit used by the
//! `stretch-sched` workspace to solve the two linear programs of
//! *Minimizing the stretch when scheduling flows of biological requests*
//! (Legrand, Su, Vivien — SPAA 2006):
//!
//! * **System (1)** — minimise the max-stretch objective `F` subject to
//!   deadline-scheduling feasibility over epochal intervals;
//! * **System (2)** — minimise a rational relaxation of the sum-stretch
//!   subject to the optimal max-stretch deadlines.
//!
//! The crate deliberately has **no dependencies**.  It provides:
//!
//! * [`problem::Problem`] — a builder API for LPs (variables, linear
//!   expressions, `<=`/`>=`/`=` constraints, minimise/maximise),
//! * [`simplex`] — a dense two-phase primal simplex, generic over the
//!   [`scalar::LpScalar`] trait,
//! * [`rational::Ratio`] — an exact `i128` rational number type, so that the
//!   same simplex can be run in exact arithmetic (this addresses the
//!   floating-point milestone-precision issue reported in §5.3 of the paper),
//! * [`expr::LinExpr`] — sparse linear expressions used to state constraints.
//!
//! ## Quick example
//!
//! ```
//! use stretch_lp::problem::{Problem, Sense, Relation};
//!
//! // maximise 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6,  x,y >= 0
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_var("x");
//! let y = p.add_var("y");
//! p.set_objective_coeff(x, 3.0);
//! p.set_objective_coeff(y, 2.0);
//! p.add_constraint_coeffs(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
//! p.add_constraint_coeffs(&[(x, 1.0), (y, 3.0)], Relation::Le, 6.0);
//! let sol = p.solve().expect("solvable");
//! assert!((sol.objective - 12.0).abs() < 1e-9); // x = 4, y = 0
//! ```

pub mod expr;
pub mod problem;
pub mod rational;
pub mod scalar;
pub mod simplex;

pub use expr::LinExpr;
pub use problem::{Problem, Relation, Sense, Solution, SolveError};
pub use rational::Ratio;
pub use scalar::LpScalar;
pub use simplex::{SimplexOutcome, SimplexSolver};
