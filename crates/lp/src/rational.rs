//! Exact rational arithmetic over `i128`.
//!
//! The off-line optimal max-stretch computation of the paper performs a
//! binary search over *milestones* — values of the objective `F` at which the
//! relative order of release dates and deadlines changes.  When two milestones
//! are extremely close, floating-point rounding can merge them and the search
//! may miss the optimal interval (the paper reports exactly this anomaly in
//! §5.3).  Running the simplex over [`Ratio`] removes the issue for instances
//! small enough that the numerators and denominators fit in `i128`.
//!
//! Every operation reduces the fraction with a gcd, and the sign is carried by
//! the numerator (the denominator is always strictly positive).  Overflow is
//! detected with checked arithmetic and reported by panicking with a clear
//! message; the exact solver is only meant for small calibration instances.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num / den` with `den > 0`, always reduced.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i128,
    den: i128,
}

/// Greatest common divisor (always nonnegative).
fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    /// The rational zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Builds `num / den`, panicking if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "Ratio with zero denominator");
        let mut r = Ratio { num, den };
        r.reduce();
        r
    }

    /// Builds the integer `n / 1`.
    pub fn from_int(n: i128) -> Self {
        Ratio { num: n, den: 1 }
    }

    /// Approximates an `f64` by a rational with denominator at most `max_den`.
    ///
    /// Uses the Stern–Brocot / continued-fraction expansion.  This is only
    /// used to import measured floating-point quantities into the exact
    /// solver, so a modest `max_den` (e.g. `1_000_000`) is plenty.
    pub fn approximate(value: f64, max_den: i128) -> Self {
        assert!(value.is_finite(), "cannot approximate a non-finite value");
        assert!(max_den >= 1);
        let negative = value < 0.0;
        let mut x = value.abs();
        // Continued fraction convergents p_k / q_k.
        let (mut p0, mut q0, mut p1, mut q1) = (0i128, 1i128, 1i128, 0i128);
        for _ in 0..64 {
            let a = x.floor();
            if a > i64::MAX as f64 {
                break;
            }
            let a_i = a as i128;
            let p2 = match a_i.checked_mul(p1).and_then(|v| v.checked_add(p0)) {
                Some(v) => v,
                None => break,
            };
            let q2 = match a_i.checked_mul(q1).and_then(|v| v.checked_add(q0)) {
                Some(v) => v,
                None => break,
            };
            if q2 > max_den {
                break;
            }
            p0 = p1;
            q0 = q1;
            p1 = p2;
            q1 = q2;
            let frac = x - a;
            if frac < 1e-15 {
                break;
            }
            x = 1.0 / frac;
        }
        if q1 == 0 {
            return Ratio::ZERO;
        }
        let mut r = Ratio::new(p1, q1);
        if negative {
            r = -r;
        }
        r
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always strictly positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Converts to `f64` (possibly losing precision).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// `true` iff the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Absolute value.
    pub fn abs(&self) -> Ratio {
        Ratio {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse; panics on zero.
    pub fn recip(&self) -> Ratio {
        assert!(self.num != 0, "division by zero Ratio");
        let sign = if self.num < 0 { -1 } else { 1 };
        Ratio {
            num: sign * self.den,
            den: self.num.abs(),
        }
    }

    fn reduce(&mut self) {
        if self.den < 0 {
            self.num = -self.num;
            self.den = -self.den;
        }
        if self.num == 0 {
            self.den = 1;
            return;
        }
        let g = gcd(self.num, self.den);
        self.num /= g;
        self.den /= g;
    }

    fn checked(a: Option<i128>, what: &str) -> i128 {
        a.unwrap_or_else(|| panic!("Ratio overflow during {what}"))
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<i64> for Ratio {
    fn from(n: i64) -> Self {
        Ratio::from_int(n as i128)
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        // a/b + c/d = (a d + c b) / (b d); reduce b,d by their gcd first to
        // keep intermediate products small.
        let g = gcd(self.den, rhs.den);
        let lhs_den = self.den / g;
        let rhs_den = rhs.den / g;
        let num = Ratio::checked(
            self.num
                .checked_mul(rhs_den)
                .and_then(|x| rhs.num.checked_mul(lhs_den).and_then(|y| x.checked_add(y))),
            "addition",
        );
        let den = Ratio::checked(self.den.checked_mul(rhs_den), "addition");
        Ratio::new(num, den)
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        self + (-rhs)
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        // Cross-reduce before multiplying to limit growth.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = Ratio::checked((self.num / g1).checked_mul(rhs.num / g2), "multiplication");
        let den = Ratio::checked((self.den / g2).checked_mul(rhs.den / g1), "multiplication");
        Ratio::new(num, den)
    }
}

impl Div for Ratio {
    type Output = Ratio;
    // Division via the reciprocal is the intended arithmetic here.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Ratio) -> Ratio {
        self * rhs.recip()
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        *self = *self + rhs;
    }
}
impl SubAssign for Ratio {
    fn sub_assign(&mut self, rhs: Ratio) {
        *self = *self - rhs;
    }
}
impl MulAssign for Ratio {
    fn mul_assign(&mut self, rhs: Ratio) {
        *self = *self * rhs;
    }
}
impl DivAssign for Ratio {
    fn div_assign(&mut self, rhs: Ratio) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // Compare a/b ? c/d  <=>  a d ? c b  (b, d > 0).
        let lhs = Ratio::checked(self.num.checked_mul(other.den), "comparison");
        let rhs = Ratio::checked(other.num.checked_mul(self.den), "comparison");
        lhs.cmp(&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        let r = Ratio::new(6, -8);
        assert_eq!(r.numer(), -3);
        assert_eq!(r.denom(), 4);
    }

    #[test]
    fn zero_normalises_denominator() {
        let r = Ratio::new(0, -17);
        assert_eq!(r, Ratio::ZERO);
        assert_eq!(r.denom(), 1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Ratio::new(1, 3);
        let b = Ratio::new(1, 6);
        assert_eq!(a + b, Ratio::new(1, 2));
        assert_eq!(a - b, Ratio::new(1, 6));
        assert_eq!(a * b, Ratio::new(1, 18));
        assert_eq!(a / b, Ratio::from_int(2));
        assert_eq!(-a, Ratio::new(-1, 3));
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::ZERO);
        assert!(Ratio::new(7, 3) > Ratio::from_int(2));
    }

    #[test]
    fn recip_and_signs() {
        assert_eq!(Ratio::new(-2, 5).recip(), Ratio::new(-5, 2));
        assert!(Ratio::new(-1, 7).is_negative());
        assert!(Ratio::new(1, 7).is_positive());
        assert!(Ratio::ZERO.is_zero());
    }

    #[test]
    fn approximate_simple_fractions() {
        assert_eq!(Ratio::approximate(0.5, 1000), Ratio::new(1, 2));
        assert_eq!(Ratio::approximate(0.25, 1000), Ratio::new(1, 4));
        assert_eq!(Ratio::approximate(-1.5, 1000), Ratio::new(-3, 2));
        let pi = Ratio::approximate(std::f64::consts::PI, 1_000_000);
        assert!((pi.to_f64() - std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Ratio::new(3, 4)), "3/4");
        assert_eq!(format!("{}", Ratio::from_int(5)), "5");
    }
}
