//! The numeric abstraction the simplex is generic over.
//!
//! Two implementations are provided: `f64` (tolerance-based comparisons, used
//! for all the simulation sweeps) and [`crate::rational::Ratio`] (exact
//! comparisons, used for small calibration instances and for the ablation
//! study on the milestone-precision anomaly).

use crate::rational::Ratio;
use std::fmt::Debug;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Numeric type usable by the dense simplex.
///
/// The comparison helpers (`is_positive`, …) encapsulate the tolerance policy:
/// floating point uses an absolute epsilon, exact rationals compare exactly.
pub trait LpScalar:
    Clone
    + Debug
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// Conversion from `f64` (may approximate for exact types).
    fn from_f64(v: f64) -> Self;
    /// Conversion to `f64` (may lose precision for exact types).
    fn to_f64(&self) -> f64;
    /// Strictly positive beyond tolerance.
    fn is_positive(&self) -> bool;
    /// Strictly negative beyond tolerance.
    fn is_negative(&self) -> bool;
    /// Zero within tolerance.
    fn is_zero(&self) -> bool {
        !self.is_positive() && !self.is_negative()
    }
    /// Absolute value.
    fn abs_val(&self) -> Self;
}

/// Absolute tolerance used by the `f64` implementation.
pub const F64_EPS: f64 = 1e-9;

impl LpScalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(&self) -> f64 {
        *self
    }
    fn is_positive(&self) -> bool {
        *self > F64_EPS
    }
    fn is_negative(&self) -> bool {
        *self < -F64_EPS
    }
    fn abs_val(&self) -> Self {
        self.abs()
    }
}

impl LpScalar for Ratio {
    fn zero() -> Self {
        Ratio::ZERO
    }
    fn one() -> Self {
        Ratio::ONE
    }
    fn from_f64(v: f64) -> Self {
        Ratio::approximate(v, 1_000_000_000)
    }
    fn to_f64(&self) -> f64 {
        Ratio::to_f64(self)
    }
    fn is_positive(&self) -> bool {
        Ratio::is_positive(self)
    }
    fn is_negative(&self) -> bool {
        Ratio::is_negative(self)
    }
    fn abs_val(&self) -> Self {
        Ratio::abs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_tolerance() {
        assert!(!LpScalar::is_positive(&1e-12));
        assert!(LpScalar::is_positive(&1e-6));
        assert!(LpScalar::is_zero(&-1e-12));
        assert!(LpScalar::is_negative(&-1e-6));
    }

    #[test]
    fn ratio_exactness() {
        let tiny = Ratio::new(1, i64::MAX as i128);
        assert!(LpScalar::is_positive(&tiny));
        assert!(LpScalar::is_zero(&Ratio::ZERO));
    }

    #[test]
    fn conversions_roundtrip() {
        let x = <f64 as LpScalar>::from_f64(2.5);
        assert_eq!(x.to_f64(), 2.5);
        let r = <Ratio as LpScalar>::from_f64(2.5);
        assert_eq!(r, Ratio::new(5, 2));
    }
}
