//! A dense, two-phase, full-tableau primal simplex.
//!
//! The solver is generic over [`LpScalar`], so the very same pivoting code is
//! used in fast floating-point mode (`f64`) and in exact rational mode
//! ([`crate::rational::Ratio`]).
//!
//! The implementation follows the textbook recipe:
//!
//! 1. rows are normalised so every right-hand side is nonnegative;
//! 2. slack variables are added for `<=` rows, surplus + artificial variables
//!    for `>=` rows and artificial variables for `=` rows;
//! 3. *phase 1* minimises the sum of artificial variables (a positive optimum
//!    means the LP is infeasible); basic artificial variables are then driven
//!    out of the basis (redundant rows are dropped);
//! 4. *phase 2* minimises the user objective, with artificial columns barred
//!    from entering the basis.
//!
//! Dantzig's rule is used for speed, with an automatic switch to Bland's rule
//! after a while to guarantee termination on degenerate instances.

use crate::scalar::LpScalar;

/// Relation of a raw constraint row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowRelation {
    /// `Σ a_j x_j <= b`
    Le,
    /// `Σ a_j x_j >= b`
    Ge,
    /// `Σ a_j x_j = b`
    Eq,
}

/// Result of a simplex run.
#[derive(Clone, Debug, PartialEq)]
pub enum SimplexOutcome<S> {
    /// An optimal basic feasible solution was found.
    Optimal {
        /// Value of each structural (user) variable.
        values: Vec<S>,
        /// Objective value (in the *minimisation* sense used internally).
        objective: S,
    },
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// The pivot limit was hit (should not happen with Bland's rule; kept as a
    /// defensive outcome instead of looping forever).
    IterationLimit,
}

/// A dense LP in "raw" form: minimise `c·x` subject to rows `a·x (<=,>=,=) b`
/// and `x >= 0`.
#[derive(Clone, Debug)]
pub struct SimplexSolver<S> {
    num_vars: usize,
    objective: Vec<S>,
    rows: Vec<(Vec<S>, RowRelation, S)>,
    max_pivots: usize,
}

impl<S: LpScalar> SimplexSolver<S> {
    /// Creates a solver for `num_vars` nonnegative structural variables with a
    /// zero objective.
    pub fn new(num_vars: usize) -> Self {
        SimplexSolver {
            num_vars,
            objective: vec![S::zero(); num_vars],
            rows: Vec::new(),
            max_pivots: 0,
        }
    }

    /// Sets the coefficient of variable `var` in the minimised objective.
    pub fn set_objective(&mut self, var: usize, coeff: S) {
        assert!(var < self.num_vars, "objective variable out of range");
        self.objective[var] = coeff;
    }

    /// Adds a constraint row. `coeffs` must have exactly `num_vars` entries.
    pub fn add_row(&mut self, coeffs: Vec<S>, relation: RowRelation, rhs: S) {
        assert_eq!(coeffs.len(), self.num_vars, "row width mismatch");
        self.rows.push((coeffs, relation, rhs));
    }

    /// Overrides the automatic pivot limit (mainly for tests).
    pub fn set_max_pivots(&mut self, limit: usize) {
        self.max_pivots = limit;
    }

    /// Number of constraint rows currently loaded.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Runs the two-phase simplex and returns the outcome.
    pub fn solve(&self) -> SimplexOutcome<S> {
        let m = self.rows.len();
        let n = self.num_vars;

        // ---- Build the augmented tableau -----------------------------------
        // Column layout: [structural 0..n | slack/surplus | artificial | rhs]
        let mut slack_count = 0usize;
        let mut artificial_count = 0usize;
        for (_, rel, _) in &self.rows {
            match rel {
                RowRelation::Le | RowRelation::Ge => slack_count += 1,
                RowRelation::Eq => {}
            }
            match rel {
                RowRelation::Ge | RowRelation::Eq => artificial_count += 1,
                RowRelation::Le => {}
            }
        }
        // A `<=` row with negative rhs flips into a `>=` row, which needs an
        // artificial; reserve conservatively for both cases.
        let total_cols = n + slack_count + m + 1; // upper bound on columns + rhs
        let _ = artificial_count;

        let mut tableau: Vec<Vec<S>> = Vec::with_capacity(m);
        let mut basis: Vec<usize> = vec![usize::MAX; m];
        let mut next_slack = n;
        let mut artificial_cols: Vec<usize> = Vec::new();
        // Artificial columns are assigned after all slack columns; we first
        // need to know how many slack columns we really use, so lay rows out
        // in two passes.
        struct RowPlan<S> {
            coeffs: Vec<S>,
            rhs: S,
            slack_sign: Option<S>, // +1 for <=, -1 for >=
            needs_artificial: bool,
        }
        let mut plans: Vec<RowPlan<S>> = Vec::with_capacity(m);
        for (coeffs, rel, rhs) in &self.rows {
            let mut coeffs = coeffs.clone();
            let mut rhs = rhs.clone();
            let mut rel = *rel;
            if rhs.is_negative() {
                for c in coeffs.iter_mut() {
                    *c = -c.clone();
                }
                rhs = -rhs;
                rel = match rel {
                    RowRelation::Le => RowRelation::Ge,
                    RowRelation::Ge => RowRelation::Le,
                    RowRelation::Eq => RowRelation::Eq,
                };
            }
            let (slack_sign, needs_artificial) = match rel {
                RowRelation::Le => (Some(S::one()), false),
                RowRelation::Ge => (Some(-S::one()), true),
                RowRelation::Eq => (None, true),
            };
            plans.push(RowPlan {
                coeffs,
                rhs,
                slack_sign,
                needs_artificial,
            });
        }
        let used_slacks = plans.iter().filter(|p| p.slack_sign.is_some()).count();
        let first_artificial = n + used_slacks;
        let mut next_artificial = first_artificial;

        for (i, plan) in plans.into_iter().enumerate() {
            let mut row = vec![S::zero(); total_cols];
            for (j, c) in plan.coeffs.into_iter().enumerate() {
                row[j] = c;
            }
            if let Some(sign) = plan.slack_sign {
                let col = next_slack;
                next_slack += 1;
                let is_plain_slack = sign == S::one();
                row[col] = sign;
                if is_plain_slack {
                    basis[i] = col;
                }
            }
            if plan.needs_artificial {
                let col = next_artificial;
                next_artificial += 1;
                row[col] = S::one();
                basis[i] = col;
                artificial_cols.push(col);
            }
            let rhs_col = total_cols - 1;
            row[rhs_col] = plan.rhs;
            tableau.push(row);
        }
        let num_cols = next_artificial; // structural + slack + artificial
        let rhs_col = total_cols - 1;
        let is_artificial = |col: usize| col >= first_artificial;

        let max_pivots = if self.max_pivots > 0 {
            self.max_pivots
        } else {
            200 * (m + num_cols) + 20_000
        };

        // ---- Phase 1: minimise the sum of artificials -----------------------
        if !artificial_cols.is_empty() {
            let mut phase1_cost = vec![S::zero(); num_cols];
            for &col in &artificial_cols {
                phase1_cost[col] = S::one();
            }
            // Infeasibility threshold: the phase-1 optimum of a feasible
            // system is exactly zero, but floating-point drift scales with the
            // magnitude of the right-hand sides, so the cut-off must too.
            let rhs_scale: f64 = tableau
                .iter()
                .map(|row| row[rhs_col].to_f64().abs())
                .sum::<f64>()
                .max(1.0);
            match run_phases(
                &mut tableau,
                &mut basis,
                &phase1_cost,
                num_cols,
                rhs_col,
                max_pivots,
                &|_| false, // nothing barred in phase 1
            ) {
                PhaseResult::Optimal(obj) => {
                    if obj.is_positive() && obj.to_f64() > 1e-7 * rhs_scale {
                        return SimplexOutcome::Infeasible;
                    }
                }
                PhaseResult::Unbounded => {
                    // Phase-1 objective is bounded below by zero; unbounded
                    // here means a numerical problem — report infeasible.
                    return SimplexOutcome::Infeasible;
                }
                PhaseResult::IterationLimit => return SimplexOutcome::IterationLimit,
            }

            // Drive basic artificial variables out of the basis.
            let mut r = 0usize;
            while r < tableau.len() {
                if is_artificial(basis[r]) {
                    // Find a non-artificial column with a nonzero pivot.
                    let pivot_col = tableau[r][..first_artificial]
                        .iter()
                        .position(|cell| !cell.is_zero());
                    match pivot_col {
                        Some(j) => {
                            pivot(&mut tableau, &mut basis, r, j, rhs_col);
                        }
                        None => {
                            // Redundant row: every structural/slack coefficient
                            // is zero, drop the row entirely.
                            tableau.remove(r);
                            basis.remove(r);
                            continue;
                        }
                    }
                }
                r += 1;
            }
        }

        // ---- Phase 2: minimise the user objective ---------------------------
        let mut phase2_cost = vec![S::zero(); num_cols];
        for (j, c) in self.objective.iter().enumerate() {
            phase2_cost[j] = c.clone();
        }
        let outcome = run_phases(
            &mut tableau,
            &mut basis,
            &phase2_cost,
            num_cols,
            rhs_col,
            max_pivots,
            &is_artificial,
        );
        match outcome {
            PhaseResult::Optimal(obj) => {
                let mut values = vec![S::zero(); n];
                for (i, &b) in basis.iter().enumerate() {
                    if b < n {
                        values[b] = tableau[i][rhs_col].clone();
                    }
                }
                SimplexOutcome::Optimal {
                    values,
                    objective: obj,
                }
            }
            PhaseResult::Unbounded => SimplexOutcome::Unbounded,
            PhaseResult::IterationLimit => SimplexOutcome::IterationLimit,
        }
    }
}

enum PhaseResult<S> {
    Optimal(S),
    Unbounded,
    IterationLimit,
}

/// Performs one simplex phase on the tableau, minimising `cost`.
///
/// `barred` marks columns that must never enter the basis (artificial columns
/// during phase 2).  Returns the objective value reached.
///
/// The reduced-cost row is maintained incrementally (updated at every pivot
/// like any other tableau row) so each iteration costs `O(columns)` for the
/// entering choice instead of `O(rows × columns)`.
fn run_phases<S: LpScalar>(
    tableau: &mut [Vec<S>],
    basis: &mut [usize],
    cost: &[S],
    num_cols: usize,
    rhs_col: usize,
    max_pivots: usize,
    barred: &dyn Fn(usize) -> bool,
) -> PhaseResult<S> {
    let m = tableau.len();
    let bland_after = max_pivots / 2;

    // Initial reduced costs r_j = c_j - c_B · B^{-1} A_j and objective
    // value z = c_B · b, computed once from the current basis.
    let mut reduced: Vec<S> = cost[..num_cols].to_vec();
    let mut objective = S::zero();
    for i in 0..m {
        let cb = cost[basis[i]].clone();
        if cb.is_zero() {
            continue;
        }
        for j in 0..num_cols {
            if !tableau[i][j].is_zero() {
                reduced[j] = reduced[j].clone() - cb.clone() * tableau[i][j].clone();
            }
        }
        objective = objective + cb * tableau[i][rhs_col].clone();
    }

    for iteration in 0..max_pivots {
        // Entering column: most negative reduced cost (Dantzig), or the first
        // negative one once Bland's anti-cycling rule kicks in.
        let mut entering: Option<usize> = None;
        let mut best_reduced = S::zero();
        for (j, reduced_j) in reduced.iter().enumerate().take(num_cols) {
            if barred(j) || basis.contains(&j) {
                continue;
            }
            if reduced_j.is_negative() {
                if iteration >= bland_after {
                    entering = Some(j);
                    break;
                }
                if entering.is_none() || *reduced_j < best_reduced {
                    best_reduced = reduced_j.clone();
                    entering = Some(j);
                }
            }
        }
        let entering = match entering {
            Some(j) => j,
            None => return PhaseResult::Optimal(objective),
        };

        // Ratio test.
        let mut leaving: Option<usize> = None;
        let mut best_ratio: Option<S> = None;
        for i in 0..m {
            if tableau[i][entering].is_positive() {
                let ratio = tableau[i][rhs_col].clone() / tableau[i][entering].clone();
                let better = match &best_ratio {
                    None => true,
                    Some(b) => {
                        ratio < *b
                            || (ratio == *b
                                && leaving.map(|l| basis[i] < basis[l]).unwrap_or(false))
                    }
                };
                if better {
                    best_ratio = Some(ratio);
                    leaving = Some(i);
                }
            }
        }
        let leaving = match leaving {
            Some(i) => i,
            None => return PhaseResult::Unbounded,
        };
        pivot(tableau, basis, leaving, entering, rhs_col);

        // Update the reduced-cost row and the objective with the (now
        // normalised) pivot row, exactly like any other tableau row.
        let factor = reduced[entering].clone();
        if !factor.is_zero() {
            for j in 0..num_cols {
                if !tableau[leaving][j].is_zero() {
                    reduced[j] = reduced[j].clone() - factor.clone() * tableau[leaving][j].clone();
                }
            }
            objective = objective + factor * tableau[leaving][rhs_col].clone();
        }
    }
    PhaseResult::IterationLimit
}

/// Pivots the tableau on `(row, col)`.
// Index-based loops are kept: the elimination touches two rows of the
// tableau at once, and cloning a row to satisfy the iterator borrow rules
// would cost an allocation per pivot.
#[allow(clippy::needless_range_loop)]
fn pivot<S: LpScalar>(
    tableau: &mut [Vec<S>],
    basis: &mut [usize],
    row: usize,
    col: usize,
    rhs_col: usize,
) {
    let pivot_val = tableau[row][col].clone();
    debug_assert!(!pivot_val.is_zero(), "pivot on a zero element");
    let inv = S::one() / pivot_val;
    for j in 0..=rhs_col {
        tableau[row][j] = tableau[row][j].clone() * inv.clone();
    }
    for i in 0..tableau.len() {
        if i == row {
            continue;
        }
        let factor = tableau[i][col].clone();
        if factor.is_zero() {
            continue;
        }
        for j in 0..=rhs_col {
            let delta = factor.clone() * tableau[row][j].clone();
            tableau[i][j] = tableau[i][j].clone() - delta;
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Ratio;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn basic_maximisation_as_min() {
        // max 3x + 2y  <=>  min -3x - 2y
        // x + y <= 4 ; x + 3y <= 6
        let mut s = SimplexSolver::<f64>::new(2);
        s.set_objective(0, -3.0);
        s.set_objective(1, -2.0);
        s.add_row(vec![1.0, 1.0], RowRelation::Le, 4.0);
        s.add_row(vec![1.0, 3.0], RowRelation::Le, 6.0);
        match s.solve() {
            SimplexOutcome::Optimal { values, objective } => {
                assert_close(objective, -12.0);
                assert_close(values[0], 4.0);
                assert_close(values[1], 0.0);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn equality_and_ge_rows() {
        // min x + y  s.t.  x + y = 10,  x >= 3,  y >= 2
        let mut s = SimplexSolver::<f64>::new(2);
        s.set_objective(0, 1.0);
        s.set_objective(1, 1.0);
        s.add_row(vec![1.0, 1.0], RowRelation::Eq, 10.0);
        s.add_row(vec![1.0, 0.0], RowRelation::Ge, 3.0);
        s.add_row(vec![0.0, 1.0], RowRelation::Ge, 2.0);
        match s.solve() {
            SimplexOutcome::Optimal { objective, values } => {
                assert_close(objective, 10.0);
                assert_close(values[0] + values[1], 10.0);
                assert!(values[0] >= 3.0 - 1e-7);
                assert!(values[1] >= 2.0 - 1e-7);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn detects_infeasible() {
        // x <= 1 and x >= 2 cannot hold together.
        let mut s = SimplexSolver::<f64>::new(1);
        s.set_objective(0, 1.0);
        s.add_row(vec![1.0], RowRelation::Le, 1.0);
        s.add_row(vec![1.0], RowRelation::Ge, 2.0);
        assert_eq!(s.solve(), SimplexOutcome::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        // min -x with only x >= 0 is unbounded below.
        let mut s = SimplexSolver::<f64>::new(1);
        s.set_objective(0, -1.0);
        s.add_row(vec![1.0], RowRelation::Ge, 0.0);
        assert_eq!(s.solve(), SimplexOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // -x <= -5  <=>  x >= 5 ; minimise x -> 5
        let mut s = SimplexSolver::<f64>::new(1);
        s.set_objective(0, 1.0);
        s.add_row(vec![-1.0], RowRelation::Le, -5.0);
        match s.solve() {
            SimplexOutcome::Optimal { objective, .. } => assert_close(objective, 5.0),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate LP; Bland's rule must prevent cycling.
        let mut s = SimplexSolver::<f64>::new(4);
        s.set_objective(0, -0.75);
        s.set_objective(1, 150.0);
        s.set_objective(2, -0.02);
        s.set_objective(3, 6.0);
        s.add_row(vec![0.25, -60.0, -0.04, 9.0], RowRelation::Le, 0.0);
        s.add_row(vec![0.5, -90.0, -0.02, 3.0], RowRelation::Le, 0.0);
        s.add_row(vec![0.0, 0.0, 1.0, 0.0], RowRelation::Le, 1.0);
        match s.solve() {
            SimplexOutcome::Optimal { objective, .. } => assert_close(objective, -0.05),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn transportation_structure() {
        // Two suppliers (cap 5, 7) and two consumers (demand 4, 6), minimise
        // total shipping cost; optimum is 4*1 + 2*2 + 4*1 = cost with cheap
        // routes saturated first.
        // Variables: x11 x12 x21 x22, costs 1 3 2 1.
        let mut s = SimplexSolver::<f64>::new(4);
        for (i, c) in [1.0, 3.0, 2.0, 1.0].into_iter().enumerate() {
            s.set_objective(i, c);
        }
        s.add_row(vec![1.0, 1.0, 0.0, 0.0], RowRelation::Le, 5.0);
        s.add_row(vec![0.0, 0.0, 1.0, 1.0], RowRelation::Le, 7.0);
        s.add_row(vec![1.0, 0.0, 1.0, 0.0], RowRelation::Eq, 4.0);
        s.add_row(vec![0.0, 1.0, 0.0, 1.0], RowRelation::Eq, 6.0);
        match s.solve() {
            SimplexOutcome::Optimal { objective, .. } => assert_close(objective, 4.0 + 6.0),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn exact_rational_mode_matches_float() {
        // min 2x + 3y s.t. x + y >= 4, x - y <= 2
        let mut f = SimplexSolver::<f64>::new(2);
        f.set_objective(0, 2.0);
        f.set_objective(1, 3.0);
        f.add_row(vec![1.0, 1.0], RowRelation::Ge, 4.0);
        f.add_row(vec![1.0, -1.0], RowRelation::Le, 2.0);

        let mut r = SimplexSolver::<Ratio>::new(2);
        r.set_objective(0, Ratio::from_int(2));
        r.set_objective(1, Ratio::from_int(3));
        r.add_row(
            vec![Ratio::ONE, Ratio::ONE],
            RowRelation::Ge,
            Ratio::from_int(4),
        );
        r.add_row(
            vec![Ratio::ONE, -Ratio::ONE],
            RowRelation::Le,
            Ratio::from_int(2),
        );

        let fo = match f.solve() {
            SimplexOutcome::Optimal { objective, .. } => objective,
            o => panic!("{o:?}"),
        };
        let ro = match r.solve() {
            SimplexOutcome::Optimal { objective, .. } => objective,
            o => panic!("{o:?}"),
        };
        assert_close(fo, ro.to_f64());
        // The optimum puts all mass on the cheaper x: x = 4 would violate
        // x - y <= 2, so x = 3, y = 1, objective 9.
        assert_close(fo, 9.0);
    }

    #[test]
    fn iteration_limit_is_reported() {
        let mut s = SimplexSolver::<f64>::new(2);
        s.set_objective(0, -1.0);
        s.add_row(vec![1.0, 1.0], RowRelation::Le, 10.0);
        s.set_max_pivots(0);
        // With a forced tiny pivot budget the solver still returns (limit 0
        // means "auto", so use 1 to actually constrain it).
        s.set_max_pivots(1);
        match s.solve() {
            SimplexOutcome::Optimal { .. } | SimplexOutcome::IterationLimit => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}
