//! Sparse linear expressions over problem variables.

use std::collections::BTreeMap;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Index of a variable inside a [`crate::problem::Problem`].
pub type VarId = usize;

/// A sparse linear expression `Σ coeff_i · x_i + constant`.
///
/// Terms on the same variable are merged; zero coefficients are kept (they are
/// harmless and pruned when the expression is loaded into the tableau).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinExpr {
    terms: BTreeMap<VarId, f64>,
    constant: f64,
}

impl LinExpr {
    /// The empty (zero) expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// An expression made of a single term `coeff · var`.
    pub fn term(var: VarId, coeff: f64) -> Self {
        let mut e = Self::new();
        e.add_term(var, coeff);
        e
    }

    /// A constant expression.
    pub fn constant(c: f64) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// Adds `coeff · var` to the expression.
    pub fn add_term(&mut self, var: VarId, coeff: f64) -> &mut Self {
        *self.terms.entry(var).or_insert(0.0) += coeff;
        self
    }

    /// Adds a constant offset.
    pub fn add_constant(&mut self, c: f64) -> &mut Self {
        self.constant += c;
        self
    }

    /// Iterates over `(variable, coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// The constant offset of the expression.
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// Coefficient of a variable (0 if absent).
    pub fn coeff(&self, var: VarId) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// Number of (possibly zero) stored terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when no term is stored.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression at the given dense assignment.
    pub fn eval(&self, assignment: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(&v, &c)| c * assignment.get(v).copied().unwrap_or(0.0))
                .sum::<f64>()
    }
}

impl From<(VarId, f64)> for LinExpr {
    fn from((v, c): (VarId, f64)) -> Self {
        LinExpr::term(v, c)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.terms {
            *self.terms.entry(v).or_insert(0.0) += c;
        }
        self.constant += rhs.constant;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        let lhs = std::mem::take(self);
        *self = lhs + rhs;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        for c in self.terms.values_mut() {
            *c *= rhs;
        }
        self.constant *= rhs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_terms() {
        let mut e = LinExpr::new();
        e.add_term(3, 1.5).add_term(3, 0.5).add_term(1, 2.0);
        assert_eq!(e.coeff(3), 2.0);
        assert_eq!(e.coeff(1), 2.0);
        assert_eq!(e.coeff(0), 0.0);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn arithmetic() {
        let a = LinExpr::term(0, 1.0) + LinExpr::term(1, 2.0);
        let b = LinExpr::term(1, 3.0) + LinExpr::constant(4.0);
        let c = a.clone() + b.clone();
        assert_eq!(c.coeff(0), 1.0);
        assert_eq!(c.coeff(1), 5.0);
        assert_eq!(c.constant_part(), 4.0);

        let d = a - b;
        assert_eq!(d.coeff(1), -1.0);
        assert_eq!(d.constant_part(), -4.0);

        let e = LinExpr::term(2, 1.0) * 3.0;
        assert_eq!(e.coeff(2), 3.0);
    }

    #[test]
    fn evaluation() {
        let e = LinExpr::term(0, 2.0) + LinExpr::term(2, -1.0) + LinExpr::constant(0.5);
        assert_eq!(e.eval(&[1.0, 9.0, 4.0]), 2.0 - 4.0 + 0.5);
        // Out-of-range variables evaluate as zero.
        assert_eq!(LinExpr::term(7, 3.0).eval(&[1.0]), 0.0);
    }
}
