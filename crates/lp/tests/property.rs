//! Property-based tests for the simplex solver.
//!
//! The key invariants checked on randomly generated programs:
//! * whenever the solver reports an optimum, the returned point is feasible;
//! * the reported optimum is never better than any feasible point we can
//!   construct by hand (spot-checked through a simple rounding heuristic);
//! * exact-rational and floating-point modes agree on small programs;
//! * transportation problems built like the paper's System (1) are feasible
//!   exactly when total supply covers total demand.

use proptest::prelude::*;
use stretch_lp::problem::{Problem, Relation, Sense};

/// Builds a random "packing" LP: maximise c·x subject to A x <= b with
/// nonnegative data — always feasible (x = 0) and always bounded
/// (every variable appears in some row with a positive coefficient).
fn packing_problem(costs: &[f64], rows: &[Vec<f64>], rhs: &[f64]) -> Problem {
    let mut p = Problem::new(Sense::Maximize);
    let vars: Vec<_> = (0..costs.len())
        .map(|i| p.add_var(format!("x{i}")))
        .collect();
    for (i, &c) in costs.iter().enumerate() {
        p.set_objective_coeff(vars[i], c);
    }
    for (row, &b) in rows.iter().zip(rhs) {
        let coeffs: Vec<_> = vars.iter().copied().zip(row.iter().copied()).collect();
        p.add_constraint_coeffs(&coeffs, Relation::Le, b);
    }
    // Ensure boundedness: cap every variable.
    for &v in &vars {
        p.add_upper_bound(v, 1_000.0);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packing_lp_solution_is_feasible(
        n in 1usize..5,
        m in 1usize..5,
        seed_costs in proptest::collection::vec(0.0f64..10.0, 1..5),
        seed_matrix in proptest::collection::vec(0.0f64..5.0, 1..25),
        seed_rhs in proptest::collection::vec(0.5f64..20.0, 1..5),
    ) {
        let costs: Vec<f64> = (0..n).map(|i| seed_costs[i % seed_costs.len()]).collect();
        let rows: Vec<Vec<f64>> = (0..m)
            .map(|i| (0..n).map(|j| seed_matrix[(i * n + j) % seed_matrix.len()]).collect())
            .collect();
        let rhs: Vec<f64> = (0..m).map(|i| seed_rhs[i % seed_rhs.len()]).collect();
        let p = packing_problem(&costs, &rows, &rhs);
        let sol = p.solve().expect("packing LP is feasible and bounded");
        prop_assert!(p.is_feasible(&sol.values, 1e-6));
        // The optimum of a maximisation with nonnegative costs is nonnegative.
        prop_assert!(sol.objective >= -1e-6);
    }

    #[test]
    fn exact_and_float_agree(
        c0 in 1.0f64..5.0,
        c1 in 1.0f64..5.0,
        b0 in 1.0f64..10.0,
        b1 in 1.0f64..10.0,
    ) {
        // min c0 x + c1 y  s.t.  x + y >= b0, x <= b1, y <= b0 + b1.
        // Keep the data to one decimal so the rational conversion is exact.
        let c0 = (c0 * 10.0).round() / 10.0;
        let c1 = (c1 * 10.0).round() / 10.0;
        let b0 = (b0 * 10.0).round() / 10.0;
        let b1 = (b1 * 10.0).round() / 10.0;
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.set_objective_coeff(x, c0);
        p.set_objective_coeff(y, c1);
        p.add_constraint_coeffs(&[(x, 1.0), (y, 1.0)], Relation::Ge, b0);
        p.add_upper_bound(x, b1);
        p.add_upper_bound(y, b0 + b1);
        let f = p.solve().expect("feasible");
        let e = p.solve_exact().expect("feasible");
        prop_assert!((f.objective - e.objective).abs() < 1e-6,
            "float {} vs exact {}", f.objective, e.objective);
    }

    #[test]
    fn transportation_feasibility_matches_supply_demand(
        supplies in proptest::collection::vec(0.1f64..10.0, 2..4),
        demand_fraction in 0.1f64..1.6,
    ) {
        // Jobs (demands) against machine-interval capacities (supplies):
        // feasible iff total demand <= total supply, which is the structure of
        // the paper's System (1) feasibility check.
        let total_supply: f64 = supplies.iter().sum();
        let demand = total_supply * demand_fraction;
        let mut p = Problem::new(Sense::Minimize);
        let vars: Vec<_> = (0..supplies.len())
            .map(|i| p.add_var(format!("alloc{i}")))
            .collect();
        for (i, &s) in supplies.iter().enumerate() {
            p.add_upper_bound(vars[i], s);
        }
        let coeffs: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint_coeffs(&coeffs, Relation::Eq, demand);
        let feasible = p.solve().is_ok();
        prop_assert_eq!(feasible, demand <= total_supply + 1e-9);
    }
}
