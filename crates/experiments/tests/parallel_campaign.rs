//! The parallel-campaign determinism contract.
//!
//! The vendored `rayon` thread pool promises that `par_iter().map(..)
//! .collect()` is an **indexed collect**: results land at their input index,
//! so campaign output is byte-identical whatever the thread count.  These
//! tests pin that contract at campaign level across `STRETCH_THREADS ∈
//! {1, 2, 8}` (via the scoped `with_threads` override, which takes priority
//! over the environment variable and keeps the test matrix race-free), plus
//! the worker-panic propagation guarantee.

use rayon::prelude::*;
use stretch_experiments::campaign::{
    run_campaign, run_campaign_streaming, CampaignResult, CampaignSettings,
};
use stretch_experiments::config::reduced_grid;

/// Canonical byte rendering of a campaign's observations, excluding the
/// wall-clock `scheduling_time` fields (the only intentionally
/// nondeterministic data).  Metric f64s are rendered as exact bit patterns:
/// any numerical divergence between thread counts shows.
fn canonical_bytes(result: &CampaignResult) -> String {
    let mut out = String::new();
    for obs in &result.observations {
        out.push_str(&format!(
            "{} jobs={} events={}",
            obs.config.label(),
            obs.num_jobs,
            obs.num_events
        ));
        for o in &obs.observations {
            match o {
                None => out.push_str(" -"),
                Some(o) => out.push_str(&format!(
                    " {:016x}/{:016x}",
                    o.max_stretch.to_bits(),
                    o.sum_stretch.to_bits()
                )),
            }
        }
        out.push('\n');
    }
    out
}

#[test]
fn campaign_bytes_are_identical_across_thread_counts() {
    let grid = reduced_grid();
    let settings = CampaignSettings {
        instances_per_config: 2,
        target_jobs: 10,
        ..CampaignSettings::smoke()
    };
    let sequential = rayon::with_threads(1, || run_campaign(&grid, settings));
    let reference = canonical_bytes(&sequential);
    assert!(!reference.is_empty());
    for threads in [2, 8] {
        let parallel = rayon::with_threads(threads, || run_campaign(&grid, settings));
        assert_eq!(
            canonical_bytes(&parallel),
            reference,
            "thread count {threads} changed campaign bytes"
        );
    }
}

#[test]
fn streaming_summary_is_identical_across_thread_counts() {
    let grid = reduced_grid();
    let settings = CampaignSettings::smoke();
    let render = |threads: usize| {
        let summary = rayon::with_threads(threads, || run_campaign_streaming(&grid, settings));
        // The table carries every aggregate; Debug includes the exact f64s.
        format!("{:?}", summary.table1())
    };
    let reference = render(1);
    for threads in [2, 8] {
        assert_eq!(render(threads), reference, "thread count {threads}");
    }
}

#[test]
fn worker_panics_propagate_out_of_campaign_shaped_fanouts() {
    let work: Vec<usize> = (0..32).collect();
    let outcome = std::panic::catch_unwind(|| {
        rayon::with_threads(4, || {
            let _: Vec<usize> = work
                .par_iter()
                .map(|&i| {
                    if i == 17 {
                        panic!("instance {i} exploded");
                    }
                    i
                })
                .collect();
        })
    });
    assert!(
        outcome.is_err(),
        "a panicking campaign worker must fail the campaign, not drop data"
    );
}
