//! `CampaignSettings::paper_from_env` contract: `STRETCH_JOBS` is
//! meaningless under fixed windows and must abort loudly, not be ignored.
//!
//! This lives in its own integration-test binary (one test, own process)
//! because it mutates the environment, which would race with the other
//! test binaries' env reads if it shared a process with them.

use stretch_experiments::CampaignSettings;

#[test]
fn paper_from_env_rejects_stretch_jobs() {
    std::env::set_var("STRETCH_JOBS", "500");
    let outcome = std::panic::catch_unwind(CampaignSettings::paper_from_env);
    std::env::remove_var("STRETCH_JOBS");
    let payload = outcome.expect_err("STRETCH_JOBS must abort under the paper preset");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("STRETCH_JOBS") && message.contains("STRETCH_WINDOW"),
        "panic must name the knob and the fix: {message}"
    );

    // Without the knob the paper defaults come through.
    let settings = CampaignSettings::paper_from_env();
    assert_eq!(settings.window_secs, CampaignSettings::paper().window_secs);
}
