//! Golden snapshots of the §5 reference-workload aggregates.
//!
//! The Table-1 statistics (max-stretch and sum-stretch degradation per
//! heuristic) on the deterministic smoke campaign are frozen into
//! checked-in fixtures, one per min-cost backend (`primal-dual`, `simplex`
//! and `monge` — blessing writes all three), and compared **exactly**:
//! the instance generator is seed-deterministic, the vendored `rayon` pool
//! collects results at their input index (byte-identical whatever the
//! thread count), and every scheduler is deterministic, so any diff means a
//! solver change altered observable results.  Degenerate min-cost optima
//! are real (several allocations share the optimal cost), which is why each
//! backend owns its fixture — a swap can change which optimum is picked,
//! but it must never change it *silently*.
//!
//! To re-bless after an intentional change:
//!
//! ```text
//! STRETCH_BLESS=1 cargo test -p stretch-experiments --test table1_golden
//! ```

use std::path::PathBuf;
use stretch_core::SolverConfig;
use stretch_experiments::campaign::{run_campaign, CampaignSettings};
use stretch_experiments::config::reduced_grid;
use stretch_experiments::tables::table1;
use stretch_metrics::MetricsTable;

fn fixture_path(backend_name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("table1_smoke_{backend_name}.golden"))
}

/// Canonical, diff-friendly rendering: one line per heuristic with all six
/// statistics at fixed precision (enough digits that any behavioural change
/// shows, few enough that the file stays readable).
fn canonicalise(table: &MetricsTable) -> String {
    let mut out = String::new();
    for row in &table.rows {
        let fmt = |s: &Option<stretch_metrics::AggregateStats>| match s {
            Some(s) => format!("{:.9} {:.9} {:.9} n={}", s.mean, s.sd, s.max, s.count),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "{} | max: {} | sum: {}\n",
            row.name,
            fmt(&row.max_stretch),
            fmt(&row.sum_stretch)
        ));
    }
    out
}

fn check_backend(config: SolverConfig) {
    let settings = CampaignSettings::smoke().with_solver(config);
    let result = run_campaign(&reduced_grid(), settings);
    let rendered = canonicalise(&table1(&result.observations));
    let path = fixture_path(config.backend.name());
    if std::env::var_os("STRETCH_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with STRETCH_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "Table-1 smoke aggregates changed for backend `{}`.\n\
         If intentional, re-bless with STRETCH_BLESS=1; otherwise a solver\n\
         change silently altered scheduling results.",
        config.backend.name()
    );
}

#[test]
fn table1_smoke_aggregates_match_the_golden_fixture_primal_dual() {
    check_backend(SolverConfig::primal_dual());
}

#[test]
fn table1_smoke_aggregates_match_the_golden_fixture_simplex() {
    check_backend(SolverConfig::network_simplex());
}

#[test]
fn table1_smoke_aggregates_match_the_golden_fixture_monge() {
    check_backend(SolverConfig::monge());
}

#[test]
fn monge_fixture_is_byte_identical_to_the_simplex_fixture() {
    // The monge backend's determinism contract is stronger than "owns its
    // fixture": certified solves are verified through the simplex's
    // canonicalising tail and uncertified ones *are* simplex solves, so the
    // two backends must pick the same optimum everywhere — fixture included.
    // A divergence means the seeded path stopped being bit-identical.
    let read = |name: &str| {
        std::fs::read_to_string(fixture_path(name))
            .unwrap_or_else(|e| panic!("missing fixture for `{name}` ({e}); STRETCH_BLESS=1"))
    };
    assert_eq!(
        read("monge"),
        read("simplex"),
        "monge and simplex fixtures diverged: the seeded-solve bit-identity \
         contract is broken"
    );
}

#[test]
fn campaigns_are_reproducible_within_a_process() {
    // The precondition of golden testing: identical settings → identical
    // observations, bit for bit.
    let settings = CampaignSettings::smoke();
    let a = run_campaign(&reduced_grid(), settings);
    let b = run_campaign(&reduced_grid(), settings);
    let render =
        |r: &stretch_experiments::campaign::CampaignResult| canonicalise(&table1(&r.observations));
    assert_eq!(render(&a), render(&b));
}
