//! Theorem-shaped end-to-end assertions tying the adversary harness to the
//! paper's competitive-analysis story.
//!
//! The paper's lower bound (§4) says no on-line algorithm is better than
//! Δ^(1/2)-competitive for max-stretch, so an effective adversary must be
//! able to push the achieved-online vs. offline-clairvoyant ratio strictly
//! above the trivial 1.0 bound.  These tests pin that separation with a
//! margin: under the shared pinned budget the hill-climb must keep finding
//! streams at least as bad as the blessed ones.  A regression here means
//! the on-line scheduler got *harder* to attack (re-bless and tighten the
//! pins) or the adversary lost its teeth (fix it).

use stretch_core::adversarial::online_offline_ratio;
use stretch_core::refstream::reference_instance;
use stretch_core::{BackendKind, OnlineVariant, SolverConfig};
use stretch_experiments::adversary_budget;
use stretch_workload::{adversary, Instance};

/// The margins below are deliberately looser than the blessed ratios
/// (1.0661 on the flow backends, 1.0370 on primal-dual with the current
/// budget) so they survive benign re-blessings, yet far enough above 1.0
/// that a toothless adversary cannot pass.
const FLOW_MARGIN: f64 = 1.05;
const ANY_BACKEND_MARGIN: f64 = 1.03;

fn attack(solver: SolverConfig) -> adversary::AdversaryResult {
    let base = reference_instance(3, 3, 20, 3);
    let score = |inst: &Instance| {
        online_offline_ratio(inst, OnlineVariant::Online, solver).unwrap_or(f64::NAN)
    };
    adversary::search(&base, adversary_budget(), score)
}

#[test]
fn the_adversary_beats_the_trivial_bound_by_a_pinned_margin() {
    let result = attack(SolverConfig::monge());
    assert!(
        result.best_score > FLOW_MARGIN,
        "adversary only reached ratio {} (pinned margin {FLOW_MARGIN}): \
         the search lost its teeth or the scheduler changed — check the \
         adversary goldens",
        result.best_score
    );
}

#[test]
fn every_backend_is_attackable_above_the_floor_margin() {
    for backend in BackendKind::ALL {
        let solver = SolverConfig {
            backend,
            warm_start: true,
            incremental: true,
        };
        let result = attack(solver);
        assert!(
            result.best_score.is_finite(),
            "backend {}: search ended on a non-finite ratio",
            backend.name()
        );
        assert!(
            result.best_score > ANY_BACKEND_MARGIN,
            "backend {}: adversary only reached ratio {} (floor {ANY_BACKEND_MARGIN})",
            backend.name(),
            result.best_score
        );
    }
}

#[test]
fn the_ratio_oracle_never_reports_beating_clairvoyance() {
    // Sanity floor under every cell: the on-line run can tie the off-line
    // optimum (ratio 1.0, modulo solver tolerance) but never beat it.
    let instance = reference_instance(3, 3, 20, 3);
    for backend in BackendKind::ALL {
        for warm_start in [true, false] {
            let solver = SolverConfig {
                backend,
                warm_start,
                incremental: true,
            };
            let ratio = online_offline_ratio(&instance, OnlineVariant::Online, solver).unwrap();
            assert!(
                ratio >= 1.0 - 1e-6,
                "backend {} warm {warm_start}: online beat clairvoyant ({ratio})",
                backend.name()
            );
        }
    }
}
