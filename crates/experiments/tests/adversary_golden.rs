//! Golden snapshots of the adversary search: the worst-found stream and
//! its achieved online-vs-offline max-stretch ratio, per min-cost backend.
//!
//! The hill-climb is seed-deterministic (a pure function of the base
//! instance, the pinned [`adversary_budget`] and the scoring callback), so
//! the worst stream it finds — every release date, work amount and
//! databank, as exact f64 bit patterns — and the blessed ratio are frozen
//! into checked-in fixtures and compared **exactly**.  Each backend owns
//! its fixture: degenerate System-(2) optima let the primal-dual backend
//! pick different allocations than the flow backends, which changes the
//! online schedule the adversary is attacking and therefore the search
//! trajectory itself.  The monge and simplex fixtures must stay
//! byte-identical (the certified-solve bit-identity contract).
//!
//! To re-bless after an intentional change to the scheduler, the ratio
//! oracle or the adversary:
//!
//! ```text
//! STRETCH_BLESS=1 cargo test -p stretch-experiments --test adversary_golden
//! ```
//!
//! then re-check the pinned margin in `tests/theorems.rs` and re-bless the
//! trace fixture (`STRETCH_TRACE_MODE=bless cargo run --release -p
//! stretch-experiments --bin repro_trace`).

use std::fmt::Write as _;
use std::path::PathBuf;

use stretch_core::adversarial::online_offline_ratio;
use stretch_core::refstream::reference_instance;
use stretch_core::{OnlineVariant, SolverConfig};
use stretch_experiments::adversary_budget;
use stretch_workload::{adversary, Instance};

fn fixture_path(backend_name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("adversary_smoke_{backend_name}.golden"))
}

/// The base stream the adversary attacks — must match `repro_trace`.
fn base_stream() -> Instance {
    reference_instance(3, 3, 20, 3)
}

/// Runs the pinned-budget search scored under `solver` and returns
/// `(base ratio, result)`.
fn attack(solver: SolverConfig) -> (f64, adversary::AdversaryResult) {
    let base = base_stream();
    let score = |inst: &Instance| {
        online_offline_ratio(inst, OnlineVariant::Online, solver).unwrap_or(f64::NAN)
    };
    let start = score(&base);
    let result = adversary::search(&base, adversary_budget(), score);
    (start, result)
}

/// Canonical rendering: ratios and every job of the worst stream as exact
/// bit patterns (hex) alongside a readable decimal, one line per job.
fn canonicalise(start: f64, result: &adversary::AdversaryResult) -> String {
    let mut out = String::new();
    writeln!(out, "base_ratio {:016x} {:.9}", start.to_bits(), start).unwrap();
    writeln!(
        out,
        "best_ratio {:016x} {:.9}",
        result.best_score.to_bits(),
        result.best_score
    )
    .unwrap();
    writeln!(
        out,
        "evaluations {} improvements {}",
        result.evaluations, result.improvements
    )
    .unwrap();
    for job in &result.best.jobs {
        writeln!(
            out,
            "job {} release {:016x} {:.9} work {:016x} {:.9} databank {}",
            job.id,
            job.release.to_bits(),
            job.release,
            job.work.to_bits(),
            job.work,
            job.databank
        )
        .unwrap();
    }
    out
}

fn check_backend(solver: SolverConfig) {
    let (start, result) = attack(solver);
    let rendered = canonicalise(start, &result);
    let path = fixture_path(solver.backend.name());
    if std::env::var_os("STRETCH_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with STRETCH_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "adversary search results changed for backend `{}`.\n\
         If intentional, re-bless with STRETCH_BLESS=1 (and re-bless the\n\
         trace fixture + re-check tests/theorems.rs); otherwise a scheduler\n\
         or search change silently altered the attack trajectory.",
        solver.backend.name()
    );
}

#[test]
fn adversary_search_matches_the_golden_fixture_primal_dual() {
    check_backend(SolverConfig::primal_dual());
}

#[test]
fn adversary_search_matches_the_golden_fixture_simplex() {
    check_backend(SolverConfig::network_simplex());
}

#[test]
fn adversary_search_matches_the_golden_fixture_monge() {
    check_backend(SolverConfig::monge());
}

#[test]
fn monge_fixture_is_byte_identical_to_the_simplex_fixture() {
    // Certified monge solves verify through the simplex tail and
    // uncertified ones *are* simplex solves, so the two backends schedule
    // identically and the adversary walks the identical trajectory.
    let read = |name: &str| {
        std::fs::read_to_string(fixture_path(name))
            .unwrap_or_else(|e| panic!("missing fixture for `{name}` ({e}); STRETCH_BLESS=1"))
    };
    assert_eq!(
        read("monge"),
        read("simplex"),
        "monge and simplex adversary fixtures diverged: the seeded-solve \
         bit-identity contract is broken"
    );
}

#[test]
fn the_search_budget_is_pinned() {
    // Every field of the shared budget is fixture contract — this pin
    // makes any drive-by change show up as a test diff, not as silently
    // stale fixtures.  `repro_trace` delegates to the same function.
    let budget = adversary_budget();
    assert_eq!(budget.seed, 0xADC0_FFEE);
    assert_eq!(budget.rounds, 32);
    assert_eq!(budget.candidates, 6);
    assert_eq!(budget.release_jitter, 0.25);
    assert_eq!(budget.work_factor, 16.0);
}

#[test]
fn the_search_is_reproducible_within_a_process() {
    // The precondition of golden testing: identical inputs → identical
    // trajectory, bit for bit.
    let solver = SolverConfig::monge();
    let (start_a, a) = attack(solver);
    let (start_b, b) = attack(solver);
    assert_eq!(canonicalise(start_a, &a), canonicalise(start_b, &b));
}
