//! The kill-and-recover harness: SIGKILL `repro_serve` at an arbitrary
//! instant mid-stream (possibly mid-journal-write), recover by replaying the
//! journal, continue the stream, and require the final scheduler state to be
//! bit-identical to an uninterrupted run — on every backend, warm and cold.
//!
//! The child process is the `crash` mode of `repro_serve`: it touches a
//! marker file and then submits the reference stream with a small delay per
//! submission, so the parent's SIGKILL lands at a genuinely arbitrary point
//! — before the stream, between two submissions, inside a `write`/`fsync`,
//! or after the last submission.  Whatever tail the journal is left with,
//! recovery must reach the valid prefix and the continued run must converge
//! to the uninterrupted result.  This is the CI serve-smoke leg.

use std::path::PathBuf;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

use stretch_core::refstream::reference_instance;
use stretch_core::{BackendKind, SolverConfig};
use stretch_serve::{ServeConfig, StretchServe, Submission};
use stretch_workload::Instance;

/// Kills the child on drop so a failing assertion never leaks a hung
/// `repro_serve` process.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("serve-recover-{name}-{}", std::process::id()));
    p
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn run_uninterrupted(instance: &Instance, solver: SolverConfig, name: &str) -> StretchServe {
    let path = tmp(name);
    let mut serve = StretchServe::create(
        &path,
        instance.platform.clone(),
        ServeConfig::with_solver(solver),
    )
    .unwrap();
    for job in &instance.jobs {
        let outcome = serve
            .submit(Submission::new(job.release, job.work, job.databank))
            .unwrap();
        assert!(outcome.is_accepted());
    }
    serve.finish().unwrap();
    std::fs::remove_file(&path).unwrap();
    serve
}

#[test]
fn sigkill_mid_stream_recovers_bit_identically_on_every_backend() {
    let instance = reference_instance(3, 3, 20, 3);
    for backend in BackendKind::ALL {
        for warm_start in [true, false] {
            let solver = SolverConfig {
                backend,
                warm_start,
            };
            let cell = format!("{}-{warm_start}", backend.name());
            let journal = tmp(&format!("journal-{cell}"));
            let marker = tmp(&format!("marker-{cell}"));
            let _ = std::fs::remove_file(&journal);
            let _ = std::fs::remove_file(&marker);

            let child = Command::new(env!("CARGO_BIN_EXE_repro_serve"))
                .env("STRETCH_SERVE_MODE", "crash")
                .env("STRETCH_SERVE_JOURNAL", &journal)
                .env("STRETCH_SERVE_MARKER", &marker)
                .env("STRETCH_SERVE_SUBMIT_DELAY_US", "2000")
                .env("STRETCH_MINCOST_BACKEND", backend.name())
                .env("STRETCH_WARM_START", if warm_start { "1" } else { "0" })
                .spawn()
                .expect("spawn repro_serve crash mode");
            let mut child = ChildGuard(child);

            // Wait for the service to come up, then kill it mid-stream.
            let deadline = Instant::now() + Duration::from_secs(120);
            while !marker.exists() {
                assert!(
                    Instant::now() < deadline,
                    "{cell}: repro_serve never touched its marker"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
            std::thread::sleep(Duration::from_millis(23));
            child.0.kill().expect("SIGKILL repro_serve");
            child.0.wait().expect("reap repro_serve");

            // Recover in-process, continue the stream, drain.
            let (mut recovered, report) = StretchServe::recover(
                &journal,
                instance.platform.clone(),
                ServeConfig::with_solver(solver),
            )
            .unwrap_or_else(|e| panic!("{cell}: recovery failed: {e}"));
            let done = report.submissions as usize;
            assert!(
                done <= instance.jobs.len(),
                "{cell}: journal holds {done} submissions"
            );
            for job in &instance.jobs[done..] {
                let outcome = recovered
                    .submit(Submission::new(job.release, job.work, job.databank))
                    .unwrap();
                assert!(outcome.is_accepted(), "{cell}: {outcome:?}");
            }
            recovered.finish().unwrap();

            let reference = run_uninterrupted(&instance, solver, &format!("full-{cell}"));
            assert_eq!(
                recovered.state_digest(),
                reference.state_digest(),
                "{cell}: killed at submission {done} (torn tail: {:?}), recovered state \
                 diverged from the uninterrupted run",
                report.torn
            );
            assert_eq!(
                bits(recovered.completions()),
                bits(reference.completions()),
                "{cell}: recovered completions diverged"
            );

            std::fs::remove_file(&journal).unwrap();
            std::fs::remove_file(&marker).unwrap();
        }
    }
}
