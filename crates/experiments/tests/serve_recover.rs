//! The kill-and-recover harness: SIGKILL `repro_serve` at an arbitrary
//! instant mid-stream (possibly mid-journal-write), recover by replaying the
//! journal, continue the stream, and require the final scheduler state to be
//! bit-identical to an uninterrupted run — on every backend, warm and cold.
//!
//! The child process is the `crash` mode of `repro_serve`: it touches a
//! marker file and then submits the reference stream with a small delay per
//! submission, so the parent's SIGKILL lands at a genuinely arbitrary point
//! — before the stream, between two submissions, inside a `write`/`fsync`,
//! or after the last submission.  Whatever tail the journal is left with,
//! recovery must reach the valid prefix and the continued run must converge
//! to the uninterrupted result.  This is the CI serve-smoke leg.
//!
//! Two rotation-aware legs ride along: the same SIGKILL with a segment
//! threshold small enough that the kill lands in a *rotated* directory
//! (recovery goes through the snapshot ladder, not full replay), and a
//! deterministic sweep of the three seal → snapshot → reopen crash windows
//! via `STRETCH_SERVE_CRASH_POINT`, where the child aborts itself at the
//! exact instant instead of relying on kill-timing luck.

use std::path::PathBuf;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

use stretch_core::refstream::reference_instance;
use stretch_core::{BackendKind, SolverConfig};
use stretch_serve::journal::RotationPolicy;
use stretch_serve::{ServeConfig, StretchServe, Submission};
use stretch_workload::Instance;

/// Kills the child on drop so a failing assertion never leaks a hung
/// `repro_serve` process.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("serve-recover-{name}-{}", std::process::id()));
    p
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn run_uninterrupted(instance: &Instance, solver: SolverConfig, name: &str) -> StretchServe {
    let path = tmp(name);
    let mut serve = StretchServe::create(
        &path,
        instance.platform.clone(),
        ServeConfig::with_solver(solver),
    )
    .unwrap();
    for job in &instance.jobs {
        let outcome = serve
            .submit(Submission::new(job.release, job.work, job.databank))
            .unwrap();
        assert!(outcome.is_accepted());
    }
    serve.finish().unwrap();
    std::fs::remove_dir_all(&path).unwrap();
    serve
}

/// The rotation the child is driven with (`STRETCH_SERVE_SEGMENT_RECORDS=4`)
/// mirrored on the recovery side: rotate every 4 records, snapshot every
/// seal, retain 2 snapshots.
fn rotated(solver: SolverConfig) -> ServeConfig {
    let mut config = ServeConfig::with_solver(solver);
    config.rotation = RotationPolicy {
        max_records: 4,
        max_bytes: u64::MAX,
    };
    config.snapshot_every = 1;
    config.snapshot_retain = 2;
    config
}

#[test]
fn sigkill_mid_stream_recovers_bit_identically_on_every_backend() {
    let instance = reference_instance(3, 3, 20, 3);
    for backend in BackendKind::ALL {
        for warm_start in [true, false] {
            let solver = SolverConfig {
                backend,
                warm_start,
                incremental: true,
            };
            let cell = format!("{}-{warm_start}", backend.name());
            let journal = tmp(&format!("journal-{cell}"));
            let marker = tmp(&format!("marker-{cell}"));
            let _ = std::fs::remove_file(&journal);
            let _ = std::fs::remove_file(&marker);

            let child = Command::new(env!("CARGO_BIN_EXE_repro_serve"))
                .env("STRETCH_SERVE_MODE", "crash")
                .env("STRETCH_SERVE_JOURNAL", &journal)
                .env("STRETCH_SERVE_MARKER", &marker)
                .env("STRETCH_SERVE_SUBMIT_DELAY_US", "2000")
                .env("STRETCH_MINCOST_BACKEND", backend.name())
                .env("STRETCH_WARM_START", if warm_start { "1" } else { "0" })
                .spawn()
                .expect("spawn repro_serve crash mode");
            let mut child = ChildGuard(child);

            // Wait for the service to come up, then kill it mid-stream.
            let deadline = Instant::now() + Duration::from_secs(120);
            while !marker.exists() {
                assert!(
                    Instant::now() < deadline,
                    "{cell}: repro_serve never touched its marker"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
            std::thread::sleep(Duration::from_millis(23));
            child.0.kill().expect("SIGKILL repro_serve");
            child.0.wait().expect("reap repro_serve");

            // Recover in-process, continue the stream, drain.
            let (mut recovered, report) = StretchServe::recover(
                &journal,
                instance.platform.clone(),
                ServeConfig::with_solver(solver),
            )
            .unwrap_or_else(|e| panic!("{cell}: recovery failed: {e}"));
            let done = report.submissions as usize;
            assert!(
                done <= instance.jobs.len(),
                "{cell}: journal holds {done} submissions"
            );
            for job in &instance.jobs[done..] {
                let outcome = recovered
                    .submit(Submission::new(job.release, job.work, job.databank))
                    .unwrap();
                assert!(outcome.is_accepted(), "{cell}: {outcome:?}");
            }
            recovered.finish().unwrap();

            let reference = run_uninterrupted(&instance, solver, &format!("full-{cell}"));
            assert_eq!(
                recovered.state_digest(),
                reference.state_digest(),
                "{cell}: killed at submission {done} (torn tail: {:?}), recovered state \
                 diverged from the uninterrupted run",
                report.torn
            );
            assert_eq!(
                bits(recovered.completions()),
                bits(reference.completions()),
                "{cell}: recovered completions diverged"
            );

            std::fs::remove_dir_all(&journal).unwrap();
            std::fs::remove_file(&marker).unwrap();
        }
    }
}

#[test]
fn sigkill_under_rotation_recovers_through_the_snapshot_ladder() {
    let instance = reference_instance(3, 3, 20, 3);
    let solver = SolverConfig::default();
    let journal = tmp("journal-rotation");
    let marker = tmp("marker-rotation");
    let _ = std::fs::remove_dir_all(&journal);
    let _ = std::fs::remove_file(&marker);

    let child = Command::new(env!("CARGO_BIN_EXE_repro_serve"))
        .env("STRETCH_SERVE_MODE", "crash")
        .env("STRETCH_SERVE_JOURNAL", &journal)
        .env("STRETCH_SERVE_MARKER", &marker)
        .env("STRETCH_SERVE_SUBMIT_DELAY_US", "2000")
        .env("STRETCH_SERVE_SEGMENT_RECORDS", "4")
        .spawn()
        .expect("spawn repro_serve crash mode");
    let mut child = ChildGuard(child);

    let deadline = Instant::now() + Duration::from_secs(120);
    while !marker.exists() {
        assert!(
            Instant::now() < deadline,
            "rotation: repro_serve never touched its marker"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(37));
    child.0.kill().expect("SIGKILL repro_serve");
    child.0.wait().expect("reap repro_serve");

    let (mut recovered, report) =
        StretchServe::recover(&journal, instance.platform.clone(), rotated(solver))
            .unwrap_or_else(|e| panic!("rotation: recovery failed: {e}"));
    // Whenever the kill landed past the first seal, recovery must have gone
    // through a snapshot and replayed only the suffix.
    assert_eq!(
        report.records,
        report.snapshot_records as usize + report.replayed_records,
        "rotation: record accounting does not add up: {report:?}"
    );
    if report.snapshot.is_some() {
        assert!(
            report.snapshot_records > 0,
            "rotation: empty snapshot trusted: {report:?}"
        );
        assert!(
            report.replayed_records < report.records,
            "rotation: snapshot did not bound the replay: {report:?}"
        );
    }
    let done = report.submissions as usize;
    assert!(done <= instance.jobs.len());
    for job in &instance.jobs[done..] {
        let outcome = recovered
            .submit(Submission::new(job.release, job.work, job.databank))
            .unwrap();
        assert!(outcome.is_accepted(), "rotation: {outcome:?}");
    }
    recovered.finish().unwrap();

    let reference = run_uninterrupted(&instance, solver, "full-rotation");
    assert_eq!(
        recovered.state_digest(),
        reference.state_digest(),
        "rotation: killed at submission {done} (snapshot {:?}, torn {:?}), recovered \
         state diverged from the uninterrupted run",
        report.snapshot,
        report.torn
    );
    assert_eq!(
        bits(recovered.completions()),
        bits(reference.completions()),
        "rotation: recovered completions diverged"
    );
    std::fs::remove_dir_all(&journal).unwrap();
    std::fs::remove_file(&marker).unwrap();
}

#[test]
fn chaos_rotation_crash_points_recover_bit_identically() {
    let instance = reference_instance(3, 3, 20, 3);
    let solver = SolverConfig::default();
    for point in ["after-seal", "after-snapshot-temp", "after-snapshot-rename"] {
        let journal = tmp(&format!("journal-chaos-{point}"));
        let marker = tmp(&format!("marker-chaos-{point}"));
        let _ = std::fs::remove_dir_all(&journal);
        let _ = std::fs::remove_file(&marker);

        // The child aborts *itself* at the requested window of the second
        // seal — no kill-timing needed; just reap it.
        let child = Command::new(env!("CARGO_BIN_EXE_repro_serve"))
            .env("STRETCH_SERVE_MODE", "crash")
            .env("STRETCH_SERVE_JOURNAL", &journal)
            .env("STRETCH_SERVE_MARKER", &marker)
            .env("STRETCH_SERVE_SUBMIT_DELAY_US", "0")
            .env("STRETCH_SERVE_SEGMENT_RECORDS", "4")
            .env("STRETCH_SERVE_CRASH_POINT", format!("1:{point}"))
            .spawn()
            .expect("spawn repro_serve crash mode");
        let mut child = ChildGuard(child);
        let deadline = Instant::now() + Duration::from_secs(120);
        let status = loop {
            if let Some(status) = child.0.try_wait().expect("poll repro_serve") {
                break status;
            }
            assert!(
                Instant::now() < deadline,
                "{point}: repro_serve never reached its crash point"
            );
            std::thread::sleep(Duration::from_millis(2));
        };
        assert!(
            !status.success(),
            "{point}: child exited cleanly instead of aborting mid-rotation"
        );

        let (mut recovered, report) =
            StretchServe::recover(&journal, instance.platform.clone(), rotated(solver))
                .unwrap_or_else(|e| panic!("{point}: recovery failed: {e}"));
        let done = report.submissions as usize;
        assert!(done <= instance.jobs.len());
        for job in &instance.jobs[done..] {
            let outcome = recovered
                .submit(Submission::new(job.release, job.work, job.databank))
                .unwrap();
            assert!(outcome.is_accepted(), "{point}: {outcome:?}");
        }
        recovered.finish().unwrap();

        let reference = run_uninterrupted(&instance, solver, &format!("full-chaos-{point}"));
        assert_eq!(
            recovered.state_digest(),
            reference.state_digest(),
            "{point}: aborted at submission {done} (snapshot {:?}), recovered state \
             diverged from the uninterrupted run",
            report.snapshot
        );
        assert_eq!(
            bits(recovered.completions()),
            bits(reference.completions()),
            "{point}: recovered completions diverged"
        );
        std::fs::remove_dir_all(&journal).unwrap();
        std::fs::remove_file(&marker).unwrap();
    }
}
