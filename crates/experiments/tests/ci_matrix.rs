//! CI-coverage completeness: a min-cost backend can never again land
//! without CI coverage.
//!
//! The CI workflow runs the whole suite once per backend
//! (`STRETCH_MINCOST_BACKEND` matrix) and requires one recorded bench row
//! per backend (baseline-completeness key list).  Both lists live in YAML,
//! which nothing type-checks — so these tests parse `.github/workflows/
//! ci.yml` and cross-check it against the single source of truth in code:
//! `BackendKind::ALL` (which also drives `SolverConfig`'s parser and the
//! abort message) and `stretch_experiments::engine_row_keys()` (which also
//! drives the perf-drift gate).  Adding a backend without touching CI now
//! fails here, in every cell of the existing matrix.

use stretch_experiments::engine_row_keys;
use stretch_flow::BackendKind;

fn ci_yml() -> String {
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../.github/workflows/ci.yml");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// The `backend: [...]` matrix line, parsed into its cell names.
fn matrix_backends(yml: &str) -> Vec<String> {
    let line = yml
        .lines()
        .map(str::trim)
        .find(|l| l.starts_with("backend:"))
        .expect("ci.yml has a `backend:` matrix line");
    let inner = line
        .split_once('[')
        .and_then(|(_, rest)| rest.split_once(']'))
        .map(|(inner, _)| inner)
        .expect("`backend:` line is a flow list");
    inner
        .split(',')
        .map(|cell| {
            cell.trim()
                .trim_matches(|c| c == '"' || c == '\'')
                .to_string()
        })
        .filter(|cell| !cell.is_empty())
        .collect()
}

#[test]
fn every_backend_has_a_ci_matrix_cell() {
    let yml = ci_yml();
    let cells = matrix_backends(&yml);
    for kind in BackendKind::ALL {
        assert!(
            cells.iter().any(|c| c == kind.name()),
            "backend `{}` is parseable (STRETCH_MINCOST_BACKEND accepts it) but \
             .github/workflows/ci.yml has no matrix cell for it; cells: {cells:?}",
            kind.name()
        );
    }
}

#[test]
fn every_ci_matrix_cell_names_a_parseable_backend() {
    // The reverse direction: a stale cell (renamed or removed backend)
    // would make that whole CI column run under an aborting configuration.
    for cell in matrix_backends(&ci_yml()) {
        assert!(
            BackendKind::parse(&cell).is_some(),
            "ci.yml matrix cell `{cell}` is not a recognised STRETCH_MINCOST_BACKEND value"
        );
    }
}

#[test]
fn incremental_matrix_leg_is_pinned() {
    // The incremental dimension: every cell of the build-and-test matrix
    // must also run with the persistent delta-update engine both off and
    // on (`STRETCH_INCREMENTAL`), because incremental/rebuild solves are
    // contractually bit-identical and only the matrix proves it on every
    // backend.  Dropping the leg (or the env wiring that feeds the knob)
    // would silently stop exercising the rebuild path in CI.
    let yml = ci_yml();
    assert!(
        yml.contains("incremental: [\"0\", \"1\"]"),
        "ci.yml lost the `incremental` matrix dimension"
    );
    assert!(
        yml.contains("STRETCH_INCREMENTAL: ${{ matrix.incremental }}"),
        "ci.yml no longer wires the incremental matrix cell into STRETCH_INCREMENTAL"
    );
}

#[test]
fn serve_smoke_leg_is_pinned() {
    // The crash-safety leg: reference stream through `stretch-serve`,
    // SIGKILL mid-stream, journal-replay recovery, diff against the
    // uninterrupted run — plus the rotation-under-load pass, which seals
    // segments, publishes snapshots and recovers suffix-only with a small
    // segment threshold.  Dropping the job (or any of its steps) would
    // silently un-test the serve layer's recovery contract, so the job
    // name and each command/knob are pinned here.
    let yml = ci_yml();
    assert!(
        yml.contains("serve-smoke:"),
        "ci.yml lost the `serve-smoke` job"
    );
    for needle in [
        "--bin repro_serve",
        "--test serve_recover",
        "cargo test -q -p stretch-serve",
        "STRETCH_SERVE_SEGMENT_RECORDS=4",
        "for mode in rotate compact",
    ] {
        assert!(
            yml.contains(needle),
            "ci.yml serve-smoke job is missing the `{needle}` step"
        );
    }
}

#[test]
fn analyze_leg_is_pinned() {
    // The determinism-contract lint: `stretch-analyze -- check` over the
    // workspace sources with the JSON gate, plus the analyzer's own
    // fixture and allowlist-drift tests.  Dropping the job would let the
    // contract (float ordering, hash collections, env reads, wall clocks,
    // ingest panics) rot unenforced, so the job and both steps are pinned.
    let yml = ci_yml();
    assert!(
        yml.contains("\n  analyze:"),
        "ci.yml lost the `analyze` job"
    );
    for needle in [
        "cargo run --release -p stretch-analyze -- check --json",
        "cargo test -q -p stretch-analyze",
    ] {
        assert!(
            yml.contains(needle),
            "ci.yml analyze job is missing the `{needle}` step"
        );
    }
}

#[test]
fn invariant_audit_leg_is_pinned() {
    // The runtime-audit leg: tier-1 suite plus the kill-and-recover smoke
    // with the `invariant-audit` feature armed.  Without this job the
    // audit layer would compile (cfg'd out) but never actually run in CI.
    let yml = ci_yml();
    assert!(
        yml.contains("\n  invariant-audit:"),
        "ci.yml lost the `invariant-audit` job"
    );
    for needle in [
        "cargo test -q --features invariant-audit",
        "--features invariant-audit --test serve_recover",
    ] {
        assert!(
            yml.contains(needle),
            "ci.yml invariant-audit job is missing the `{needle}` step"
        );
    }
}

#[test]
fn trace_replay_leg_is_pinned() {
    // The recorded-trace leg: `.strt` format suite (exhaustive corruption
    // sweep, version fencing), record-and-replay smoke across the full
    // backend × warm matrix, and the cross-backend replay contract tests.
    // Dropping any step would silently un-test the trace codec or the
    // replay determinism contract.
    let yml = ci_yml();
    assert!(
        yml.contains("\n  trace-replay:"),
        "ci.yml lost the `trace-replay` job"
    );
    for needle in [
        "cargo test -q -p stretch-serve --test trace_format",
        "--bin repro_trace",
        "cargo test -q -p stretch-serve --test serve_replay",
    ] {
        assert!(
            yml.contains(needle),
            "ci.yml trace-replay job is missing the `{needle}` step"
        );
    }
}

#[test]
fn adversary_regression_leg_is_pinned() {
    // The adversary leg: per-backend golden fixtures of the worst-found
    // streams, the pinned theorems margin over the trivial ratio bound,
    // and the end-to-end search smoke (which also records the worst
    // stream as a sealed trace).  Without this job the adversary could
    // lose its teeth — or the scheduler could get quietly easier to
    // attack — with no CI signal.
    let yml = ci_yml();
    assert!(
        yml.contains("\n  adversary-regression:"),
        "ci.yml lost the `adversary-regression` job"
    );
    for needle in [
        "cargo test -q -p stretch-experiments --test adversary_golden",
        "cargo test -q -p stretch-experiments --test theorems",
        "STRETCH_TRACE_MODE=adversary",
        "STRETCH_TRACE_OUT=",
    ] {
        assert!(
            yml.contains(needle),
            "ci.yml adversary-regression job is missing the `{needle}` step"
        );
    }
}

#[test]
fn baseline_completeness_list_covers_every_engine_row() {
    // The bench-smoke job greps one key per engine row; that list must stay
    // in lockstep with the rows the bench records and the drift gate
    // re-measures (`engine_row_keys` — itself derived from
    // `BackendKind::ALL`).
    let yml = ci_yml();
    for key in engine_row_keys() {
        assert!(
            yml.contains(&format!("\"{key}\"")),
            "ci.yml baseline-completeness step is missing \"{key}\""
        );
    }
}

#[test]
fn recorded_baseline_carries_every_engine_row() {
    // And the checked-in trajectory itself must already have the rows —
    // the in-repo version of the CI grep, so a missing re-record fails
    // locally too.
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_baseline.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let entries = stretch_experiments::baseline::parse(&text);
    for key in engine_row_keys() {
        assert!(
            entries.iter().any(|(k, _)| *k == key),
            "BENCH_baseline.json is missing \"{key}\"; re-record with \
             `cargo bench -p stretch-bench --bench scheduler_overhead`"
        );
    }
}
