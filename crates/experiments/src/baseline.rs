//! The `BENCH_baseline.json` perf-trajectory file.
//!
//! Thin re-export of [`stretch_metrics::baseline`], the single
//! implementation of the flat `"section/name" → seconds` format.  Two
//! producers merge into the file: the vendored Criterion harness (after
//! every `cargo bench`) and [`crate::overhead`] via the `repro_overhead`
//! binary (per-event scheduler means).  [`upsert`] merges instead of
//! overwriting, so the sections coexist.

pub use stretch_metrics::baseline::{parse, render, upsert};
