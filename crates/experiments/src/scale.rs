//! The scaling-trajectory study recorded as `BENCH_scale.json`.
//!
//! ROADMAP's "Scale experiments" item asks for the campaign engine's
//! throughput trajectory as instances grow towards paper scale and as the
//! thread pool widens.  This module measures both axes for each min-cost
//! backend on the on-line scheduler (the paper's recommended policy and the
//! engine's hot path):
//!
//! * `scale/jobs-per-sec/n<N>/<backend>` — scheduling throughput on
//!   instances of ~`N` jobs (full parallelism);
//! * `scale/wall-clock/n<N>/<backend>` — wall-clock seconds for that rung;
//! * `scale/jobs-per-sec/threads<T>-n<N>/<backend>` — throughput at the
//!   largest `N` with the pool pinned to `T` workers (the speedup
//!   trajectory; `N` is in the key so studies at different sizes can never
//!   silently overwrite each other's rungs);
//! * `scale/wall-clock/threads<T>-n<N>/<backend>` — wall-clock for that
//!   rung.
//!
//! The flat `"section/name" → seconds-or-rate` format is the same one
//! `BENCH_baseline.json` uses ([`stretch_metrics::baseline`]), so the two
//! trajectories diff with the same tooling.

use crate::campaign::instance_seed;
use crate::config::ExperimentConfig;
use crate::heuristics::HeuristicKind;
use crate::runner::{draw_instance_scaled, InstanceScale};
use rayon::prelude::*;
use stretch_core::SolverConfig;

/// Settings of one scale study.
#[derive(Clone, Debug)]
pub struct ScaleSettings {
    /// Instance sizes (expected jobs) for the n-scaling axis.
    pub job_sizes: Vec<usize>,
    /// Thread counts for the speedup axis (measured at the largest size).
    pub thread_counts: Vec<usize>,
    /// Instances measured per rung.
    pub instances_per_point: usize,
    /// Base seed (instances are derived with [`instance_seed`]).
    pub base_seed: u64,
}

impl Default for ScaleSettings {
    fn default() -> Self {
        // Sized so the full study (both backends, both axes) completes in a
        // few minutes even on one core: the on-line scheduler's
        // per-instance cost grows roughly cubically in n, so the largest
        // rung dominates.  `instances_per_point` must cover the widest
        // thread rung (the pool clamps to the item count, so fewer items
        // than threads would silently measure a narrower pool).
        ScaleSettings {
            job_sizes: vec![50, 100, 200],
            thread_counts: vec![1, 2, 4],
            instances_per_point: 4,
            base_seed: 2006,
        }
    }
}

/// A bounded smoke variant for CI: one rung per axis, tiny instances.
impl ScaleSettings {
    /// CI-sized study: still exercises both axes and both backends, in
    /// seconds instead of minutes.
    pub fn smoke() -> Self {
        ScaleSettings {
            job_sizes: vec![20, 40],
            thread_counts: vec![1, 2],
            instances_per_point: 2,
            base_seed: 2006,
        }
    }
}

/// One measured rung of the trajectory.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// `BENCH_scale.json` key.
    pub key: String,
    /// Measured value (jobs/sec for throughput keys, seconds for wall-clock
    /// keys).
    pub value: f64,
}

/// The reference configuration the study schedules (3 sites, the platform
/// on which every heuristic of the paper runs).
fn scale_config() -> ExperimentConfig {
    ExperimentConfig {
        sites: 3,
        databanks: 3,
        availability: 0.6,
        density: 1.5,
        ..Default::default()
    }
}

/// Schedules `instances` instances of ~`jobs` jobs on the on-line scheduler
/// and returns `(total_jobs, wall_clock_seconds)`.  Fans out over the
/// current thread-pool width; the caller pins the width (`rayon::
/// with_threads`) for the speedup axis.
fn measure(jobs: usize, instances: usize, base_seed: u64, solver: SolverConfig) -> (usize, f64) {
    let config = scale_config();
    let work: Vec<usize> = (0..instances).collect();
    let start = std::time::Instant::now();
    let counts: Vec<usize> = work
        .par_iter()
        .map(|&i| {
            let seed = instance_seed(base_seed, jobs, i);
            let instance = draw_instance_scaled(&config, InstanceScale::TargetJobs(jobs), seed);
            let scheduler = HeuristicKind::Online.scheduler_with(solver);
            scheduler
                .schedule(&instance)
                .expect("online scheduler never fails on reference configs");
            instance.num_jobs()
        })
        .collect();
    (counts.iter().sum(), start.elapsed().as_secs_f64())
}

/// Runs the full study: both axes, both backends.
pub fn run_scale_study(settings: &ScaleSettings) -> Vec<ScalePoint> {
    let widest = settings.thread_counts.iter().copied().max().unwrap_or(1);
    assert!(
        settings.instances_per_point >= widest,
        "instances_per_point ({}) must cover the widest thread rung ({widest}): \
         the pool clamps to the item count, so the rung would silently measure \
         a narrower pool",
        settings.instances_per_point,
    );
    let mut points = Vec::new();
    for solver in SolverConfig::all_backends() {
        let backend = solver.backend.name();
        for &n in &settings.job_sizes {
            let (total_jobs, wall) =
                measure(n, settings.instances_per_point, settings.base_seed, solver);
            points.push(ScalePoint {
                key: format!("scale/jobs-per-sec/n{n}/{backend}"),
                value: total_jobs as f64 / wall.max(1e-12),
            });
            points.push(ScalePoint {
                key: format!("scale/wall-clock/n{n}/{backend}"),
                value: wall,
            });
        }
        let n = *settings.job_sizes.last().expect("at least one size");
        for &threads in &settings.thread_counts {
            let (total_jobs, wall) = rayon::with_threads(threads, || {
                measure(n, settings.instances_per_point, settings.base_seed, solver)
            });
            points.push(ScalePoint {
                key: format!("scale/jobs-per-sec/threads{threads}-n{n}/{backend}"),
                value: total_jobs as f64 / wall.max(1e-12),
            });
            points.push(ScalePoint {
                key: format!("scale/wall-clock/threads{threads}-n{n}/{backend}"),
                value: wall,
            });
        }
    }
    points
}

/// Renders the study as an aligned table for the binary's stdout.
pub fn render(points: &[ScalePoint]) -> String {
    let mut out = String::from("Scaling trajectory (jobs/sec and wall-clock per rung)\n");
    for p in points {
        out.push_str(&format!("{:<44} {:>14.4}\n", p.key, p.value));
    }
    out
}

/// Merges the study into a `BENCH_scale.json`-format file.
pub fn write_bench_scale(path: &std::path::Path, points: &[ScalePoint]) -> std::io::Result<()> {
    let entries: Vec<(String, f64)> = points.iter().map(|p| (p.key.clone(), p.value)).collect();
    stretch_metrics::baseline::upsert(path, &entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_covers_both_axes_and_backends() {
        let points = run_scale_study(&ScaleSettings::smoke());
        // One rung set per backend: (2 sizes + 2 thread counts) × 2 metrics.
        let backends = SolverConfig::all_backends().count();
        assert_eq!(points.len(), backends * (2 + 2) * 2);
        for p in &points {
            assert!(
                p.value.is_finite() && p.value > 0.0,
                "{}: {}",
                p.key,
                p.value
            );
        }
        for backend in ["primal-dual", "simplex", "monge"] {
            assert!(points
                .iter()
                .any(|p| p.key == format!("scale/jobs-per-sec/n20/{backend}")));
            assert!(points
                .iter()
                .any(|p| p.key == format!("scale/wall-clock/threads1-n40/{backend}")));
        }
        let rendered = render(&points);
        assert!(rendered.contains("scale/jobs-per-sec/n20/primal-dual"));
    }
}
