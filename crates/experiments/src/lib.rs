//! # stretch-experiments
//!
//! The reproduction harness for the evaluation section (§5) of the paper:
//! the 162-configuration experimental grid, the heuristic battery of Table 1,
//! the Figure 3 comparison of the optimized and non-optimized on-line
//! heuristics, and the scheduling-overhead study of §5.3.
//!
//! Every table and figure has a dedicated binary (`repro_table1`,
//! `repro_tables_by_sites`, `repro_figure3`, …) and a scaled-down Criterion
//! bench in the `stretch-bench` crate.  The default campaign settings are
//! smaller than the paper's (fewer instances per configuration and shorter
//! workloads) so a full reproduction runs on a laptop; `EXPERIMENTS.md`
//! records the exact settings used and the paper-vs-measured comparison.

pub mod baseline;
pub mod campaign;
pub mod config;
pub mod drift;
pub mod figure3;
pub mod heuristics;
pub mod json;
pub mod overhead;
pub mod runner;
pub mod scale;
pub mod tables;

pub use campaign::{
    instance_seed, run_campaign, run_campaign_streaming, CampaignResult, CampaignSettings,
    CampaignSummary,
};
pub use config::{
    adversary_budget, full_grid, reduced_grid, scenario_families, scenario_grid, ExperimentConfig,
};
pub use drift::{engine_row_keys, run_drift_check, DriftReport, DRIFT_FACTOR, DRIFT_SAMPLES};
pub use figure3::{run_figure3, Figure3Point, Figure3Settings};
pub use heuristics::{heuristic_battery, HeuristicKind, TABLE1_ORDER};
pub use overhead::{run_overhead_study, OverheadReport};
pub use runner::{run_instance, trace_fixture_path, InstanceObservation, InstanceScale};
pub use scale::{run_scale_study, ScaleSettings};
pub use tables::{
    table1, tables_by_availability, tables_by_databases, tables_by_density, tables_by_sites,
};
