//! Assembling the paper's tables from campaign observations.
//!
//! Every table of the paper has the same shape: one row per heuristic,
//! `Mean / SD / Max` of the **max-stretch degradation** (the heuristic's
//! max-stretch divided by the off-line optimal max-stretch of the same
//! instance) and of the **sum-stretch degradation** (divided by the best
//! sum-stretch observed on that instance).  Table 1 aggregates all
//! configurations; Tables 2–16 partition the grid by platform size, workload
//! density, number of databanks and database availability.

use crate::heuristics::{HeuristicKind, TABLE1_ORDER};
use crate::runner::InstanceObservation;
use stretch_metrics::{DegradationAccumulator, MetricsTable};
use stretch_platform::reference;

/// The per-instance degradation inputs shared by the batch and streaming
/// accumulators: max-stretch values, sum-stretch values (both `INFINITY`
/// for skipped heuristics) and the max-stretch reference (the off-line
/// optimum of the instance, when it ran).
pub fn degradation_values(obs: &InstanceObservation) -> (Vec<f64>, Vec<f64>, Option<f64>) {
    let max_values: Vec<f64> = obs
        .observations
        .iter()
        .map(|o| o.map(|v| v.max_stretch).unwrap_or(f64::INFINITY))
        .collect();
    let sum_values: Vec<f64> = obs
        .observations
        .iter()
        .map(|o| o.map(|v| v.sum_stretch).unwrap_or(f64::INFINITY))
        .collect();
    let offline = obs.of(HeuristicKind::Offline).map(|o| o.max_stretch);
    (max_values, sum_values, offline)
}

/// Builds the degradation accumulators (max-stretch and sum-stretch) from a
/// set of observations.
fn accumulate(
    observations: &[&InstanceObservation],
) -> (DegradationAccumulator, DegradationAccumulator) {
    let names: Vec<&str> = TABLE1_ORDER.iter().map(|k| k.name()).collect();
    let mut max_acc = DegradationAccumulator::new(&names);
    let mut sum_acc = DegradationAccumulator::new(&names);
    for obs in observations {
        let (max_values, sum_values, offline) = degradation_values(obs);
        // Max-stretch degradation is measured against the off-line optimum;
        // sum-stretch against the best heuristic.
        max_acc.record(&max_values, offline);
        sum_acc.record(&sum_values, None);
    }
    (max_acc, sum_acc)
}

/// Builds one paper-style table from a set of observations.
pub fn build_table(caption: &str, observations: &[&InstanceObservation]) -> MetricsTable {
    let (max_acc, sum_acc) = accumulate(observations);
    let mut table = MetricsTable::new(caption);
    for (k, kind) in TABLE1_ORDER.iter().enumerate() {
        table.push_row(kind.name(), max_acc.stats(k), sum_acc.stats(k));
    }
    table
}

/// Table 1: aggregate statistics over every configuration.
pub fn table1(observations: &[InstanceObservation]) -> MetricsTable {
    let refs: Vec<&InstanceObservation> = observations.iter().collect();
    build_table(
        "Table 1: aggregate statistics over all platform/application configurations",
        &refs,
    )
}

/// One partition of the observation set: label + membership predicate.
type Partition = (String, Box<dyn Fn(&InstanceObservation) -> bool>);

fn partitioned(
    observations: &[InstanceObservation],
    caption: impl Fn(&str) -> String,
    axis_values: Vec<Partition>,
) -> Vec<MetricsTable> {
    axis_values
        .into_iter()
        .map(|(label, pred)| {
            let refs: Vec<&InstanceObservation> = observations.iter().filter(|o| pred(o)).collect();
            build_table(&caption(&label), &refs)
        })
        .collect()
}

/// Tables 2–4: partition by platform size (3, 10, 20 sites).
pub fn tables_by_sites(observations: &[InstanceObservation]) -> Vec<MetricsTable> {
    partitioned(
        observations,
        |v| format!("Tables 2-4: configurations using {v} sites"),
        reference::PLATFORM_SIZES
            .iter()
            .map(|&s| {
                let pred: Box<dyn Fn(&InstanceObservation) -> bool> =
                    Box::new(move |o: &InstanceObservation| o.config.sites == s);
                (s.to_string(), pred)
            })
            .collect(),
    )
}

/// Tables 5–10: partition by workload density.
pub fn tables_by_density(observations: &[InstanceObservation]) -> Vec<MetricsTable> {
    partitioned(
        observations,
        |v| format!("Tables 5-10: configurations with workload density {v}"),
        reference::WORKLOAD_DENSITIES
            .iter()
            .map(|&d| {
                let pred: Box<dyn Fn(&InstanceObservation) -> bool> =
                    Box::new(move |o: &InstanceObservation| (o.config.density - d).abs() < 1e-9);
                (format!("{d:.2}"), pred)
            })
            .collect(),
    )
}

/// Tables 11–13: partition by number of reference databanks.
pub fn tables_by_databases(observations: &[InstanceObservation]) -> Vec<MetricsTable> {
    partitioned(
        observations,
        |v| format!("Tables 11-13: configurations with {v} reference databases"),
        reference::DATABANK_COUNTS
            .iter()
            .map(|&d| {
                let pred: Box<dyn Fn(&InstanceObservation) -> bool> =
                    Box::new(move |o: &InstanceObservation| o.config.databanks == d);
                (d.to_string(), pred)
            })
            .collect(),
    )
}

/// Tables 14–16: partition by database availability.
pub fn tables_by_availability(observations: &[InstanceObservation]) -> Vec<MetricsTable> {
    partitioned(
        observations,
        |v| format!("Tables 14-16: configurations with database availability {v}"),
        reference::AVAILABILITY_LEVELS
            .iter()
            .map(|&a| {
                let pred: Box<dyn Fn(&InstanceObservation) -> bool> =
                    Box::new(move |o: &InstanceObservation| {
                        (o.config.availability - a).abs() < 1e-9
                    });
                (format!("{}%", (a * 100.0) as u32), pred)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignSettings};
    use crate::config::reduced_grid;

    fn sample_observations() -> Vec<InstanceObservation> {
        run_campaign(&reduced_grid(), CampaignSettings::smoke()).observations
    }

    #[test]
    fn table1_has_eleven_rows_with_offline_reference_at_one() {
        let obs = sample_observations();
        let t = table1(&obs);
        assert_eq!(t.rows.len(), 11);
        let offline = t.row("Offline").unwrap().max_stretch.unwrap();
        // The offline optimal is its own reference, so its mean degradation
        // is 1 (tiny numerical slack allowed, cf. the anomaly discussed in
        // §5.3).
        assert!(
            (offline.mean - 1.0).abs() < 5e-3,
            "offline mean {}",
            offline.mean
        );
        // MCT is much worse than the optimal on max-stretch.
        let mct = t.row("MCT").unwrap().max_stretch.unwrap();
        assert!(mct.mean > offline.mean);
    }

    #[test]
    fn partitioned_tables_cover_every_axis_value() {
        let obs = sample_observations();
        assert_eq!(tables_by_sites(&obs).len(), 3);
        assert_eq!(tables_by_density(&obs).len(), 6);
        assert_eq!(tables_by_databases(&obs).len(), 3);
        assert_eq!(tables_by_availability(&obs).len(), 3);
    }

    #[test]
    fn bender98_rows_are_empty_on_partitions_without_small_platforms() {
        let obs = sample_observations();
        let by_sites = tables_by_sites(&obs);
        // The 10-site table (index 1) has no Bender98 data.
        let bender = by_sites[1].row("Bender98").unwrap();
        assert!(bender.max_stretch.is_none());
    }
}
