//! The battery of schedulers evaluated in Table 1.

use stretch_core::{
    Bender98Scheduler, ListScheduler, MctScheduler, OfflineScheduler, OnlineScheduler,
    OnlineVariant, Scheduler, SolverConfig,
};

/// The schedulers of Table 1, identified by name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HeuristicKind {
    /// The off-line optimal max-stretch algorithm (§4.3.1).
    Offline,
    /// The `Online` variant of the on-line heuristic.
    Online,
    /// The `Online-EDF` variant.
    OnlineEdf,
    /// The `Online-EGDF` variant.
    OnlineEgdf,
    /// Bender et al. 1998 (off-line optimum at each arrival + EDF, `√Δ`
    /// expansion).
    Bender98,
    /// Shortest weighted remaining processing time.
    Swrpt,
    /// Shortest remaining processing time.
    Srpt,
    /// Shortest processing time.
    Spt,
    /// Bender et al. 2002 pseudo-stretch rule.
    Bender02,
    /// Minimum completion time with divisibility.
    MctDiv,
    /// Minimum completion time (the GriPPS production policy).
    Mct,
}

/// The Table-1 display order.
pub const TABLE1_ORDER: [HeuristicKind; 11] = [
    HeuristicKind::Offline,
    HeuristicKind::Online,
    HeuristicKind::OnlineEdf,
    HeuristicKind::OnlineEgdf,
    HeuristicKind::Bender98,
    HeuristicKind::Swrpt,
    HeuristicKind::Srpt,
    HeuristicKind::Spt,
    HeuristicKind::Bender02,
    HeuristicKind::MctDiv,
    HeuristicKind::Mct,
];

impl HeuristicKind {
    /// Name used in the tables (matches the paper's).
    pub fn name(&self) -> &'static str {
        match self {
            HeuristicKind::Offline => "Offline",
            HeuristicKind::Online => "Online",
            HeuristicKind::OnlineEdf => "Online-EDF",
            HeuristicKind::OnlineEgdf => "Online-EGDF",
            HeuristicKind::Bender98 => "Bender98",
            HeuristicKind::Swrpt => "SWRPT",
            HeuristicKind::Srpt => "SRPT",
            HeuristicKind::Spt => "SPT",
            HeuristicKind::Bender02 => "Bender02",
            HeuristicKind::MctDiv => "MCT-Div",
            HeuristicKind::Mct => "MCT",
        }
    }

    /// Builds the corresponding scheduler with the default [`SolverConfig`].
    pub fn scheduler(&self) -> Box<dyn Scheduler + Send + Sync> {
        self.scheduler_with(SolverConfig::default())
    }

    /// Builds the corresponding scheduler on an explicit solver
    /// configuration (min-cost backend selection for the LP/flow-based
    /// heuristics; the list and greedy rules ignore it).
    pub fn scheduler_with(&self, config: SolverConfig) -> Box<dyn Scheduler + Send + Sync> {
        match self {
            HeuristicKind::Offline => Box::new(OfflineScheduler::with_config(config)),
            HeuristicKind::Online => {
                Box::new(OnlineScheduler::with_config(OnlineVariant::Online, config))
            }
            HeuristicKind::OnlineEdf => Box::new(OnlineScheduler::with_config(
                OnlineVariant::OnlineEdf,
                config,
            )),
            HeuristicKind::OnlineEgdf => Box::new(OnlineScheduler::with_config(
                OnlineVariant::OnlineEgdf,
                config,
            )),
            HeuristicKind::Bender98 => Box::new(Bender98Scheduler::with_config(config)),
            HeuristicKind::Swrpt => Box::new(ListScheduler::swrpt()),
            HeuristicKind::Srpt => Box::new(ListScheduler::srpt()),
            HeuristicKind::Spt => Box::new(ListScheduler::spt()),
            HeuristicKind::Bender02 => Box::new(ListScheduler::bender02()),
            HeuristicKind::MctDiv => Box::new(MctScheduler::mct_div()),
            HeuristicKind::Mct => Box::new(MctScheduler::mct()),
        }
    }

    /// The paper only runs Bender98 on 3-cluster platforms because of its
    /// prohibitive overhead (§5.3, footnote 3); the harness follows suit.
    pub fn runs_on(&self, sites: usize) -> bool {
        match self {
            HeuristicKind::Bender98 => sites <= 3,
            _ => true,
        }
    }
}

/// The full battery as `(kind, scheduler)` pairs in Table-1 order.
pub fn heuristic_battery() -> Vec<(HeuristicKind, Box<dyn Scheduler + Send + Sync>)> {
    TABLE1_ORDER.iter().map(|k| (*k, k.scheduler())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_matches_table1() {
        let battery = heuristic_battery();
        assert_eq!(battery.len(), 11);
        assert_eq!(battery[0].1.name(), "Offline");
        assert_eq!(battery[10].1.name(), "MCT");
        for (kind, sched) in &battery {
            assert_eq!(kind.name(), sched.name());
        }
    }

    #[test]
    fn bender98_is_limited_to_small_platforms() {
        assert!(HeuristicKind::Bender98.runs_on(3));
        assert!(!HeuristicKind::Bender98.runs_on(10));
        assert!(HeuristicKind::Mct.runs_on(20));
    }
}
