//! The experimental grid of §5.3.

use stretch_platform::reference;

/// One point of the experimental grid: a platform/application configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExperimentConfig {
    /// Number of clusters (sites): 3, 10 or 20 in the paper.
    pub sites: usize,
    /// Number of distinct reference databanks: 3, 10 or 20.
    pub databanks: usize,
    /// Probability that a databank is replicated on a site: 0.3, 0.6 or 0.9.
    pub availability: f64,
    /// Workload density: 0.75 … 3.0.
    pub density: f64,
}

impl ExperimentConfig {
    /// A compact label used in logs and result files.
    pub fn label(&self) -> String {
        format!(
            "sites{}_db{}_avail{:02}_dens{:.2}",
            self.sites,
            self.databanks,
            (self.availability * 100.0) as u32,
            self.density
        )
    }
}

/// The full 162-configuration grid of §5.3
/// (3 platform sizes × 3 databank counts × 3 availabilities × 6 densities).
pub fn full_grid() -> Vec<ExperimentConfig> {
    let mut grid = Vec::new();
    for &sites in &reference::PLATFORM_SIZES {
        for &databanks in &reference::DATABANK_COUNTS {
            for &availability in &reference::AVAILABILITY_LEVELS {
                for &density in &reference::WORKLOAD_DENSITIES {
                    grid.push(ExperimentConfig {
                        sites,
                        databanks,
                        availability,
                        density,
                    });
                }
            }
        }
    }
    grid
}

/// A reduced grid (one value per axis except the one being swept) used by the
/// smoke tests and the Criterion benches, which cannot afford the full grid.
pub fn reduced_grid() -> Vec<ExperimentConfig> {
    vec![
        ExperimentConfig {
            sites: 3,
            databanks: 3,
            availability: 0.6,
            density: 1.0,
        },
        ExperimentConfig {
            sites: 10,
            databanks: 10,
            availability: 0.6,
            density: 1.5,
        },
        ExperimentConfig {
            sites: 3,
            databanks: 10,
            availability: 0.9,
            density: 3.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_162_configurations() {
        let grid = full_grid();
        assert_eq!(grid.len(), 162);
        // All distinct.
        let labels: std::collections::HashSet<String> = grid.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 162);
    }

    #[test]
    fn grid_covers_every_axis_value() {
        let grid = full_grid();
        for &s in &reference::PLATFORM_SIZES {
            assert!(grid.iter().any(|c| c.sites == s));
        }
        for &d in &reference::WORKLOAD_DENSITIES {
            assert!(grid.iter().any(|c| (c.density - d).abs() < 1e-12));
        }
    }

    #[test]
    fn labels_are_readable() {
        let c = ExperimentConfig {
            sites: 3,
            databanks: 10,
            availability: 0.9,
            density: 1.25,
        };
        assert_eq!(c.label(), "sites3_db10_avail90_dens1.25");
    }
}
