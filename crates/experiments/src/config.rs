//! The experimental grid of §5.3, extended with scenario families.

use stretch_platform::reference;
use stretch_workload::{AdversaryConfig, Scenario};

/// One point of the experimental grid: a platform/application configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExperimentConfig {
    /// Number of clusters (sites): 3, 10 or 20 in the paper.
    pub sites: usize,
    /// Number of distinct reference databanks: 3, 10 or 20.
    pub databanks: usize,
    /// Probability that a databank is replicated on a site: 0.3, 0.6 or 0.9.
    pub availability: f64,
    /// Workload density: 0.75 … 3.0.
    pub density: f64,
    /// Workload scenario family; [`Scenario::Steady`] is the paper's model,
    /// the other families (bursty arrivals, heavy-tailed request sizes,
    /// skewed databank popularity) stress the heuristics at equal load.
    pub scenario: Scenario,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            sites: 3,
            databanks: 3,
            availability: 0.6,
            density: 1.0,
            scenario: Scenario::Steady,
        }
    }
}

impl ExperimentConfig {
    /// A compact label used in logs and result files.  Steady configurations
    /// keep the paper-era spelling; other scenarios append their family.
    pub fn label(&self) -> String {
        let base = format!(
            "sites{}_db{}_avail{:02}_dens{:.2}",
            self.sites,
            self.databanks,
            (self.availability * 100.0) as u32,
            self.density
        );
        match self.scenario {
            Scenario::Steady => base,
            other => format!("{base}_{}", other.label()),
        }
    }
}

/// The full 162-configuration grid of §5.3
/// (3 platform sizes × 3 databank counts × 3 availabilities × 6 densities),
/// all under the paper's steady scenario.
pub fn full_grid() -> Vec<ExperimentConfig> {
    let mut grid = Vec::new();
    for &sites in &reference::PLATFORM_SIZES {
        for &databanks in &reference::DATABANK_COUNTS {
            for &availability in &reference::AVAILABILITY_LEVELS {
                for &density in &reference::WORKLOAD_DENSITIES {
                    grid.push(ExperimentConfig {
                        sites,
                        databanks,
                        availability,
                        density,
                        scenario: Scenario::Steady,
                    });
                }
            }
        }
    }
    grid
}

/// A reduced grid (one value per axis except the one being swept) used by the
/// smoke tests and the Criterion benches, which cannot afford the full grid.
pub fn reduced_grid() -> Vec<ExperimentConfig> {
    vec![
        ExperimentConfig {
            sites: 3,
            databanks: 3,
            availability: 0.6,
            density: 1.0,
            scenario: Scenario::Steady,
        },
        ExperimentConfig {
            sites: 10,
            databanks: 10,
            availability: 0.6,
            density: 1.5,
            scenario: Scenario::Steady,
        },
        ExperimentConfig {
            sites: 3,
            databanks: 10,
            availability: 0.9,
            density: 3.0,
            scenario: Scenario::Steady,
        },
    ]
}

/// The scenario families studied beyond the paper (paper-steady first, so
/// every scenario table has the §5 baseline alongside).  The adversarial
/// family runs the seeded hill-climb with a small fixed budget so the
/// scenario grid stays cheap and reproducible; the trace family replays
/// checked-in `.strt` fixture 0.
pub fn scenario_families() -> Vec<Scenario> {
    vec![
        Scenario::Steady,
        Scenario::Bursty {
            cycles: 3,
            duty: 0.25,
        },
        Scenario::HeavyTailed { alpha: 1.5 },
        Scenario::SkewedPopularity { exponent: 1.0 },
        Scenario::Adversarial {
            seed: 0xAD5E,
            rounds: 12,
        },
        Scenario::Trace { index: 0 },
    ]
}

/// The pinned adversary search budget shared by `repro_trace`, the
/// adversary golden fixtures and the `theorems.rs` ratio bound.  Every
/// field is part of the fixture contract: changing any of them requires
/// re-blessing `tests/fixtures/trace_0.strt` and the
/// `adversary_smoke_*.golden` files (`STRETCH_BLESS=1`), and re-checking
/// the pinned ratio margin in `tests/theorems.rs`.
pub fn adversary_budget() -> AdversaryConfig {
    AdversaryConfig {
        seed: 0xADC0_FFEE,
        rounds: 32,
        candidates: 6,
        release_jitter: 0.25,
        work_factor: 16.0,
    }
}

/// The scenario grid: every [`reduced_grid`] platform point crossed with
/// every scenario family — the diversity axis the paper does not explore.
/// Used by `repro_scenarios` and the scenario smoke tests.
pub fn scenario_grid() -> Vec<ExperimentConfig> {
    let mut grid = Vec::new();
    for scenario in scenario_families() {
        for base in reduced_grid() {
            grid.push(ExperimentConfig { scenario, ..base });
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_162_configurations() {
        let grid = full_grid();
        assert_eq!(grid.len(), 162);
        // All distinct.
        let labels: std::collections::HashSet<String> = grid.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 162);
    }

    #[test]
    fn grid_covers_every_axis_value() {
        let grid = full_grid();
        for &s in &reference::PLATFORM_SIZES {
            assert!(grid.iter().any(|c| c.sites == s));
        }
        for &d in &reference::WORKLOAD_DENSITIES {
            assert!(grid.iter().any(|c| (c.density - d).abs() < 1e-12));
        }
    }

    #[test]
    fn labels_are_readable() {
        let c = ExperimentConfig {
            sites: 3,
            databanks: 10,
            availability: 0.9,
            density: 1.25,
            scenario: Scenario::Steady,
        };
        assert_eq!(c.label(), "sites3_db10_avail90_dens1.25");
        let b = ExperimentConfig {
            scenario: Scenario::Bursty {
                cycles: 3,
                duty: 0.25,
            },
            ..c
        };
        assert_eq!(b.label(), "sites3_db10_avail90_dens1.25_bursty3x0.25");
    }

    #[test]
    fn scenario_grid_crosses_families_with_platforms() {
        let grid = scenario_grid();
        assert_eq!(grid.len(), reduced_grid().len() * scenario_families().len());
        let labels: std::collections::HashSet<String> = grid.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), grid.len(), "labels must stay distinct");
        // Every family appears.
        for family in scenario_families() {
            assert!(grid.iter().any(|c| c.scenario == family));
        }
    }
}
