//! Running a full campaign over the experimental grid, in parallel.

use crate::config::ExperimentConfig;
use crate::runner::{run_instance_with, InstanceObservation};
use rayon::prelude::*;
use stretch_core::SolverConfig;

/// Settings of a campaign run.
///
/// The paper uses 200 instances per configuration and 15-minute workloads
/// (thousands of jobs); the defaults here are scaled down so the full grid
/// completes in minutes on a laptop while preserving the heuristic ranking
/// (see EXPERIMENTS.md for the measured sensitivity to these settings).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CampaignSettings {
    /// Random instances drawn per configuration (paper: 200).
    pub instances_per_config: usize,
    /// Expected number of jobs per instance (paper: the 15-minute window,
    /// i.e. hundreds to thousands of jobs depending on the configuration).
    pub target_jobs: usize,
    /// Base random seed; instance `(c, i)` uses `seed + c·10_000 + i`.
    pub base_seed: u64,
    /// Solver configuration handed to the LP/flow-based heuristics
    /// (min-cost backend selection).
    pub solver: SolverConfig,
}

impl Default for CampaignSettings {
    fn default() -> Self {
        CampaignSettings {
            instances_per_config: 5,
            target_jobs: 30,
            base_seed: 42,
            solver: SolverConfig::default(),
        }
    }
}

impl CampaignSettings {
    /// A very small setting used by smoke tests and Criterion benches.
    pub fn smoke() -> Self {
        CampaignSettings {
            instances_per_config: 1,
            target_jobs: 10,
            base_seed: 7,
            solver: SolverConfig::default(),
        }
    }

    /// This settings value on an explicit solver configuration.
    pub fn with_solver(self, solver: SolverConfig) -> Self {
        CampaignSettings { solver, ..self }
    }

    /// Reads overrides from the environment, so the reproduction binaries can
    /// be scaled up towards the paper's 200 × 15-minute campaign without
    /// recompiling:
    ///
    /// * `STRETCH_INSTANCES` — instances per configuration (default 5);
    /// * `STRETCH_JOBS` — expected jobs per instance (default 30);
    /// * `STRETCH_SEED` — base random seed (default 42);
    /// * `STRETCH_MINCOST_BACKEND` — min-cost backend of the LP/flow
    ///   heuristics (`primal-dual`, the default, or `simplex`).
    pub fn from_env() -> Self {
        let read = |name: &str, default: u64| -> u64 {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        CampaignSettings {
            instances_per_config: read("STRETCH_INSTANCES", 5) as usize,
            target_jobs: read("STRETCH_JOBS", 30) as usize,
            base_seed: read("STRETCH_SEED", 42),
            solver: SolverConfig::from_env(),
        }
    }
}

/// All observations of a campaign.
#[derive(Clone, Debug, Default)]
pub struct CampaignResult {
    /// One entry per (configuration, instance) pair.
    pub observations: Vec<InstanceObservation>,
    /// The settings the campaign was run with.
    pub settings: Option<CampaignSettings>,
}

impl CampaignResult {
    /// Observations restricted by a configuration predicate (used to build
    /// the partitioned tables 2–16).
    pub fn filtered(
        &self,
        predicate: impl Fn(&ExperimentConfig) -> bool,
    ) -> Vec<&InstanceObservation> {
        self.observations
            .iter()
            .filter(|o| predicate(&o.config))
            .collect()
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// `true` when the campaign produced no observation.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }
}

/// Runs the battery over every configuration of `grid`, in parallel over
/// (configuration, instance) pairs.
pub fn run_campaign(grid: &[ExperimentConfig], settings: CampaignSettings) -> CampaignResult {
    let work: Vec<(usize, usize)> = (0..grid.len())
        .flat_map(|c| (0..settings.instances_per_config).map(move |i| (c, i)))
        .collect();
    let observations: Vec<InstanceObservation> = work
        .par_iter()
        .map(|&(c, i)| {
            let seed = settings.base_seed + c as u64 * 10_000 + i as u64;
            run_instance_with(&grid[c], settings.target_jobs, seed, settings.solver)
        })
        .collect();
    CampaignResult {
        observations,
        settings: Some(settings),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::reduced_grid;

    #[test]
    fn smoke_campaign_produces_one_observation_per_pair() {
        let grid = reduced_grid();
        let settings = CampaignSettings::smoke();
        let result = run_campaign(&grid, settings);
        assert_eq!(result.len(), grid.len() * settings.instances_per_config);
        assert!(!result.is_empty());
        // Filtering by sites returns only matching configurations.
        let only3 = result.filtered(|c| c.sites == 3);
        assert!(only3.iter().all(|o| o.config.sites == 3));
        assert!(!only3.is_empty());
    }
}
