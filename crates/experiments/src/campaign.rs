//! Running a full campaign over the experimental grid, in parallel.
//!
//! Campaigns come in two shapes:
//!
//! * [`run_campaign`] — the batch engine: every
//!   [`InstanceObservation`] is retained, which the golden tests and the
//!   partitioned-table builders consume directly.  Fine up to a few
//!   thousand observations.
//! * [`run_campaign_streaming`] — the paper-scale engine: observations are
//!   produced in parallel, folded chunk-by-chunk into **streaming**
//!   accumulators ([`stretch_metrics::streaming`]) in deterministic order,
//!   then dropped.  Memory stays bounded by the chunk size whatever the
//!   campaign size, and the resulting [`CampaignSummary`] builds the same
//!   tables.
//!
//! Both engines fan out over the real thread pool of the vendored `rayon`
//! (`STRETCH_THREADS` workers, indexed collect), and both derive instance
//! seeds with [`instance_seed`], a splitmix64 hash of `(base_seed, config,
//! instance)` — collision-free across the paper grid, uncorrelated between
//! neighbouring configurations.

use crate::config::ExperimentConfig;
use crate::runner::{run_instance_scaled_with, InstanceObservation, InstanceScale};
use crate::tables::degradation_values;
use rayon::prelude::*;
use stretch_core::SolverConfig;
use stretch_metrics::{MetricsTable, P2Quantile, StreamingDegradation, StreamingStats};

/// Settings of a campaign run.
///
/// The paper uses 200 instances per configuration and 15-minute workloads
/// (thousands of jobs); the defaults here are scaled down so the full grid
/// completes in minutes on a laptop while preserving the heuristic ranking
/// (see EXPERIMENTS.md for the measured sensitivity to these settings).
/// [`CampaignSettings::paper`] restores the paper's scale.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CampaignSettings {
    /// Random instances drawn per configuration (paper: 200).
    pub instances_per_config: usize,
    /// Expected number of jobs per instance (paper: the 15-minute window,
    /// i.e. hundreds to thousands of jobs depending on the configuration).
    /// Ignored when [`Self::window_secs`] is set.
    pub target_jobs: usize,
    /// Fixed arrival window in seconds (the paper's 900 s), overriding the
    /// `target_jobs` scaling when set.
    pub window_secs: Option<f64>,
    /// Base random seed; instance `(c, i)` uses
    /// [`instance_seed`]`(base_seed, c, i)`.
    pub base_seed: u64,
    /// Solver configuration handed to the LP/flow-based heuristics
    /// (min-cost backend selection).
    pub solver: SolverConfig,
}

impl Default for CampaignSettings {
    fn default() -> Self {
        CampaignSettings {
            instances_per_config: 5,
            target_jobs: 30,
            window_secs: None,
            base_seed: 42,
            solver: SolverConfig::default(),
        }
    }
}

impl CampaignSettings {
    /// A very small setting used by smoke tests and Criterion benches.
    pub fn smoke() -> Self {
        CampaignSettings {
            instances_per_config: 1,
            target_jobs: 10,
            window_secs: None,
            base_seed: 7,
            solver: SolverConfig::default(),
        }
    }

    /// The paper's §5 scale: 200 instances per configuration, fixed
    /// 15-minute arrival windows (thousands of jobs on the larger
    /// platforms).  Pair with [`run_campaign_streaming`] — retaining every
    /// observation at this scale is exactly what the streaming engine
    /// exists to avoid.
    pub fn paper() -> Self {
        CampaignSettings {
            instances_per_config: 200,
            target_jobs: 0, // unused: the window is fixed
            window_secs: Some(stretch_platform::reference::ARRIVAL_WINDOW_S),
            base_seed: 42,
            solver: SolverConfig::default(),
        }
    }

    /// This settings value on an explicit solver configuration.
    pub fn with_solver(self, solver: SolverConfig) -> Self {
        CampaignSettings { solver, ..self }
    }

    /// The [`InstanceScale`] these settings draw instances at.
    pub fn scale(&self) -> InstanceScale {
        match self.window_secs {
            Some(secs) => InstanceScale::FixedWindow(secs),
            None => InstanceScale::TargetJobs(self.target_jobs),
        }
    }

    /// Reads overrides from the environment, so the reproduction binaries can
    /// be scaled up towards the paper's 200 × 15-minute campaign without
    /// recompiling:
    ///
    /// * `STRETCH_INSTANCES` — instances per configuration (default 5);
    /// * `STRETCH_JOBS` — expected jobs per instance (default 30);
    /// * `STRETCH_WINDOW` — fixed arrival window in seconds (unset by
    ///   default; setting it switches to the paper's fixed-window semantics
    ///   and makes `STRETCH_JOBS` irrelevant);
    /// * `STRETCH_SEED` — base random seed (default 42);
    /// * `STRETCH_MINCOST_BACKEND` — min-cost backend of the LP/flow
    ///   heuristics (`primal-dual`, the default, or `simplex`).
    ///
    /// Malformed values **abort with the offending string** instead of
    /// silently running the defaults (`STRETCH_JOBS=3O` used to run the
    /// default grid with no hint that the typo was ignored).
    pub fn from_env() -> Self {
        CampaignSettings {
            instances_per_config: read_env("STRETCH_INSTANCES", 5, parse_positive_count),
            target_jobs: read_env("STRETCH_JOBS", 30, parse_positive_count),
            window_secs: read_env("STRETCH_WINDOW", None, |name, raw| {
                Some(parse_positive_seconds(name, raw))
            }),
            base_seed: read_env("STRETCH_SEED", 42, parse_seed),
            solver: SolverConfig::from_env(),
        }
    }

    /// [`Self::paper`] with the same environment overrides as
    /// [`Self::from_env`] — how `repro_paper` bounds the CI smoke leg
    /// (`STRETCH_INSTANCES=1 STRETCH_WINDOW=30`) without losing the paper
    /// defaults.  `STRETCH_JOBS` is meaningless under fixed windows, so
    /// setting it here aborts rather than being silently ignored.
    pub fn paper_from_env() -> Self {
        // read_env would supply a default for an unset variable; here *any*
        // set value (unicode or not) must abort.
        match std::env::var("STRETCH_JOBS") {
            Err(std::env::VarError::NotPresent) => {}
            Ok(raw) => panic!(
                "STRETCH_JOBS is ignored by the paper preset (instances are sized \
                 by the fixed arrival window); set STRETCH_WINDOW instead, got \
                 STRETCH_JOBS=`{raw}`"
            ),
            Err(std::env::VarError::NotUnicode(_)) => panic!(
                "STRETCH_JOBS is ignored by the paper preset (instances are sized \
                 by the fixed arrival window); set STRETCH_WINDOW instead, got \
                 undecodable bytes"
            ),
        }
        let paper = Self::paper();
        CampaignSettings {
            instances_per_config: read_env(
                "STRETCH_INSTANCES",
                paper.instances_per_config,
                parse_positive_count,
            ),
            target_jobs: paper.target_jobs,
            window_secs: read_env("STRETCH_WINDOW", paper.window_secs, |name, raw| {
                Some(parse_positive_seconds(name, raw))
            }),
            base_seed: read_env("STRETCH_SEED", paper.base_seed, parse_seed),
            solver: SolverConfig::from_env(),
        }
    }
}

/// Reads an environment variable through a strict parser; unset keeps the
/// default, malformed values (including non-unicode) panic with the
/// variable name and the offending string.  Public so every binary's extra
/// knob (`STRETCH_PAPER_CONFIGS`, `STRETCH_SCALE_SMOKE`, …) shares one
/// implementation of the loud-abort contract instead of drifting copies.
pub fn read_env<T>(name: &str, default: T, parse: impl Fn(&str, &str) -> T) -> T {
    match std::env::var(name) {
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(_)) => {
            panic!("{name} must be valid unicode, got undecodable bytes")
        }
        Ok(raw) => parse(name, &raw),
    }
}

/// Strict parser for count-valued settings: a positive integer.
pub fn parse_positive_count(name: &str, raw: &str) -> usize {
    match raw.trim().parse::<usize>() {
        Ok(0) => panic!("{name} must be at least 1, got `{raw}`"),
        Ok(n) => n,
        Err(_) => panic!("{name} must be a positive integer, got `{raw}`"),
    }
}

/// Strict parser for seed-valued settings: any u64.
fn parse_seed(name: &str, raw: &str) -> u64 {
    raw.trim()
        .parse::<u64>()
        .unwrap_or_else(|_| panic!("{name} must be an unsigned integer, got `{raw}`"))
}

/// Strict parser for duration-valued settings: positive finite seconds.
fn parse_positive_seconds(name: &str, raw: &str) -> f64 {
    match raw.trim().parse::<f64>() {
        Ok(secs) if secs > 0.0 && secs.is_finite() => secs,
        Ok(_) => panic!("{name} must be a positive number of seconds, got `{raw}`"),
        Err(_) => panic!("{name} must be a number of seconds, got `{raw}`"),
    }
}

/// SplitMix64 finaliser (the mixing function of the vendored `SmallRng`).
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the workload seed of instance `i` of configuration `c`.
///
/// The historical scheme `base + c·10_000 + i` collided as soon as
/// `instances_per_config` reached 10 000 and gave neighbouring
/// configurations overlapping, correlated seed ranges.  Hashing the whole
/// tuple through two splitmix64 rounds gives every `(c, i)` pair its own
/// pseudorandom 64-bit stream index; the regression test pins that the
/// paper grid (162 × 200) — and far beyond — stays collision-free.
pub fn instance_seed(base_seed: u64, config: usize, instance: usize) -> u64 {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    let c = splitmix64(base_seed ^ (config as u64).wrapping_add(1).wrapping_mul(GOLDEN));
    splitmix64(c ^ (instance as u64).wrapping_add(1).wrapping_mul(GOLDEN))
}

/// All observations of a campaign.
#[derive(Clone, Debug, Default)]
pub struct CampaignResult {
    /// One entry per (configuration, instance) pair.
    pub observations: Vec<InstanceObservation>,
    /// The settings the campaign was run with.
    pub settings: Option<CampaignSettings>,
}

impl CampaignResult {
    /// Observations restricted by a configuration predicate (used to build
    /// the partitioned tables 2–16).
    pub fn filtered(
        &self,
        predicate: impl Fn(&ExperimentConfig) -> bool,
    ) -> Vec<&InstanceObservation> {
        self.observations
            .iter()
            .filter(|o| predicate(&o.config))
            .collect()
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// `true` when the campaign produced no observation.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }
}

/// Runs the battery over every configuration of `grid`, in parallel over
/// (configuration, instance) pairs, retaining every observation.
pub fn run_campaign(grid: &[ExperimentConfig], settings: CampaignSettings) -> CampaignResult {
    let work: Vec<(usize, usize)> = (0..grid.len())
        .flat_map(|c| (0..settings.instances_per_config).map(move |i| (c, i)))
        .collect();
    let observations: Vec<InstanceObservation> = work
        .par_iter()
        .map(|&(c, i)| {
            let seed = instance_seed(settings.base_seed, c, i);
            run_instance_scaled_with(&grid[c], settings.scale(), seed, settings.solver)
        })
        .collect();
    CampaignResult {
        observations,
        settings: Some(settings),
    }
}

/// Streaming aggregates of one configuration.
#[derive(Clone, Debug)]
pub struct ConfigSummary {
    /// The configuration these aggregates describe.
    pub config: ExperimentConfig,
    /// Max-stretch degradation per heuristic (vs the off-line optimum).
    pub max_stretch: StreamingDegradation,
    /// Sum-stretch degradation per heuristic (vs the best heuristic).
    pub sum_stretch: StreamingDegradation,
    /// Job counts of the instances drawn from this configuration.
    pub jobs: StreamingStats,
    /// Arrival-event counts of those instances.
    pub events: StreamingStats,
}

/// Bounded-memory result of a paper-scale campaign: per-configuration
/// streaming aggregates instead of per-instance observations.
#[derive(Clone, Debug)]
pub struct CampaignSummary {
    /// One summary per grid configuration, in grid order.
    pub per_config: Vec<ConfigSummary>,
    /// P² sketch of the per-instance job counts across the whole campaign
    /// (median): at paper scale the fixed window makes instance sizes vary
    /// by platform and scenario, and the median is what "thousands of jobs"
    /// claims are checked against.
    pub jobs_p50: P2Quantile,
    /// P² sketch of the per-instance job counts (99th percentile): the
    /// largest instances the engine had to absorb, the number that bounds
    /// worst-case memory and per-event latency.
    pub jobs_p99: P2Quantile,
    /// The settings the campaign was run with.
    pub settings: CampaignSettings,
    /// Wall-clock spent producing and folding the observations, seconds.
    pub elapsed_seconds: f64,
}

impl CampaignSummary {
    /// Total instances aggregated.
    pub fn instances(&self) -> usize {
        self.per_config.iter().map(|c| c.jobs.count()).sum()
    }

    /// Total jobs scheduled across the whole campaign (each instance's jobs
    /// are scheduled once per heuristic; this counts them once).
    pub fn total_jobs(&self) -> f64 {
        self.per_config
            .iter()
            .map(|c| c.jobs.mean() * c.jobs.count() as f64)
            .sum()
    }

    /// Aggregate throughput of the campaign: jobs folded per wall-clock
    /// second (the scaling-trajectory metric of `BENCH_scale.json`).
    pub fn jobs_per_second(&self) -> f64 {
        self.total_jobs() / self.elapsed_seconds.max(1e-12)
    }

    /// Builds one paper-style table over the configurations matching
    /// `predicate` (exact merge of the per-configuration streams).
    pub fn table(
        &self,
        caption: &str,
        predicate: impl Fn(&ExperimentConfig) -> bool,
    ) -> MetricsTable {
        let names: Vec<&str> = crate::heuristics::TABLE1_ORDER
            .iter()
            .map(|k| k.name())
            .collect();
        let mut max_acc = StreamingDegradation::new(&names);
        let mut sum_acc = StreamingDegradation::new(&names);
        for summary in self.per_config.iter().filter(|s| predicate(&s.config)) {
            max_acc.merge(&summary.max_stretch);
            sum_acc.merge(&summary.sum_stretch);
        }
        let mut table = MetricsTable::new(caption);
        for (k, kind) in crate::heuristics::TABLE1_ORDER.iter().enumerate() {
            table.push_row(kind.name(), max_acc.stats(k), sum_acc.stats(k));
        }
        table
    }

    /// Table 1 over every configuration of the campaign.
    pub fn table1(&self) -> MetricsTable {
        self.table(
            "Table 1: aggregate statistics over all platform/application configurations",
            |_| true,
        )
    }
}

/// Number of observations each streaming chunk holds in memory (a few
/// thread-pool rounds; at most this many `InstanceObservation`s are alive
/// at once however large the campaign).
pub const STREAM_CHUNK: usize = 64;

/// Runs the battery over every configuration of `grid` with streaming
/// aggregation: observations are produced in parallel chunk by chunk,
/// folded into per-configuration accumulators **in sequential order** (so
/// the aggregates are independent of the thread count), then dropped.
pub fn run_campaign_streaming(
    grid: &[ExperimentConfig],
    settings: CampaignSettings,
) -> CampaignSummary {
    let names: Vec<&str> = crate::heuristics::TABLE1_ORDER
        .iter()
        .map(|k| k.name())
        .collect();
    let start = std::time::Instant::now();
    let mut per_config: Vec<ConfigSummary> = grid
        .iter()
        .map(|&config| ConfigSummary {
            config,
            max_stretch: StreamingDegradation::new(&names),
            sum_stretch: StreamingDegradation::new(&names),
            jobs: StreamingStats::new(),
            events: StreamingStats::new(),
        })
        .collect();

    let mut jobs_p50 = P2Quantile::new(0.5);
    let mut jobs_p99 = P2Quantile::new(0.99);
    let work: Vec<(usize, usize)> = (0..grid.len())
        .flat_map(|c| (0..settings.instances_per_config).map(move |i| (c, i)))
        .collect();
    for chunk in work.chunks(STREAM_CHUNK) {
        let observations: Vec<InstanceObservation> = chunk
            .par_iter()
            .map(|&(c, i)| {
                let seed = instance_seed(settings.base_seed, c, i);
                run_instance_scaled_with(&grid[c], settings.scale(), seed, settings.solver)
            })
            .collect();
        for (&(c, _), obs) in chunk.iter().zip(&observations) {
            let summary = &mut per_config[c];
            let (max_values, sum_values, reference) = degradation_values(obs);
            summary.max_stretch.record(&max_values, reference);
            summary.sum_stretch.record(&sum_values, None);
            summary.jobs.observe(obs.num_jobs as f64);
            summary.events.observe(obs.num_events as f64);
            jobs_p50.observe(obs.num_jobs as f64);
            jobs_p99.observe(obs.num_jobs as f64);
        }
    }
    CampaignSummary {
        per_config,
        jobs_p50,
        jobs_p99,
        settings,
        elapsed_seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::reduced_grid;

    #[test]
    fn smoke_campaign_produces_one_observation_per_pair() {
        let grid = reduced_grid();
        let settings = CampaignSettings::smoke();
        let result = run_campaign(&grid, settings);
        assert_eq!(result.len(), grid.len() * settings.instances_per_config);
        assert!(!result.is_empty());
        // Filtering by sites returns only matching configurations.
        let only3 = result.filtered(|c| c.sites == 3);
        assert!(only3.iter().all(|o| o.config.sites == 3));
        assert!(!only3.is_empty());
    }

    #[test]
    fn instance_seeds_are_collision_free_on_the_paper_grid() {
        // 162 configurations × 200 instances (the paper's scale), plus a
        // stress margin beyond the historical 10 000-instance collision
        // threshold.
        let mut seen = std::collections::HashSet::new();
        for c in 0..162 {
            for i in 0..200 {
                assert!(
                    seen.insert(instance_seed(42, c, i)),
                    "seed collision at ({c}, {i})"
                );
            }
        }
        // The old scheme collided at (0, 10_000) vs (1, 0); the hash must
        // not.
        let mut stress = std::collections::HashSet::new();
        for c in 0..4 {
            for i in 0..30_000 {
                assert!(
                    stress.insert(instance_seed(7, c, i)),
                    "seed collision at ({c}, {i})"
                );
            }
        }
    }

    #[test]
    fn instance_seeds_decorrelate_neighbouring_configs() {
        // Under the old scheme config c+1 replayed config c's seeds offset
        // by 10 000; the hash gives disjoint, unordered streams.
        let a: Vec<u64> = (0..100).map(|i| instance_seed(42, 0, i)).collect();
        let b: Vec<u64> = (0..100).map(|i| instance_seed(42, 1, i)).collect();
        assert!(a.iter().all(|s| !b.contains(s)));
        // And changing the base seed moves every stream.
        let c: Vec<u64> = (0..100).map(|i| instance_seed(43, 0, i)).collect();
        assert!(a.iter().all(|s| !c.contains(s)));
    }

    #[test]
    fn strict_parsers_accept_good_values() {
        assert_eq!(parse_positive_count("X", "12"), 12);
        assert_eq!(parse_positive_count("X", " 7 "), 7);
        assert_eq!(parse_seed("X", "0"), 0);
        assert_eq!(parse_positive_seconds("X", "900"), 900.0);
        assert_eq!(parse_positive_seconds("X", "0.5"), 0.5);
    }

    #[test]
    #[should_panic(expected = "STRETCH_JOBS must be a positive integer, got `3O`")]
    fn malformed_count_aborts_with_the_offending_string() {
        parse_positive_count("STRETCH_JOBS", "3O");
    }

    #[test]
    #[should_panic(expected = "STRETCH_INSTANCES must be at least 1, got `0`")]
    fn zero_instances_aborts() {
        parse_positive_count("STRETCH_INSTANCES", "0");
    }

    #[test]
    #[should_panic(expected = "STRETCH_SEED must be an unsigned integer, got `-3`")]
    fn negative_seed_aborts() {
        parse_seed("STRETCH_SEED", "-3");
    }

    #[test]
    #[should_panic(expected = "STRETCH_WINDOW must be a positive number of seconds, got `-900`")]
    fn negative_window_aborts() {
        parse_positive_seconds("STRETCH_WINDOW", "-900");
    }

    #[test]
    fn paper_preset_uses_fixed_windows() {
        let paper = CampaignSettings::paper();
        assert_eq!(paper.instances_per_config, 200);
        assert_eq!(paper.window_secs, Some(900.0));
        assert_eq!(paper.scale(), InstanceScale::FixedWindow(900.0));
        // The laptop default still scales by expected job count.
        assert_eq!(
            CampaignSettings::default().scale(),
            InstanceScale::TargetJobs(30)
        );
    }

    #[test]
    fn streaming_summary_matches_the_batch_tables() {
        let grid = reduced_grid();
        let settings = CampaignSettings {
            instances_per_config: 2,
            target_jobs: 8,
            ..CampaignSettings::smoke()
        };
        let batch = run_campaign(&grid, settings);
        let summary = run_campaign_streaming(&grid, settings);
        assert_eq!(summary.instances(), batch.len());
        let batch_table = crate::tables::table1(&batch.observations);
        let stream_table = summary.table1();
        for (b, s) in batch_table.rows.iter().zip(&stream_table.rows) {
            assert_eq!(b.name, s.name);
            for (bs, ss) in [
                (&b.max_stretch, &s.max_stretch),
                (&b.sum_stretch, &s.sum_stretch),
            ] {
                match (bs, ss) {
                    (None, None) => {}
                    (Some(bs), Some(ss)) => {
                        assert!((bs.mean - ss.mean).abs() < 1e-9, "{}", b.name);
                        assert!((bs.sd - ss.sd).abs() < 1e-9, "{}", b.name);
                        assert_eq!(bs.max, ss.max, "{}", b.name);
                        assert_eq!(bs.count, ss.count, "{}", b.name);
                    }
                    other => panic!("presence mismatch for {}: {other:?}", b.name),
                }
            }
        }
        // Throughput bookkeeping is sane.
        assert!(summary.total_jobs() > 0.0);
        assert!(summary.jobs_per_second() > 0.0);
        // The job-count sketches saw every instance; the p99 never sits
        // below the median.
        assert_eq!(summary.jobs_p50.count(), batch.len());
        let p50 = summary.jobs_p50.value().unwrap();
        let p99 = summary.jobs_p99.value().unwrap();
        assert!(p50 > 0.0 && p99 >= p50, "p50 {p50} vs p99 {p99}");
    }
}
