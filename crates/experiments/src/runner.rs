//! Running the whole heuristic battery on one random instance.

use crate::config::ExperimentConfig;
use crate::heuristics::{HeuristicKind, TABLE1_ORDER};
use crate::json::Json;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use stretch_core::SolverConfig;
use stretch_platform::{Platform, PlatformConfig, PlatformGenerator};
use stretch_workload::{Instance, Job, Scenario, WorkloadConfig, WorkloadGenerator};

/// Metrics of one heuristic on one instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeuristicObservation {
    /// Max-stretch achieved.
    pub max_stretch: f64,
    /// Sum-stretch achieved.
    pub sum_stretch: f64,
    /// Wall-clock time spent inside the scheduler, in seconds.
    pub scheduling_time: f64,
}

/// Everything measured on one random instance.
#[derive(Clone, Debug)]
pub struct InstanceObservation {
    /// The configuration the instance was drawn from.
    pub config: ExperimentConfig,
    /// Number of jobs of the instance.
    pub num_jobs: usize,
    /// Number of on-line decision points (distinct release dates) of the
    /// instance — the denominator of per-event overhead statistics.
    pub num_events: usize,
    /// Per-heuristic metrics, in [`TABLE1_ORDER`] order; `None` when the
    /// heuristic was skipped (Bender98 on large platforms) or failed.
    pub observations: Vec<Option<HeuristicObservation>>,
}

impl InstanceObservation {
    /// Observation of one heuristic, if present.
    pub fn of(&self, kind: HeuristicKind) -> Option<HeuristicObservation> {
        let idx = TABLE1_ORDER.iter().position(|k| *k == kind)?;
        self.observations[idx]
    }
}

/// How large an instance to draw from a configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InstanceScale {
    /// Scale the arrival window so the **expected** job count hits the
    /// target, whatever the configuration (the laptop-friendly default; see
    /// [`draw_instance`] for the rationale).
    TargetJobs(usize),
    /// Use a fixed arrival window in seconds — the paper's semantics (900 s
    /// = 15 minutes), which yields thousands of jobs on the larger
    /// platforms.
    FixedWindow(f64),
}

/// Draws the random instance of configuration `config` with the given seed.
///
/// The workload window is chosen so that the expected number of jobs is
/// `target_jobs` whatever the configuration: the paper uses a fixed 15-minute
/// window, which yields thousands of jobs on the larger platforms and makes
/// the LP-based heuristics impractical to re-run hundreds of times; keeping
/// the *density* (the load level, which is what the study varies) and scaling
/// the window preserves the comparisons while bounding the cost.  This
/// substitution is documented in DESIGN.md and EXPERIMENTS.md; paper-scale
/// campaigns use [`InstanceScale::FixedWindow`] instead.
pub fn draw_instance(config: &ExperimentConfig, target_jobs: usize, seed: u64) -> Instance {
    draw_instance_scaled(config, InstanceScale::TargetJobs(target_jobs), seed)
}

/// [`draw_instance`] for an explicit [`InstanceScale`].
pub fn draw_instance_scaled(
    config: &ExperimentConfig,
    scale: InstanceScale,
    seed: u64,
) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let platform_cfg = PlatformConfig::new(config.sites, config.databanks, config.availability);
    let platform = PlatformGenerator::new(platform_cfg).generate(&mut rng);

    if let Scenario::Trace { index } = config.scenario {
        // A recorded trace stands in for generation entirely: releases and
        // works come verbatim from the fixture, only the databank targets
        // are folded onto the drawn platform.
        return trace_instance(index, platform);
    }

    let window = match scale {
        InstanceScale::FixedWindow(secs) => {
            assert!(secs > 0.0 && secs.is_finite(), "window must be positive");
            secs
        }
        InstanceScale::TargetJobs(target_jobs) => {
            // Start from a probe window of 1 s to learn the expected arrival
            // rate, then rescale so that `target_jobs` jobs are expected.
            let probe = WorkloadGenerator::new(WorkloadConfig {
                density: config.density,
                window: 1.0,
                scan_fraction: 1.0,
                scenario: config.scenario,
            });
            let rate = probe.expected_job_count(&platform).max(1e-9);
            // A lower clamp of one millisecond only guards against degenerate
            // rates; it must stay far below `target_jobs / rate` or bursty
            // platforms (one tiny databank served by many sites) would blow
            // past the job target.
            (target_jobs as f64 / rate).max(1e-3)
        }
    };
    let generator = WorkloadGenerator::new(WorkloadConfig {
        density: config.density,
        window,
        scan_fraction: 1.0,
        scenario: config.scenario,
    });
    generator.generate_instance(platform, &mut rng)
}

/// Path of checked-in trace fixture `index`
/// (`tests/fixtures/trace_{index}.strt`, blessed by `repro_trace`).
pub fn trace_fixture_path(index: u32) -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("trace_{index}.strt"))
}

/// Loads checked-in trace fixture `index` as an instance on `platform`.
///
/// The trace pins releases and works bit for bit; each submission's
/// databank is taken modulo the platform's databank count and bumped to
/// the nearest hosted databank when the folded target is replicated
/// nowhere, so any trace stays runnable on any drawn platform.  Panics
/// with a re-bless hint when the fixture is missing, torn or unsealed —
/// a checked-in trace must always load cleanly.
fn trace_instance(index: u32, platform: Platform) -> Instance {
    let path = trace_fixture_path(index);
    let (trace, tail) = stretch_serve::trace::load(&path).unwrap_or_else(|e| {
        panic!(
            "cannot load trace fixture {}: {e}; re-bless with \
             STRETCH_BLESS=1 STRETCH_TRACE_MODE=bless cargo run --release \
             -p stretch-experiments --bin repro_trace",
            path.display()
        )
    });
    assert_eq!(
        tail,
        stretch_serve::trace::TraceTail::Clean,
        "trace fixture {} has a torn tail",
        path.display()
    );
    assert!(
        trace.is_sealed(),
        "trace fixture {} is not sealed",
        path.display()
    );
    let hosted: Vec<usize> = (0..platform.num_databanks())
        .filter(|&d| !platform.eligible_processors(d).is_empty())
        .collect();
    assert!(!hosted.is_empty(), "platform hosts no databank at all");
    let jobs = trace
        .submissions
        .iter()
        .map(|s| {
            let folded = (s.databank % platform.num_databanks() as u64) as usize;
            let databank = if platform.eligible_processors(folded).is_empty() {
                hosted[folded % hosted.len()]
            } else {
                folded
            };
            Job::new(0, s.release, s.work, databank)
        })
        .collect();
    Instance::new(platform, jobs)
}

/// Runs the full battery on one random instance of `config`.
///
/// Heuristics excluded by [`HeuristicKind::runs_on`] (Bender98 beyond 3
/// sites) are reported as `None`, matching footnote 3 of the paper.
pub fn run_instance(
    config: &ExperimentConfig,
    target_jobs: usize,
    seed: u64,
) -> InstanceObservation {
    run_instance_with(config, target_jobs, seed, SolverConfig::default())
}

/// [`run_instance`] with an explicit solver configuration for the LP/flow
/// heuristics (instance generation is unaffected: the same seed draws the
/// same workload whatever the backend).
pub fn run_instance_with(
    config: &ExperimentConfig,
    target_jobs: usize,
    seed: u64,
    solver: SolverConfig,
) -> InstanceObservation {
    run_instance_scaled_with(config, InstanceScale::TargetJobs(target_jobs), seed, solver)
}

/// [`run_instance_with`] for an explicit [`InstanceScale`] (the paper-scale
/// campaign runs fixed 15-minute windows).
pub fn run_instance_scaled_with(
    config: &ExperimentConfig,
    scale: InstanceScale,
    seed: u64,
    solver: SolverConfig,
) -> InstanceObservation {
    let instance = draw_instance_scaled(config, scale, seed);
    let num_events = {
        let mut releases: Vec<f64> = instance.jobs.iter().map(|j| j.release).collect();
        releases.sort_by(|a, b| a.total_cmp(b));
        releases.dedup_by(|a, b| (*a - *b).abs() <= 1e-12);
        releases.len()
    };
    let mut observations = Vec::with_capacity(TABLE1_ORDER.len());
    for kind in TABLE1_ORDER {
        if !kind.runs_on(config.sites) {
            observations.push(None);
            continue;
        }
        let scheduler = kind.scheduler_with(solver);
        let start = std::time::Instant::now();
        let result = scheduler.schedule(&instance);
        let elapsed = start.elapsed().as_secs_f64();
        observations.push(result.ok().map(|r| HeuristicObservation {
            max_stretch: r.metrics.max_stretch,
            sum_stretch: r.metrics.sum_stretch,
            scheduling_time: elapsed,
        }));
    }
    InstanceObservation {
        config: *config,
        num_jobs: instance.num_jobs(),
        num_events,
        observations,
    }
}

/// Renders campaign observations as JSON (the raw-data dump of
/// `repro_table1`).
pub fn observations_to_json(observations: &[InstanceObservation]) -> Json {
    Json::Arr(
        observations
            .iter()
            .map(|obs| {
                Json::Obj(vec![
                    (
                        "config".into(),
                        Json::Obj(vec![
                            ("sites".into(), obs.config.sites.into()),
                            ("databanks".into(), obs.config.databanks.into()),
                            ("availability".into(), obs.config.availability.into()),
                            ("scenario".into(), Json::str(obs.config.scenario.label())),
                            ("density".into(), obs.config.density.into()),
                        ]),
                    ),
                    ("num_jobs".into(), obs.num_jobs.into()),
                    ("num_events".into(), obs.num_events.into()),
                    (
                        "observations".into(),
                        Json::Arr(
                            TABLE1_ORDER
                                .iter()
                                .zip(&obs.observations)
                                .map(|(kind, o)| match o {
                                    None => Json::Null,
                                    Some(o) => Json::Obj(vec![
                                        ("heuristic".into(), Json::str(kind.name())),
                                        ("max_stretch".into(), o.max_stretch.into()),
                                        ("sum_stretch".into(), o.sum_stretch.into()),
                                        ("scheduling_time".into(), o.scheduling_time.into()),
                                    ]),
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ExperimentConfig {
        ExperimentConfig {
            sites: 3,
            databanks: 3,
            availability: 0.6,
            density: 1.0,
            scenario: stretch_workload::Scenario::Steady,
        }
    }

    #[test]
    fn drawn_instances_hit_the_job_target_on_average() {
        let cfg = small_config();
        let mut total = 0usize;
        let runs = 12;
        for seed in 0..runs {
            total += draw_instance(&cfg, 20, seed).num_jobs();
        }
        let mean = total as f64 / runs as f64;
        assert!(
            (mean - 20.0).abs() < 8.0,
            "mean job count {mean} should be close to the target 20"
        );
    }

    #[test]
    fn instance_generation_is_deterministic_in_the_seed() {
        let cfg = small_config();
        let a = draw_instance(&cfg, 15, 99);
        let b = draw_instance(&cfg, 15, 99);
        assert_eq!(a.num_jobs(), b.num_jobs());
        assert_eq!(a.jobs, b.jobs);
    }

    #[test]
    fn run_instance_reports_all_heuristics_on_small_platforms() {
        let obs = run_instance(&small_config(), 8, 7);
        assert_eq!(obs.observations.len(), 11);
        // On a 3-site platform every heuristic runs, including Bender98.
        for (kind, o) in TABLE1_ORDER.iter().zip(&obs.observations) {
            assert!(o.is_some(), "{} missing", kind.name());
        }
        // The offline optimal is never beaten on max-stretch (up to numerical
        // tolerance).
        let offline = obs.of(HeuristicKind::Offline).unwrap().max_stretch;
        for kind in TABLE1_ORDER {
            if let Some(o) = obs.of(kind) {
                assert!(
                    o.max_stretch >= offline * (1.0 - 5e-3),
                    "{} beat the optimum: {} < {}",
                    kind.name(),
                    o.max_stretch,
                    offline
                );
            }
        }
    }

    #[test]
    fn bender98_is_skipped_on_large_platforms() {
        let cfg = ExperimentConfig {
            sites: 10,
            databanks: 3,
            availability: 0.9,
            density: 0.75,
            scenario: stretch_workload::Scenario::Steady,
        };
        let obs = run_instance(&cfg, 6, 3);
        assert!(obs.of(HeuristicKind::Bender98).is_none());
        assert!(obs.of(HeuristicKind::Mct).is_some());
    }
}
