//! Figure 3: effect of the System-(2) optimisation on the on-line heuristic.
//!
//! The paper sweeps the workload density and compares, for each density, the
//! optimized on-line heuristic against the non-optimized version that stops
//! after the max-stretch computation:
//!
//! * Figure 3(a): average max-stretch degradation from optimal, for both
//!   versions;
//! * Figure 3(b): average sum-stretch gain of the optimized version relative
//!   to the non-optimized one.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use stretch_core::{OfflineBackend, OnlineScheduler, Scheduler};
use stretch_platform::{PlatformConfig, PlatformGenerator};
use stretch_workload::{WorkloadConfig, WorkloadGenerator};

/// Settings of the Figure 3 sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct Figure3Settings {
    /// Workload densities to sweep (the paper uses 0.0125 … 4.0).
    pub densities: Vec<f64>,
    /// Instances per density (the paper uses 5000).
    pub instances_per_density: usize,
    /// Expected number of jobs per instance.
    pub target_jobs: usize,
    /// Platform size (the sweep uses small platforms).
    pub sites: usize,
    /// Number of databanks.
    pub databanks: usize,
    /// Database availability.
    pub availability: f64,
    /// Base random seed.
    pub base_seed: u64,
}

impl Default for Figure3Settings {
    fn default() -> Self {
        Figure3Settings {
            densities: vec![0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0],
            instances_per_density: 8,
            target_jobs: 20,
            sites: 3,
            databanks: 3,
            availability: 0.6,
            base_seed: 2006,
        }
    }
}

impl Figure3Settings {
    /// A tiny configuration for smoke tests and benches.
    pub fn smoke() -> Self {
        Figure3Settings {
            densities: vec![0.5, 2.0],
            instances_per_density: 2,
            target_jobs: 8,
            ..Default::default()
        }
    }
}

/// One point of the Figure 3 series (one workload density).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Figure3Point {
    /// The workload density of this point.
    pub density: f64,
    /// Average max-stretch degradation from optimal of the optimized on-line
    /// heuristic (Figure 3(a), "Optimized degradation"), in percent.
    pub optimized_degradation_pct: f64,
    /// Average max-stretch degradation from optimal of the non-optimized
    /// version (Figure 3(a), "Non-optimized degradation"), in percent.
    pub non_optimized_degradation_pct: f64,
    /// Average sum-stretch gain of the optimized version relative to the
    /// non-optimized one (Figure 3(b)), in percent.
    pub sum_stretch_gain_pct: f64,
    /// Number of instances aggregated.
    pub instances: usize,
}

/// Runs the Figure 3 sweep.
pub fn run_figure3(settings: &Figure3Settings) -> Vec<Figure3Point> {
    let mut points = Vec::new();
    for (d_idx, &density) in settings.densities.iter().enumerate() {
        let mut optimized_degradation = Vec::new();
        let mut non_optimized_degradation = Vec::new();
        let mut gain = Vec::new();
        for i in 0..settings.instances_per_density {
            let seed = settings.base_seed + d_idx as u64 * 1000 + i as u64;
            let mut rng = SmallRng::seed_from_u64(seed);
            let platform = PlatformGenerator::new(PlatformConfig::new(
                settings.sites,
                settings.databanks,
                settings.availability,
            ))
            .generate(&mut rng);
            let probe = WorkloadGenerator::new(WorkloadConfig {
                density,
                window: 1.0,
                scan_fraction: 1.0,
                ..Default::default()
            });
            let rate = probe.expected_job_count(&platform).max(1e-9);
            let generator = WorkloadGenerator::new(WorkloadConfig {
                density,
                window: (settings.target_jobs as f64 / rate).max(1e-3),
                scan_fraction: 1.0,
                ..Default::default()
            });
            let instance = generator.generate_instance(platform, &mut rng);

            let optimal =
                match stretch_core::offline::optimal_max_stretch(&instance, OfflineBackend::Flow) {
                    Ok(o) => o.stretch * instance.platform.aggregate_speed(),
                    Err(_) => continue,
                };
            let optimized = OnlineScheduler::online().schedule(&instance);
            let baseline = OnlineScheduler::non_optimized().schedule(&instance);
            if let (Ok(optimized), Ok(baseline)) = (optimized, baseline) {
                optimized_degradation
                    .push((optimized.metrics.max_stretch / optimal - 1.0).max(0.0) * 100.0);
                non_optimized_degradation
                    .push((baseline.metrics.max_stretch / optimal - 1.0).max(0.0) * 100.0);
                gain.push(
                    (baseline.metrics.sum_stretch / optimized.metrics.sum_stretch - 1.0) * 100.0,
                );
            }
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        points.push(Figure3Point {
            density,
            optimized_degradation_pct: mean(&optimized_degradation),
            non_optimized_degradation_pct: mean(&non_optimized_degradation),
            sum_stretch_gain_pct: mean(&gain),
            instances: optimized_degradation.len(),
        });
    }
    points
}

/// Renders the two series as plain text, one line per density.
pub fn render_figure3(points: &[Figure3Point]) -> String {
    let mut out = String::new();
    out.push_str("Figure 3(a): average max-stretch degradation from optimal (%)\n");
    out.push_str(&format!(
        "{:>8} | {:>22} | {:>22}\n",
        "density", "non-optimized (%)", "optimized (%)"
    ));
    for p in points {
        out.push_str(&format!(
            "{:>8.3} | {:>22.3} | {:>22.3}\n",
            p.density, p.non_optimized_degradation_pct, p.optimized_degradation_pct
        ));
    }
    out.push_str("\nFigure 3(b): average sum-stretch gain of the optimized version (%)\n");
    out.push_str(&format!("{:>8} | {:>18}\n", "density", "gain (%)"));
    for p in points {
        out.push_str(&format!(
            "{:>8.3} | {:>18.3}\n",
            p.density, p.sum_stretch_gain_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_produces_one_point_per_density() {
        let settings = Figure3Settings::smoke();
        let points = run_figure3(&settings);
        assert_eq!(points.len(), settings.densities.len());
        for p in &points {
            assert!(p.instances > 0);
            // Degradations are nonnegative percentages and stay moderate on
            // these small instances (Figure 3(a) tops out around 2.5 %, we
            // allow a loose bound here).
            assert!(p.optimized_degradation_pct >= 0.0);
            assert!(p.optimized_degradation_pct < 100.0);
            assert!(p.non_optimized_degradation_pct >= 0.0);
        }
        let rendering = render_figure3(&points);
        assert!(rendering.contains("Figure 3(a)"));
        assert!(rendering.contains("Figure 3(b)"));
    }
}
