//! A tiny JSON writer.
//!
//! The workspace is built offline (no `serde`/`serde_json`), and the only
//! JSON the experiments emit is small and write-only: raw campaign
//! observations and the `BENCH_baseline.json` perf trajectory.  This module
//! provides just enough of a value model to render those.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A (finite) number; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Renders the value with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    out.push_str(if i + 1 == fields.len() { "\n" } else { ",\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Num(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Self {
        Json::Num(x as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("Online")),
            ("nan".into(), Json::Num(f64::NAN)),
            ("times".into(), Json::Arr(vec![Json::Num(1.5), Json::Null])),
        ]);
        let text = v.pretty();
        assert!(text.contains("\"name\": \"Online\""));
        assert!(text.contains("\"nan\": null"));
        assert!(text.contains("1.5"));
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::str("a\"b\\c\nd");
        assert_eq!(v.pretty().trim(), r#""a\"b\\c\nd""#);
    }
}
