//! The CI perf-drift gate (`STRETCH_DRIFT_CHECK=1` mode of `repro_overhead`).
//!
//! `BENCH_baseline.json` records the engine's perf trajectory, but until now
//! nothing *enforced* it: a PR could regress a solver by an order of
//! magnitude and CI would stay green as long as the results were right.
//! This module re-measures every `engine/system2-events/*` and
//! `engine/online-loop/*` row on the same 3-cluster reference workload the
//! benches use and fails when any row is more than [`DRIFT_FACTOR`]× slower
//! than its recorded baseline entry.
//!
//! The bound is deliberately generous: CI runners are noisy, shared and
//! throttled, so a tight bound would flake — but an accidental
//! O(n²)-in-the-wrong-place regression shows up as 10×+ at this size, and
//! 3× catches it with a wide margin on both sides.  The re-measurement uses
//! the same minimum-estimator the vendored Criterion harness uses
//! (interference only ever adds time), which is what makes a small sample
//! count usable on shared runners.  One assumption is deliberate: the gate
//! compares *absolute* times, so the baseline should be re-recorded when
//! the CI runner class changes materially — a runner 3× slower than the
//! recording machine reads as drift (loud, actionable), while a faster one
//! merely widens the effective bound.
//!
//! The measured rows mirror `crates/bench/benches/scheduler_overhead.rs`
//! exactly — same reference workload and captured per-event System-(2)
//! instances (both come from `stretch_core::refstream`, the single
//! implementation), same cold/warm tiers — so the ratios compare like with
//! like.  [`engine_row_keys`] is the single source of truth for which rows
//! exist; the `ci_matrix` test cross-checks it against the CI
//! baseline-completeness list so the two can never drift apart.

use std::time::Instant;
use stretch_core::online::run_online_with;
use stretch_core::refstream::{capture_system2_events, reference_instance};
use stretch_core::{OnlineVariant, SolverConfig};
use stretch_flow::{BackendKind, FlowWorkspace};

/// Failure threshold: a row this many times slower than its baseline fails
/// the gate.
pub const DRIFT_FACTOR: f64 = 3.0;

/// Timed samples per row (minimum estimator, plus one warm-up run).
pub const DRIFT_SAMPLES: usize = 10;

/// One re-measured engine row.
#[derive(Clone, Debug)]
pub struct DriftRow {
    /// `BENCH_baseline.json` key.
    pub key: String,
    /// Recorded baseline, seconds.
    pub baseline: f64,
    /// Re-measured minimum, seconds.
    pub measured: f64,
}

impl DriftRow {
    /// Measured-over-baseline slowdown.
    pub fn ratio(&self) -> f64 {
        self.measured / self.baseline.max(1e-300)
    }

    /// `true` when the row is within the drift bound.
    pub fn ok(&self, factor: f64) -> bool {
        self.measured <= factor * self.baseline
    }
}

/// Result of one drift check.
#[derive(Clone, Debug)]
pub struct DriftReport {
    /// One row per engine key, in [`engine_row_keys`] order.
    pub rows: Vec<DriftRow>,
    /// The threshold the check ran with.
    pub factor: f64,
}

impl DriftReport {
    /// Rows exceeding the bound.
    pub fn violations(&self) -> Vec<&DriftRow> {
        self.rows.iter().filter(|r| !r.ok(self.factor)).collect()
    }

    /// Aligned plain-text rendering for the binary's stdout.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Perf-drift gate (fail when measured > {:.1}x baseline)\n{:<42} {:>12} {:>12} {:>8}\n",
            self.factor, "engine row", "baseline s", "measured s", "ratio"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<42} {:>12.6} {:>12.6} {:>7.2}x{}\n",
                r.key,
                r.baseline,
                r.measured,
                r.ratio(),
                if r.ok(self.factor) { "" } else { "  << DRIFT" }
            ));
        }
        out
    }
}

/// The engine rows the gate re-measures — the exact key set the
/// `scheduler_overhead` bench records and the CI baseline-completeness step
/// requires: per backend a cold System-(2) sweep, an incremental System-(2)
/// sweep (persistent delta-updated solver, `STRETCH_INCREMENTAL`) and a
/// cold + warm on-line loop, plus warm System-(2) sweeps for the
/// basis-carrying backends (the primal-dual kernel is stateless, so its
/// warm sweep would re-measure the cold one).
pub fn engine_row_keys() -> Vec<String> {
    let mut keys = Vec::new();
    for kind in BackendKind::ALL {
        keys.push(format!("engine/system2-events/{}", kind.name()));
        if kind != BackendKind::PrimalDual {
            keys.push(format!("engine/system2-events/{}-warm", kind.name()));
        }
        keys.push(format!("engine/system2-events/{}-incremental", kind.name()));
        keys.push(format!("engine/online-loop/{}", kind.name()));
        keys.push(format!("engine/online-loop/{}-warm", kind.name()));
    }
    keys
}

/// Minimum wall-clock over `samples` runs of `f`, after one warm-up run.
fn min_time(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Runs the gate: re-measures every engine row and compares against the
/// baseline file.  `Err` means the gate could not run at all (missing file
/// or missing baseline entry — the CI baseline-completeness step should
/// have caught the latter first); a successful run may still report
/// violations ([`DriftReport::violations`]).
pub fn run_drift_check(
    baseline_path: &std::path::Path,
    samples: usize,
) -> Result<DriftReport, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
    let baseline = crate::baseline::parse(&text);
    let baseline_of = |key: &str| {
        baseline
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .ok_or_else(|| format!("{} has no entry for `{key}`", baseline_path.display()))
    };

    let instance = reference_instance(3, 3, 20, 3);
    let events = capture_system2_events(&instance);
    assert!(!events.is_empty());

    let sweep = |config: SolverConfig| {
        let mut backend = config.instantiate();
        let mut ws = FlowWorkspace::new();
        min_time(samples, || {
            for (problem, slack) in &events {
                problem
                    .system2_allocation_with_backend(*slack, backend.as_mut(), &mut ws)
                    .expect("feasible at the captured objective");
            }
        })
    };
    // The incremental sweep routes through one persistent solver so the
    // System-(2) arena (instance, intervals, keys, flow network) is reused
    // across events — mirroring the bench's `-incremental` rows exactly,
    // which run with warm start on (the `all_backends` default).
    let incremental_sweep = |config: SolverConfig| {
        let mut solver = stretch_core::ParametricDeadlineSolver::with_config(
            config.with_warm_start(true).with_incremental(true),
        );
        min_time(samples, || {
            for (problem, slack) in &events {
                solver
                    .system2_allocation(problem, *slack)
                    .expect("feasible at the captured objective");
            }
        })
    };
    let online = |config: SolverConfig| {
        min_time(samples, || {
            run_online_with(&instance, OnlineVariant::Online, config).expect("schedulable");
        })
    };

    let mut rows = Vec::new();
    for key in engine_row_keys() {
        let tail = key
            .strip_prefix("engine/")
            .expect("engine_row_keys emits engine rows");
        let (group, mut backend_name) = tail.split_once('/').expect("group/backend keys");
        let warm = backend_name.ends_with("-warm");
        if warm {
            backend_name = &backend_name[..backend_name.len() - "-warm".len()];
        }
        let incremental = backend_name.ends_with("-incremental");
        if incremental {
            backend_name = &backend_name[..backend_name.len() - "-incremental".len()];
        }
        let config = SolverConfig::parse_backend(backend_name).with_warm_start(warm);
        let measured = match (group, incremental) {
            ("system2-events", false) => sweep(config),
            ("system2-events", true) => incremental_sweep(config),
            ("online-loop", false) => online(config),
            (other, inc) => unreachable!("unknown engine group `{other}` (incremental={inc})"),
        };
        rows.push(DriftRow {
            key: key.clone(),
            baseline: baseline_of(&key)?,
            measured,
        });
    }
    Ok(DriftReport {
        rows,
        factor: DRIFT_FACTOR,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_row_keys_cover_every_backend_and_warm_tier() {
        let keys = engine_row_keys();
        for kind in BackendKind::ALL {
            assert!(keys.contains(&format!("engine/system2-events/{}", kind.name())));
            assert!(keys.contains(&format!(
                "engine/system2-events/{}-incremental",
                kind.name()
            )));
            assert!(keys.contains(&format!("engine/online-loop/{}", kind.name())));
            assert!(keys.contains(&format!("engine/online-loop/{}-warm", kind.name())));
        }
        assert!(keys.contains(&"engine/system2-events/simplex-warm".to_string()));
        assert!(keys.contains(&"engine/system2-events/monge-warm".to_string()));
        assert!(
            !keys.contains(&"engine/system2-events/primal-dual-warm".to_string()),
            "the stateless kernel has no warm sweep row"
        );
    }

    #[test]
    fn drift_rows_flag_slowdowns_beyond_the_factor() {
        let fast = DriftRow {
            key: "engine/x/y".into(),
            baseline: 1e-3,
            measured: 2.5e-3,
        };
        let slow = DriftRow {
            key: "engine/x/z".into(),
            baseline: 1e-3,
            measured: 3.5e-3,
        };
        assert!(fast.ok(DRIFT_FACTOR));
        assert!(!slow.ok(DRIFT_FACTOR));
        let report = DriftReport {
            rows: vec![fast, slow],
            factor: DRIFT_FACTOR,
        };
        assert_eq!(report.violations().len(), 1);
        assert!(report.render().contains("<< DRIFT"));
    }

    #[test]
    fn drift_check_runs_end_to_end_against_a_synthetic_baseline() {
        // A generous synthetic baseline (1000 s per row) must pass; the
        // same measurements against a 1 ns baseline must all violate.  This
        // exercises the full measurement path (capture, sweeps, loops)
        // without depending on the absolute speed of the test machine.
        let dir = std::env::temp_dir().join("stretch_drift_check_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_baseline.json");
        let generous: Vec<(String, f64)> =
            engine_row_keys().into_iter().map(|k| (k, 1e3)).collect();
        std::fs::write(&path, crate::baseline::render(&generous)).unwrap();
        let report = run_drift_check(&path, 1).expect("baseline is complete");
        assert_eq!(report.rows.len(), engine_row_keys().len());
        assert!(report.violations().is_empty(), "{}", report.render());

        let stingy: Vec<(String, f64)> = engine_row_keys().into_iter().map(|k| (k, 1e-9)).collect();
        std::fs::write(&path, crate::baseline::render(&stingy)).unwrap();
        let report = run_drift_check(&path, 1).expect("baseline is complete");
        assert_eq!(report.violations().len(), report.rows.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_baseline_entries_error_out() {
        let dir = std::env::temp_dir().join("stretch_drift_missing_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_baseline.json");
        std::fs::write(&path, "{\n}\n").unwrap();
        let err = run_drift_check(&path, 1).expect_err("empty baseline must fail");
        assert!(err.contains("engine/system2-events/"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
