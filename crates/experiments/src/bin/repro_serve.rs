//! Drives the reference stream through the crash-safe `stretch-serve`
//! service, and provides the two halves of the kill-and-recover harness.
//!
//! Modes, selected by `STRETCH_SERVE_MODE` (malformed values abort loudly,
//! like every other `STRETCH_*` knob):
//!
//! * unset or `verify` — feed the reference stream (plus deliberately
//!   malformed submissions) through the event bus, drain, and check the
//!   completions are bit-identical to `run_online_with` on the same
//!   instance; prints the live counters and the dead-letter reasons.
//! * `crash` — create a service on `STRETCH_SERVE_JOURNAL`, touch
//!   `STRETCH_SERVE_MARKER`, then submit the stream with a small delay per
//!   submission (`STRETCH_SERVE_SUBMIT_DELAY_US`, default 2000) and hang
//!   forever: the harness SIGKILLs the process at an arbitrary instant
//!   mid-stream, possibly mid-write.
//! * `resume` — recover from `STRETCH_SERVE_JOURNAL`, submit whatever part
//!   of the stream the journal does not already hold, drain, and check the
//!   final state is bit-identical to an uninterrupted in-process run.
//! * `rotate` — stream with the configured rotation policy, simulate a
//!   crash (drop without drain), and check recovery restores the newest
//!   snapshot and replays *only* the segment suffix past it, with state
//!   bit-identical to the pre-crash service.  Requires a segment threshold
//!   small enough that the stream actually rotates
//!   (`STRETCH_SERVE_SEGMENT_RECORDS`).
//! * `compact` — stream to completion under rotation and check the on-disk
//!   footprint is bounded: at most `STRETCH_SERVE_SNAPSHOT_RETAIN`
//!   snapshots survive, every sealed segment covered by the oldest kept
//!   snapshot is garbage-collected, and the compacted directory still
//!   recovers to the drained state.
//!
//! The solver cell (backend × warm start) comes from the usual
//! `STRETCH_MINCOST_BACKEND` / `STRETCH_WARM_START` variables; the segment
//! and snapshot knobs (`STRETCH_SERVE_SEGMENT_RECORDS`,
//! `STRETCH_SERVE_SEGMENT_BYTES`, `STRETCH_SERVE_SNAPSHOT_EVERY`,
//! `STRETCH_SERVE_SNAPSHOT_RETAIN`) via [`ServeConfig::from_env`].  In
//! crash mode, `STRETCH_SERVE_CRASH_POINT=<seal-index>:<point>` (point one
//! of `after-seal`, `after-snapshot-temp`, `after-snapshot-rename`) aborts
//! the process at that window of the given rotation — the deterministic
//! complement to the harness's arbitrary SIGKILL.

use std::path::PathBuf;
use std::time::Duration;

use stretch_core::online::run_online_with;
use stretch_core::refstream::reference_instance;
use stretch_core::{OnlineVariant, SolverConfig};
use stretch_serve::{
    journal, spawn_service, RotationCrashPoint, ServeConfig, StretchServe, Submission,
};
use stretch_workload::Instance;

/// The reference stream every mode replays: the §5.3 bench instance.
fn reference_stream() -> Instance {
    reference_instance(3, 3, 20, 3)
}

fn env_var(name: &str) -> Option<String> {
    stretch_experiments::campaign::read_env(name, None, |_, raw| Some(raw.to_string()))
}

fn env_path(name: &str) -> Option<PathBuf> {
    env_var(name).map(PathBuf::from)
}

fn required_path(name: &str, mode: &str) -> PathBuf {
    env_path(name).unwrap_or_else(|| panic!("STRETCH_SERVE_MODE={mode} requires {name}"))
}

fn submit_delay() -> Duration {
    match env_var("STRETCH_SERVE_SUBMIT_DELAY_US") {
        None => Duration::from_micros(2000),
        Some(raw) => match raw.trim().parse::<u64>() {
            Ok(us) => Duration::from_micros(us),
            Err(_) => panic!("STRETCH_SERVE_SUBMIT_DELAY_US must be an integer, got `{raw}`"),
        },
    }
}

/// Parses `STRETCH_SERVE_CRASH_POINT=<seal-index>:<point>` into the chaos
/// rotation abort, with the strict `STRETCH_*` policy on malformed values.
fn crash_point() -> Option<(u64, RotationCrashPoint)> {
    let raw = env_var("STRETCH_SERVE_CRASH_POINT")?;
    let (index, point) = raw.split_once(':').unwrap_or_else(|| {
        panic!("STRETCH_SERVE_CRASH_POINT must be `<seal-index>:<point>`, got `{raw}`")
    });
    let index = index.trim().parse::<u64>().unwrap_or_else(|_| {
        panic!("STRETCH_SERVE_CRASH_POINT seal index must be an integer, got `{raw}`")
    });
    let point = match point.trim() {
        "after-seal" => RotationCrashPoint::AfterSeal,
        "after-snapshot-temp" => RotationCrashPoint::AfterSnapshotTemp,
        "after-snapshot-rename" => RotationCrashPoint::AfterSnapshotRename,
        other => panic!(
            "STRETCH_SERVE_CRASH_POINT point must be after-seal, after-snapshot-temp or \
             after-snapshot-rename, got `{other}`"
        ),
    };
    Some((index, point))
}

fn config() -> ServeConfig {
    let mut config = ServeConfig::from_env();
    config.chaos_rotation_abort = crash_point();
    config
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Uninterrupted in-process run of the reference stream — the ground truth
/// the resume mode compares against.
fn run_uninterrupted(instance: &Instance, config: ServeConfig) -> StretchServe {
    let mut path = std::env::temp_dir();
    path.push(format!("repro-serve-uninterrupted-{}", std::process::id()));
    let mut serve = StretchServe::create(&path, instance.platform.clone(), config)
        .expect("create uninterrupted journal");
    for job in &instance.jobs {
        let outcome = serve
            .submit(Submission::new(job.release, job.work, job.databank))
            .expect("journal append");
        assert!(outcome.is_accepted(), "reference job rejected: {outcome:?}");
    }
    serve.finish().expect("drain uninterrupted run");
    let _ = std::fs::remove_dir_all(&path);
    serve
}

fn verify_mode() {
    let instance = reference_stream();
    let solver = SolverConfig::from_env();
    let expected = run_online_with(&instance, OnlineVariant::Online, solver)
        .expect("run_online on the reference instance");

    let journal = env_path("STRETCH_SERVE_JOURNAL").unwrap_or_else(|| {
        let mut p = std::env::temp_dir();
        p.push(format!("repro-serve-verify-{}", std::process::id()));
        p
    });
    let serve = StretchServe::create(&journal, instance.platform.clone(), config())
        .expect("create journal");
    let (handle, consumer) = spawn_service(serve, 64);
    for (i, job) in instance.jobs.iter().enumerate() {
        // Interleave garbage with the real stream: it must all dead-letter
        // without disturbing the schedule.
        if i % 5 == 0 {
            handle
                .submit(Submission::new(f64::NAN, job.work, job.databank))
                .expect("bus send");
            handle
                .submit(Submission::new(job.release, -1.0, job.databank))
                .expect("bus send");
            handle
                .submit(Submission::new(job.release, job.work, usize::MAX))
                .expect("bus send");
        }
        handle
            .submit(Submission::new(job.release, job.work, job.databank))
            .expect("bus send");
    }
    handle.finish().expect("bus finish");
    let serve = consumer
        .join()
        .expect("consumer thread")
        .expect("serve loop");

    let metrics = serve.metrics();
    println!("repro_serve verify: {}", metrics.render(handle.depth()));
    for letter in serve.dlq().letters().take(6) {
        println!("  dead-letter: {}", letter.reason);
    }
    assert_eq!(metrics.accepted as usize, instance.jobs.len());
    assert_eq!(
        metrics.dead_lettered as usize,
        3 * instance.jobs.len().div_ceil(5)
    );
    assert_eq!(
        bits(serve.completions()),
        bits(&expected),
        "service completions diverged from run_online"
    );
    let _ = std::fs::remove_dir_all(&journal);
    println!("repro_serve: OK (backend {})", solver.backend.name());
}

fn crash_mode() {
    let instance = reference_stream();
    let journal = required_path("STRETCH_SERVE_JOURNAL", "crash");
    let marker = required_path("STRETCH_SERVE_MARKER", "crash");
    let delay = submit_delay();
    let mut serve = StretchServe::create(&journal, instance.platform.clone(), config())
        .expect("create journal");
    std::fs::write(&marker, b"serving\n").expect("write marker");
    for job in &instance.jobs {
        serve
            .submit(Submission::new(job.release, job.work, job.databank))
            .expect("journal append");
        std::thread::sleep(delay);
    }
    // Stream fully submitted but never drained: wait for the SIGKILL.
    println!("repro_serve crash mode: stream submitted, awaiting kill");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn resume_mode() {
    let instance = reference_stream();
    let journal = required_path("STRETCH_SERVE_JOURNAL", "resume");
    let (mut serve, report) = StretchServe::recover(&journal, instance.platform.clone(), config())
        .expect("recover from journal");
    println!(
        "repro_serve resume: {} records ({} from snapshot {:?} + {} replayed; {} submissions, \
         {} decisions), torn tail: {}",
        report.records,
        report.snapshot_records,
        report.snapshot,
        report.replayed_records,
        report.submissions,
        report.decisions,
        report.torn.map_or_else(
            || "none".to_string(),
            |r| format!("{r} ({} bytes)", report.truncated_bytes)
        ),
    );
    let done = usize::try_from(report.submissions).expect("submission count");
    assert!(
        done <= instance.jobs.len(),
        "journal holds {done} submissions but the stream has {}",
        instance.jobs.len()
    );
    for job in &instance.jobs[done..] {
        let outcome = serve
            .submit(Submission::new(job.release, job.work, job.databank))
            .expect("journal append");
        assert!(outcome.is_accepted(), "continuation rejected: {outcome:?}");
    }
    serve.finish().expect("drain recovered run");

    let reference = run_uninterrupted(&instance, config());
    assert_eq!(
        serve.state_digest(),
        reference.state_digest(),
        "recovered state digest diverged from the uninterrupted run"
    );
    assert_eq!(
        bits(serve.completions()),
        bits(reference.completions()),
        "recovered completions diverged from the uninterrupted run"
    );
    println!(
        "repro_serve: RECOVERED OK (digest {:016x}, {} jobs)",
        serve.state_digest(),
        serve.completions().len()
    );
}

fn rotate_mode() {
    let instance = reference_stream();
    let journal_dir = required_path("STRETCH_SERVE_JOURNAL", "rotate");
    let _ = std::fs::remove_dir_all(&journal_dir);
    let mut serve = StretchServe::create(&journal_dir, instance.platform.clone(), config())
        .expect("create journal");
    for job in &instance.jobs {
        let outcome = serve
            .submit(Submission::new(job.release, job.work, job.databank))
            .expect("journal append");
        assert!(outcome.is_accepted(), "reference job rejected: {outcome:?}");
    }
    let crash_digest = serve.state_digest();
    drop(serve); // simulated crash: never drained, never finally synced

    let scan = journal::scan_dir(&journal_dir).expect("scan journal dir");
    assert!(
        !scan.snapshots.is_empty(),
        "the stream never rotated — lower STRETCH_SERVE_SEGMENT_RECORDS (policy: {:?})",
        config().rotation
    );
    let newest = *scan.snapshots.last().unwrap();
    let (mut recovered, report) =
        StretchServe::recover(&journal_dir, instance.platform.clone(), config())
            .expect("recover rotated journal");
    assert_eq!(
        report.snapshot,
        Some(newest),
        "recovery skipped the newest snapshot: {report:?}"
    );
    assert!(
        report.snapshot_records > 0 && report.replayed_records < report.records,
        "replay was not bounded by the snapshot: {report:?}"
    );
    assert_eq!(
        recovered.state_digest(),
        crash_digest,
        "suffix-only recovery diverged from the pre-crash state"
    );
    recovered.finish().expect("drain recovered run");
    let reference = run_uninterrupted(&instance, config());
    assert_eq!(
        bits(recovered.completions()),
        bits(reference.completions()),
        "recovered completions diverged from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&journal_dir);
    println!(
        "repro_serve rotate: OK (snapshot {newest}, replayed {} of {} records)",
        report.replayed_records, report.records
    );
}

fn compact_mode() {
    let instance = reference_stream();
    let journal_dir = required_path("STRETCH_SERVE_JOURNAL", "compact");
    let _ = std::fs::remove_dir_all(&journal_dir);
    let config = config();
    let retain = config.snapshot_retain.max(1);
    let mut serve = StretchServe::create(&journal_dir, instance.platform.clone(), config.clone())
        .expect("create journal");
    for job in &instance.jobs {
        let outcome = serve
            .submit(Submission::new(job.release, job.work, job.databank))
            .expect("journal append");
        assert!(outcome.is_accepted(), "reference job rejected: {outcome:?}");
    }
    serve.finish().expect("drain");
    let digest = serve.state_digest();
    drop(serve);

    let scan = journal::scan_dir(&journal_dir).expect("scan journal dir");
    assert!(
        !scan.snapshots.is_empty(),
        "the stream never rotated — lower STRETCH_SERVE_SEGMENT_RECORDS (policy: {:?})",
        config.rotation
    );
    assert!(
        scan.snapshots.len() <= retain,
        "GC retained {} snapshots, cap is {retain}",
        scan.snapshots.len()
    );
    let oldest_kept = scan.snapshots[0];
    assert!(
        scan.sealed.iter().all(|&s| s > oldest_kept),
        "sealed segments {:?} covered by snapshot {oldest_kept} escaped garbage collection",
        scan.sealed
    );

    // The drain itself (`advance(∞)`) is not a journaled event, so recovery
    // lands just before it; finishing the recovered service must then reach
    // the drained state exactly.
    let (mut recovered, report) =
        StretchServe::recover(&journal_dir, instance.platform.clone(), config)
            .expect("recover compacted journal");
    recovered.finish().expect("drain recovered run");
    assert_eq!(
        recovered.state_digest(),
        digest,
        "recovery from the compacted directory diverged from the drained state"
    );
    let _ = std::fs::remove_dir_all(&journal_dir);
    println!(
        "repro_serve compact: OK ({} sealed + {} snapshots on disk, replayed {} records \
         past snapshot {:?})",
        scan.sealed.len(),
        scan.snapshots.len(),
        report.replayed_records,
        report.snapshot
    );
}

fn main() {
    match env_var("STRETCH_SERVE_MODE").as_deref() {
        None | Some("verify") => verify_mode(),
        Some("crash") => crash_mode(),
        Some("resume") => resume_mode(),
        Some("rotate") => rotate_mode(),
        Some("compact") => compact_mode(),
        Some(other) => {
            panic!("STRETCH_SERVE_MODE must be verify, crash, resume, rotate or compact, got `{other}`")
        }
    }
}
