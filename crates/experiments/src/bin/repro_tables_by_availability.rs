//! Reproduces Tables 14–16: the Table-1 statistics partitioned by database
//! availability (30 %, 60 %, 90 %).

use stretch_experiments::{full_grid, run_campaign, tables_by_availability, CampaignSettings};

fn main() {
    let settings = CampaignSettings::from_env();
    let result = run_campaign(&full_grid(), settings);
    for table in tables_by_availability(&result.observations) {
        println!("{table}");
    }
}
