//! Measures the scaling trajectory (jobs/sec and wall-clock vs instance
//! size and vs thread count, both min-cost backends) and merges it into
//! `BENCH_scale.json` — the scale companion of `BENCH_baseline.json`.
//!
//! ```text
//! cargo run --release -p stretch-experiments --bin repro_scale
//! STRETCH_SCALE_SMOKE=1 cargo run --release -p stretch-experiments --bin repro_scale
//! ```
//!
//! `STRETCH_SCALE_SMOKE=1` selects the CI-sized study (seconds, not
//! minutes) and **does not write the file** — smoke rungs are measured at
//! tiny sizes and would pollute the recorded trajectory.  The output file
//! format is the flat `"section/name" → value` map shared with the
//! baseline, so trajectories diff with the same tooling.

use std::path::Path;
use stretch_experiments::campaign::read_env;
use stretch_experiments::scale::{render, run_scale_study, write_bench_scale, ScaleSettings};

fn main() {
    let smoke = read_env("STRETCH_SCALE_SMOKE", false, |name, raw| match raw.trim() {
        "1" | "true" => true,
        "0" | "false" | "" => false,
        _ => panic!("{name} must be 0 or 1, got `{raw}`"),
    });
    let settings = if smoke {
        ScaleSettings::smoke()
    } else {
        ScaleSettings::default()
    };
    eprintln!(
        "Scale study: sizes {:?}, threads {:?}, {} instances per rung",
        settings.job_sizes, settings.thread_counts, settings.instances_per_point
    );
    let points = run_scale_study(&settings);
    print!("{}", render(&points));
    if smoke {
        eprintln!("Smoke study: trajectory NOT written (rungs are smoke-sized)");
        return;
    }
    let path = Path::new("BENCH_scale.json");
    match write_bench_scale(path, &points) {
        Ok(()) => eprintln!("Trajectory merged into {}", path.display()),
        Err(e) => eprintln!("Could not write {}: {e}", path.display()),
    }
}
