//! The paper-scale §5 campaign: 200 instances per configuration, fixed
//! 15-minute arrival windows, streaming aggregation (memory stays bounded
//! by the chunk size however many thousand jobs each instance carries).
//!
//! ```text
//! # The real thing (hours of CPU; fans out over STRETCH_THREADS workers):
//! cargo run --release -p stretch-experiments --bin repro_paper
//!
//! # The CI smoke leg: 1 instance per configuration, 30-second windows,
//! # first 2 grid configurations only:
//! STRETCH_INSTANCES=1 STRETCH_WINDOW=30 STRETCH_PAPER_CONFIGS=2 \
//!     cargo run --release -p stretch-experiments --bin repro_paper
//! ```
//!
//! `STRETCH_PAPER_CONFIGS` truncates the grid (strictly parsed, like every
//! other knob); everything else comes from `CampaignSettings::paper_from_env`.

use stretch_experiments::campaign::{parse_positive_count, read_env};
use stretch_experiments::{full_grid, run_campaign_streaming, CampaignSettings};
use stretch_platform::reference;

fn main() {
    let settings = CampaignSettings::paper_from_env();
    let mut grid = full_grid();
    if let Some(n) = read_env("STRETCH_PAPER_CONFIGS", None, |name, raw| {
        Some(parse_positive_count(name, raw))
    }) {
        grid.truncate(n);
    }
    eprintln!(
        "Paper-scale campaign: {} configurations x {} instances, {}s windows, {} threads",
        grid.len(),
        settings.instances_per_config,
        settings.window_secs.unwrap_or(0.0),
        rayon::current_num_threads(),
    );

    let summary = run_campaign_streaming(&grid, settings);

    println!("{}", summary.table1());
    for &sites in &reference::PLATFORM_SIZES {
        let table = summary.table(
            &format!("Paper-scale partition: configurations using {sites} sites"),
            |c| c.sites == sites,
        );
        if table.rows.iter().any(|r| r.max_stretch.is_some()) {
            println!("{table}");
        }
    }

    println!(
        "{} instances, {:.0} jobs total (p50 {:.0} / p99 {:.0} per instance), \
         {:.1}s wall-clock, {:.1} jobs/sec",
        summary.instances(),
        summary.total_jobs(),
        summary.jobs_p50.value().unwrap_or(0.0),
        summary.jobs_p99.value().unwrap_or(0.0),
        summary.elapsed_seconds,
        summary.jobs_per_second(),
    );
}
