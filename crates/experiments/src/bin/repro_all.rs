//! Runs the complete reproduction: Table 1, the partitioned tables 2–16,
//! Figure 3 and the overhead study, sharing a single campaign for all the
//! tables.

use stretch_experiments::figure3::{render_figure3, run_figure3, Figure3Settings};
use stretch_experiments::{
    full_grid, run_campaign, run_overhead_study, table1, tables_by_availability,
    tables_by_databases, tables_by_density, tables_by_sites, CampaignSettings,
};

fn main() {
    let settings = CampaignSettings::from_env();
    let grid = full_grid();
    eprintln!(
        "Campaign: {} configurations x {} instances, ~{} jobs each",
        grid.len(),
        settings.instances_per_config,
        settings.target_jobs
    );
    let result = run_campaign(&grid, settings);

    println!("{}", table1(&result.observations));
    for table in tables_by_sites(&result.observations) {
        println!("{table}");
    }
    for table in tables_by_density(&result.observations) {
        println!("{table}");
    }
    for table in tables_by_databases(&result.observations) {
        println!("{table}");
    }
    for table in tables_by_availability(&result.observations) {
        println!("{table}");
    }

    let points = run_figure3(&Figure3Settings::default());
    println!("{}", render_figure3(&points));

    let overhead = run_overhead_study(3, 40, 2006);
    println!("{}", overhead.render());
}
