//! Reproduces Table 1: aggregate statistics over the full 162-configuration
//! grid.
//!
//! ```text
//! cargo run --release -p stretch-experiments --bin repro_table1
//! STRETCH_INSTANCES=20 STRETCH_JOBS=60 cargo run --release -p stretch-experiments --bin repro_table1
//! ```

use stretch_experiments::{full_grid, run_campaign, table1, CampaignSettings};

fn main() {
    let settings = CampaignSettings::from_env();
    let grid = full_grid();
    eprintln!(
        "Running {} configurations x {} instances (target {} jobs per instance)...",
        grid.len(),
        settings.instances_per_config,
        settings.target_jobs
    );
    let result = run_campaign(&grid, settings);
    println!("{}", table1(&result.observations));
    let json = stretch_experiments::runner::observations_to_json(&result.observations);
    let path = "table1_observations.json";
    if std::fs::write(path, json.pretty()).is_ok() {
        eprintln!("Raw observations written to {path}");
    }
}
