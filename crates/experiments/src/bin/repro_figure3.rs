//! Reproduces Figure 3: max-stretch degradation (a) and sum-stretch gain (b)
//! of the optimized on-line heuristic versus the non-optimized version, as a
//! function of the workload density.

use stretch_experiments::campaign::{parse_positive_count, read_env};
use stretch_experiments::figure3::{render_figure3, run_figure3, Figure3Settings};

fn main() {
    let mut settings = Figure3Settings::default();
    settings.instances_per_density = read_env(
        "STRETCH_INSTANCES",
        settings.instances_per_density,
        parse_positive_count,
    );
    settings.target_jobs = read_env("STRETCH_JOBS", settings.target_jobs, parse_positive_count);
    eprintln!(
        "Sweeping {} densities x {} instances...",
        settings.densities.len(),
        settings.instances_per_density
    );
    let points = run_figure3(&settings);
    println!("{}", render_figure3(&points));
}
