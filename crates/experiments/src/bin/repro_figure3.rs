//! Reproduces Figure 3: max-stretch degradation (a) and sum-stretch gain (b)
//! of the optimized on-line heuristic versus the non-optimized version, as a
//! function of the workload density.

use stretch_experiments::figure3::{render_figure3, run_figure3, Figure3Settings};

fn main() {
    let mut settings = Figure3Settings::default();
    if let Ok(v) = std::env::var("STRETCH_INSTANCES") {
        if let Ok(n) = v.parse() {
            settings.instances_per_density = n;
        }
    }
    if let Ok(v) = std::env::var("STRETCH_JOBS") {
        if let Ok(n) = v.parse() {
            settings.target_jobs = n;
        }
    }
    eprintln!(
        "Sweeping {} densities x {} instances...",
        settings.densities.len(),
        settings.instances_per_density
    );
    let points = run_figure3(&settings);
    println!("{}", render_figure3(&points));
}
