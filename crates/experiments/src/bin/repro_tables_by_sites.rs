//! Reproduces Tables 2–4: the Table-1 statistics partitioned by platform
//! size (3, 10 and 20 sites).

use stretch_experiments::{full_grid, run_campaign, tables_by_sites, CampaignSettings};

fn main() {
    let settings = CampaignSettings::from_env();
    let result = run_campaign(&full_grid(), settings);
    for table in tables_by_sites(&result.observations) {
        println!("{table}");
    }
}
