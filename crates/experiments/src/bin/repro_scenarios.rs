//! The scenario-family study: the reduced platform grid crossed with every
//! workload family (steady, bursty arrivals, heavy-tailed request sizes,
//! skewed databank popularity), one Table-1-style table per family.
//!
//! ```text
//! cargo run --release -p stretch-experiments --bin repro_scenarios
//! STRETCH_INSTANCES=20 STRETCH_JOBS=60 \
//!     cargo run --release -p stretch-experiments --bin repro_scenarios
//! ```
//!
//! Every family carries the **same expected load** as the steady scenario
//! (the generator preserves expected job count and total work), so ranking
//! differences between tables are attributable to flow shape, not load.

use stretch_experiments::{
    run_campaign_streaming, scenario_families, scenario_grid, CampaignSettings,
};

fn main() {
    let settings = CampaignSettings::from_env();
    let grid = scenario_grid();
    eprintln!(
        "Scenario campaign: {} configurations ({} families) x {} instances, ~{} jobs each",
        grid.len(),
        scenario_families().len(),
        settings.instances_per_config,
        settings.target_jobs
    );
    let summary = run_campaign_streaming(&grid, settings);

    for family in scenario_families() {
        let table = summary.table(
            &format!("Scenario `{}`: degradation statistics", family.label()),
            |c| c.scenario == family,
        );
        println!("{table}");
    }
    println!(
        "{} instances, {:.0} jobs, {:.1} jobs/sec",
        summary.instances(),
        summary.total_jobs(),
        summary.jobs_per_second(),
    );
}
