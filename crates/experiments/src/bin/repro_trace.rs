//! Records, replays and attacks scheduler runs through the `.strt` trace
//! harness.
//!
//! Modes, selected by `STRETCH_TRACE_MODE` (malformed values abort loudly,
//! like every other `STRETCH_*` knob):
//!
//! * unset or `smoke` — record a serve run of the reference stream into a
//!   temporary trace, then replay it on all 3 backends × warm/cold and
//!   assert every cell lands on the same state digest and bit-identical
//!   completions, including the sealed digest of the recording run itself.
//!   This is the CI trace-replay leg.
//! * `adversary` — run the seeded hill-climb adversary over the reference
//!   stream, scoring candidates by the achieved-online vs.
//!   offline-clairvoyant max-stretch ratio under the configured solver
//!   cell; prints the score trajectory and, when `STRETCH_TRACE_OUT` is
//!   set, records the worst stream found as a sealed trace there.
//! * `bless` — re-record the checked-in trace fixture
//!   (`tests/fixtures/trace_0.strt`): the adversary's worst stream under
//!   the pinned search seed, recorded through a full serve run.  Run after
//!   any change to the scheduler pipeline, trace codec or adversary, then
//!   commit the fixture together with the change.
//!
//! The solver cell comes from the usual `STRETCH_MINCOST_BACKEND` /
//! `STRETCH_WARM_START` variables.  The adversary budget is pinned (seed
//! and rounds are part of the fixture contract), so every mode is
//! reproducible bit for bit.

use std::path::{Path, PathBuf};

use stretch_core::adversarial::online_offline_ratio;
use stretch_core::refstream::reference_instance;
use stretch_core::{OnlineVariant, SolverConfig};
use stretch_experiments::trace_fixture_path;
use stretch_serve::trace::{self, TraceTail};
use stretch_serve::{ServeConfig, Submission};
use stretch_workload::adversary::{self, AdversaryConfig};
use stretch_workload::Instance;

/// The pinned adversary budget: part of the fixture contract — changing
/// any field requires re-blessing `trace_0.strt` and the adversary
/// goldens.  Must stay identical to
/// `stretch_experiments::adversary_budget` (pinned by a test there).
fn adversary_budget() -> AdversaryConfig {
    stretch_experiments::adversary_budget()
}

/// The base stream the adversary attacks: the §5.3 bench instance, small
/// enough that the search runs in seconds.
fn reference_stream() -> Instance {
    reference_instance(3, 3, 20, 3)
}

/// The stream the smoke mode records: the six-job reference stream of the
/// journal tests, on the fixture platform.  Its System-(2) optima are
/// unique at every decision point, so all 3 backends × warm/cold must
/// reproduce the recorded digest **bit for bit** — the strongest form of
/// the replay contract, pinned in CI.  (Generic streams admit degenerate
/// optima where the primal-dual backend legitimately picks a different
/// allocation; those replay bit-identically per backend, not across.)
fn smoke_stream() -> Instance {
    let platform = stretch_platform::fixtures::small_platform();
    let jobs = [
        (0.0, 300.0, 0),
        (0.0, 60.0, 1),
        (2.5, 120.0, 0),
        (4.0, 30.0, 1),
        (6.0, 90.0, 0),
        (7.5, 45.0, 1),
    ]
    .iter()
    .map(|&(release, work, databank)| stretch_workload::Job::new(0, release, work, databank))
    .collect();
    Instance::new(platform, jobs)
}

fn env_var(name: &str) -> Option<String> {
    stretch_experiments::campaign::read_env(name, None, |_, raw| Some(raw.to_string()))
}

fn submissions_of(instance: &Instance) -> Vec<Submission> {
    instance
        .jobs
        .iter()
        .map(|j| Submission::new(j.release, j.work, j.databank))
        .collect()
}

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("repro-trace-{name}-{}", std::process::id()));
    p
}

/// Records `instance` through a full serve run into `trace_path`, then
/// asserts the trace replays to the same digest and completions on every
/// backend × warm/cold cell.
fn record_and_check(instance: &Instance, trace_path: &Path) -> trace::RecordedRun {
    let journal_dir = tmp_dir("journal");
    let _ = std::fs::remove_dir_all(&journal_dir);
    let config = ServeConfig::from_env();
    let run = trace::record_run(
        trace_path,
        &journal_dir,
        instance.platform.clone(),
        config,
        &submissions_of(instance),
    )
    .expect("record serve run");
    let _ = std::fs::remove_dir_all(&journal_dir);
    assert_eq!(
        run.rejected, 0,
        "reference submissions must all be accepted"
    );

    let (recorded, tail) = trace::load(trace_path).expect("load recorded trace");
    assert_eq!(tail, TraceTail::Clean, "fresh recording has a torn tail");
    assert!(recorded.is_sealed(), "fresh recording is unsealed");

    let matrix =
        trace::replay_matrix(&recorded, &instance.platform).expect("replay recorded trace");
    for (cell, outcome) in &matrix {
        println!(
            "  replay {}/{}: digest {:016x}, {} decisions{}",
            cell.backend.name(),
            if cell.warm_start { "warm" } else { "cold" },
            outcome.digest,
            outcome.decisions,
            if outcome.matches_recorded {
                " (= recorded)"
            } else {
                ""
            }
        );
    }
    let reference = &matrix[0].1;
    for (cell, outcome) in &matrix {
        assert_eq!(
            outcome.digest,
            reference.digest,
            "replay digest diverged on {}/{}",
            cell.backend.name(),
            if cell.warm_start { "warm" } else { "cold" }
        );
        let bits: Vec<u64> = outcome.completions.iter().map(|c| c.to_bits()).collect();
        let ref_bits: Vec<u64> = reference.completions.iter().map(|c| c.to_bits()).collect();
        assert_eq!(
            bits,
            ref_bits,
            "replay completions diverged on {}/{}",
            cell.backend.name(),
            if cell.warm_start { "warm" } else { "cold" }
        );
        assert!(
            outcome.matches_recorded,
            "replay on {}/{} does not reproduce the sealed digest {:016x}",
            cell.backend.name(),
            if cell.warm_start { "warm" } else { "cold" },
            run.digest
        );
    }
    run
}

fn smoke_mode() {
    let instance = smoke_stream();
    let trace_path = tmp_dir("smoke.strt");
    let run = record_and_check(&instance, &trace_path);
    let _ = std::fs::remove_file(&trace_path);
    println!(
        "repro_trace smoke: OK ({} submissions, digest {:016x}, backend {})",
        run.accepted,
        run.digest,
        SolverConfig::from_env().backend.name()
    );
}

/// The adversary search every adversarial mode runs: hill-climb from the
/// reference stream, scored by the online-vs-offline max-stretch ratio
/// under `solver`.
fn attack(solver: SolverConfig) -> (adversary::AdversaryResult, f64) {
    let base = reference_stream();
    let score = |inst: &Instance| {
        online_offline_ratio(inst, OnlineVariant::Online, solver).unwrap_or(f64::NAN)
    };
    let start = score(&base);
    let result = adversary::search(&base, adversary_budget(), score);
    (result, start)
}

fn adversary_mode() {
    let solver = SolverConfig::from_env();
    let (result, start) = attack(solver);
    println!(
        "repro_trace adversary: base ratio {start:.6} -> worst {:.6} \
         ({} evaluations, {} improving rounds, backend {})",
        result.best_score,
        result.evaluations,
        result.improvements,
        solver.backend.name()
    );
    assert!(
        result.best_score >= start,
        "search lost ground: {} < {start}",
        result.best_score
    );
    if let Some(out) = env_var("STRETCH_TRACE_OUT").map(PathBuf::from) {
        let trace_path = out;
        let journal_dir = tmp_dir("adversary-journal");
        let _ = std::fs::remove_dir_all(&journal_dir);
        let run = trace::record_run(
            &trace_path,
            &journal_dir,
            result.best.platform.clone(),
            ServeConfig::from_env(),
            &submissions_of(&result.best),
        )
        .expect("record adversarial trace");
        let _ = std::fs::remove_dir_all(&journal_dir);
        println!(
            "repro_trace adversary: worst stream recorded to {} (digest {:016x})",
            trace_path.display(),
            run.digest
        );
    }
}

fn bless_mode() {
    // The fixture pins the *monge* cell so blessing is independent of the
    // caller's environment matrix.
    let solver = SolverConfig::monge();
    let (result, start) = attack(solver);
    let fixture = trace_fixture_path(0);
    let journal_dir = tmp_dir("bless-journal");
    let _ = std::fs::remove_dir_all(&journal_dir);
    let mut config = ServeConfig::from_env();
    config.solver = solver;
    let run = trace::record_run(
        &fixture,
        &journal_dir,
        result.best.platform.clone(),
        config,
        &submissions_of(&result.best),
    )
    .expect("record fixture trace");
    let _ = std::fs::remove_dir_all(&journal_dir);
    println!(
        "repro_trace bless: {} rewritten ({} submissions, digest {:016x}, \
         ratio {start:.6} -> {:.6})",
        fixture.display(),
        run.accepted,
        run.digest,
        result.best_score
    );
}

fn main() {
    match env_var("STRETCH_TRACE_MODE").as_deref() {
        None | Some("smoke") => smoke_mode(),
        Some("adversary") => adversary_mode(),
        Some("bless") => bless_mode(),
        Some(other) => {
            panic!("STRETCH_TRACE_MODE must be smoke, adversary or bless, got `{other}`")
        }
    }
}
