//! Reproduces Tables 5–10: the Table-1 statistics partitioned by workload
//! density (0.75, 1.0, 1.25, 1.5, 2.0, 3.0).

use stretch_experiments::{full_grid, run_campaign, tables_by_density, CampaignSettings};

fn main() {
    let settings = CampaignSettings::from_env();
    let result = run_campaign(&full_grid(), settings);
    for table in tables_by_density(&result.observations) {
        println!("{table}");
    }
}
