//! Reproduces the scheduling-overhead comparison of §5.3 (3-cluster
//! platforms): average wall-clock time spent inside each scheduler, per
//! instance and per arrival event.
//!
//! The per-event means are merged into `BENCH_baseline.json` (current
//! directory, or `STRETCH_BENCH_BASELINE`; empty disables the write) so that
//! future changes can diff scheduler performance against this run.
//!
//! # Perf-drift gate (`STRETCH_DRIFT_CHECK=1`)
//!
//! With `STRETCH_DRIFT_CHECK=1` the binary runs the CI perf-drift gate
//! instead ([`stretch_experiments::drift`]): every `engine/*` row of the
//! baseline file is re-measured on the reference workload and the process
//! exits non-zero when any row is more than
//! [`stretch_experiments::DRIFT_FACTOR`]× slower than its recorded entry.
//! Nothing is written in this mode — CI noise must never overwrite the
//! recorded trajectory.  Malformed values abort loudly, like every other
//! `STRETCH_*` knob.

use stretch_experiments::campaign::{parse_positive_count, read_env};
use stretch_experiments::{run_drift_check, run_overhead_study, DRIFT_SAMPLES};

/// Strict parse of `STRETCH_DRIFT_CHECK` (`1`/`0`, unset means off).
fn drift_check_requested() -> bool {
    read_env("STRETCH_DRIFT_CHECK", false, |name, raw| match raw.trim() {
        "1" => true,
        "0" => false,
        _ => panic!("{name} must be 0 or 1, got `{raw}`"),
    })
}

fn baseline_path() -> Option<std::path::PathBuf> {
    read_env(
        "STRETCH_BENCH_BASELINE",
        Some(std::path::PathBuf::from("BENCH_baseline.json")),
        |_, raw| {
            if raw.is_empty() {
                None
            } else {
                Some(std::path::PathBuf::from(raw))
            }
        },
    )
}

fn main() {
    if drift_check_requested() {
        let path = baseline_path().expect(
            "STRETCH_DRIFT_CHECK=1 needs a baseline file (STRETCH_BENCH_BASELINE is empty)",
        );
        match run_drift_check(&path, DRIFT_SAMPLES) {
            Ok(report) => {
                println!("{}", report.render());
                let violations = report.violations();
                if !violations.is_empty() {
                    eprintln!(
                        "perf drift: {} engine row(s) regressed beyond {:.1}x the recorded \
                         baseline; if intentional, re-record with `cargo bench -p stretch-bench \
                         --bench scheduler_overhead`",
                        violations.len(),
                        report.factor
                    );
                    std::process::exit(1);
                }
            }
            Err(err) => {
                eprintln!("perf drift gate could not run: {err}");
                std::process::exit(1);
            }
        }
        return;
    }

    let instances = read_env("STRETCH_INSTANCES", 5, parse_positive_count);
    let jobs = read_env("STRETCH_JOBS", 40, parse_positive_count);
    let report = run_overhead_study(instances, jobs, 2006);
    println!("{}", report.render());
    if let Some(path) = baseline_path() {
        match report.write_baseline(&path) {
            Ok(()) => eprintln!("Per-event means merged into {}", path.display()),
            Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
        }
    }
}
