//! Reproduces the scheduling-overhead comparison of §5.3 (3-cluster
//! platforms): average wall-clock time spent inside each scheduler, per
//! instance and per arrival event.
//!
//! The per-event means are merged into `BENCH_baseline.json` (current
//! directory, or `STRETCH_BENCH_BASELINE`; empty disables the write) so that
//! future changes can diff scheduler performance against this run.

use stretch_experiments::run_overhead_study;

fn main() {
    let instances = std::env::var("STRETCH_INSTANCES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let jobs = std::env::var("STRETCH_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let report = run_overhead_study(instances, jobs, 2006);
    println!("{}", report.render());
    let path = match std::env::var("STRETCH_BENCH_BASELINE") {
        Ok(p) if p.is_empty() => None,
        Ok(p) => Some(std::path::PathBuf::from(p)),
        Err(_) => Some(std::path::PathBuf::from("BENCH_baseline.json")),
    };
    if let Some(path) = path {
        match report.write_baseline(&path) {
            Ok(()) => eprintln!("Per-event means merged into {}", path.display()),
            Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
        }
    }
}
