//! Reproduces the scheduling-overhead comparison of §5.3 (3-cluster
//! platforms): average wall-clock time spent inside each scheduler.

use stretch_experiments::run_overhead_study;

fn main() {
    let instances = std::env::var("STRETCH_INSTANCES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let jobs = std::env::var("STRETCH_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let report = run_overhead_study(instances, jobs, 2006);
    println!("{}", report.render());
}
