//! Temporary diagnostic for the System-(1) LP back-end.
use rand::rngs::SmallRng;
use rand::SeedableRng;
use stretch_core::offline::offline_problem;
use stretch_core::system1;
use stretch_platform::{PlatformConfig, PlatformGenerator};
use stretch_workload::{WorkloadConfig, WorkloadGenerator};

fn main() {
    for seed in 1u64..=5 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let platform = PlatformGenerator::new(PlatformConfig::new(3, 3, 0.6)).generate(&mut rng);
        let probe = WorkloadGenerator::new(WorkloadConfig {
            density: 1.5,
            window: 1.0,
            scan_fraction: 1.0,
            ..Default::default()
        });
        let window = (10.0 / probe.expected_job_count(&platform).max(1e-9)).max(1e-3);
        let generator = WorkloadGenerator::new(WorkloadConfig {
            density: 1.5,
            window,
            scan_fraction: 1.0,
            ..Default::default()
        });
        let instance = generator.generate_instance(platform, &mut rng);
        let problem = offline_problem(&instance);
        let flow = problem.min_feasible_stretch();
        println!(
            "seed {seed}: jobs={} milestones={} flow={:?}",
            instance.num_jobs(),
            problem.milestones().len(),
            flow
        );
        let lower = problem.stretch_lower_bound();
        let mut upper = lower.max(1e-6) * 2.0;
        while !problem.feasible(upper) {
            upper *= 2.0;
        }
        let mut breakpoints: Vec<f64> = problem
            .milestones()
            .into_iter()
            .filter(|&m| m > lower && m < upper)
            .collect();
        breakpoints.push(upper);
        println!(
            "  lower={lower:.6} upper={upper:.6} breakpoints={}",
            breakpoints.len()
        );
        // Locate bracket as in optimal_stretch_lp.
        let mut lo = lower;
        let mut hi_idx = breakpoints.len() - 1;
        if problem.feasible(breakpoints[0]) {
            hi_idx = 0;
        } else {
            let mut lo_search = 0usize;
            while hi_idx - lo_search > 1 {
                let mid = (lo_search + hi_idx) / 2;
                if problem.feasible(breakpoints[mid]) {
                    hi_idx = mid;
                } else {
                    lo_search = mid;
                }
            }
            lo = breakpoints[lo_search];
        }
        let hi = breakpoints[hi_idx];
        println!("  bracket=[{lo:.6}, {hi:.6}]");
        let t0 = std::time::Instant::now();
        let interval = system1::solve_system1_interval(&problem, lo, hi);
        println!(
            "  solve_system1_interval -> {:?} in {:?}",
            interval,
            t0.elapsed()
        );
        let full = system1::optimal_stretch_lp(&problem);
        println!("  optimal_stretch_lp -> {full:?}");
    }
}
