//! Reproduces Tables 11–13: the Table-1 statistics partitioned by the number
//! of reference databanks (3, 10, 20).

use stretch_experiments::{full_grid, run_campaign, tables_by_databases, CampaignSettings};

fn main() {
    let settings = CampaignSettings::from_env();
    let result = run_campaign(&full_grid(), settings);
    for table in tables_by_databases(&result.observations) {
        println!("{table}");
    }
}
