//! The scheduling-overhead study of §5.3.
//!
//! The paper compares the wall-clock time each scheduler spends making
//! decisions for a 15-minute workload on 3-cluster platforms: the on-line
//! heuristics stay below a third of a second, the off-line optimal takes
//! about half a second, and Bender98 — which solves a full off-line problem
//! at every arrival — needs tens of seconds, which is why it is excluded from
//! the larger configurations.

use crate::config::ExperimentConfig;
use crate::heuristics::TABLE1_ORDER;
use crate::runner::run_instance;
use serde::{Deserialize, Serialize};

/// Average scheduling time per heuristic.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OverheadReport {
    /// `(heuristic name, average scheduling time in seconds)`, in Table-1
    /// order.
    pub rows: Vec<(String, f64)>,
    /// Number of instances aggregated.
    pub instances: usize,
    /// Average number of jobs per instance.
    pub mean_jobs: f64,
}

impl OverheadReport {
    /// Average scheduling time of one heuristic, if it was run.
    pub fn time_of(&self, name: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, t)| t)
    }

    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Scheduling overhead on 3-cluster platforms ({} instances, {:.1} jobs on average)\n",
            self.instances, self.mean_jobs
        ));
        for (name, time) in &self.rows {
            out.push_str(&format!("{name:<14} {:>12.4} s\n", time));
        }
        out
    }
}

/// Measures the average scheduling time of every heuristic on 3-cluster
/// platforms (the only ones where Bender98 is affordable, as in the paper).
pub fn run_overhead_study(instances: usize, target_jobs: usize, seed: u64) -> OverheadReport {
    let config = ExperimentConfig {
        sites: 3,
        databanks: 3,
        availability: 0.6,
        density: 1.5,
    };
    let mut totals = vec![0.0f64; TABLE1_ORDER.len()];
    let mut counts = vec![0usize; TABLE1_ORDER.len()];
    let mut total_jobs = 0usize;
    for i in 0..instances {
        let obs = run_instance(&config, target_jobs, seed + i as u64);
        total_jobs += obs.num_jobs;
        for (k, o) in obs.observations.iter().enumerate() {
            if let Some(o) = o {
                totals[k] += o.scheduling_time;
                counts[k] += 1;
            }
        }
    }
    let rows = TABLE1_ORDER
        .iter()
        .enumerate()
        .map(|(k, kind)| {
            let avg = if counts[k] > 0 {
                totals[k] / counts[k] as f64
            } else {
                f64::NAN
            };
            (kind.name().to_string(), avg)
        })
        .collect();
    OverheadReport {
        rows,
        instances,
        mean_jobs: total_jobs as f64 / instances.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_study_ranks_bender98_as_most_expensive_online_algorithm() {
        let report = run_overhead_study(2, 12, 11);
        assert_eq!(report.rows.len(), 11);
        let bender98 = report.time_of("Bender98").unwrap();
        let srpt = report.time_of("SRPT").unwrap();
        let mct = report.time_of("MCT").unwrap();
        // The list and greedy heuristics are orders of magnitude cheaper than
        // Bender98's per-arrival off-line optimisations.
        assert!(bender98 > srpt);
        assert!(bender98 > mct);
        assert!(crate::heuristics::HeuristicKind::Bender98.runs_on(3));
        let rendered = report.render();
        assert!(rendered.contains("Bender98"));
    }
}
