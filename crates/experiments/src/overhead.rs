//! The scheduling-overhead study of §5.3.
//!
//! The paper compares the wall-clock time each scheduler spends making
//! decisions for a 15-minute workload on 3-cluster platforms: the on-line
//! heuristics stay below a third of a second, the off-line optimal takes
//! about half a second, and Bender98 — which solves a full off-line problem
//! at every arrival — needs tens of seconds, which is why it is excluded from
//! the larger configurations.
//!
//! Besides the per-instance totals the study reports the mean time **per
//! arrival event** (the on-line schedulers re-optimise at every distinct
//! release date), and can persist those means into the repository's
//! `BENCH_baseline.json` perf trajectory (see [`crate::baseline`]) so that
//! successive PRs can diff scheduler performance.

use crate::config::ExperimentConfig;
use crate::heuristics::TABLE1_ORDER;
use crate::runner::run_instance;

/// Average scheduling times of one heuristic.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// Heuristic name (Table-1 spelling).
    pub name: String,
    /// Mean wall-clock time per instance, seconds.
    pub mean_time: f64,
    /// Mean wall-clock time per arrival event, seconds.
    pub mean_time_per_event: f64,
}

/// Average scheduling time per heuristic.
#[derive(Clone, Debug)]
pub struct OverheadReport {
    /// One row per heuristic, in Table-1 order.
    pub rows: Vec<OverheadRow>,
    /// Number of instances aggregated.
    pub instances: usize,
    /// Average number of jobs per instance.
    pub mean_jobs: f64,
    /// Average number of arrival events per instance.
    pub mean_events: f64,
}

impl OverheadReport {
    /// Average scheduling time of one heuristic, if it was run.
    pub fn time_of(&self, name: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.mean_time)
    }

    /// Average per-event scheduling time of one heuristic, if it was run.
    pub fn per_event_time_of(&self, name: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.mean_time_per_event)
    }

    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Scheduling overhead on 3-cluster platforms ({} instances, {:.1} jobs / {:.1} events on average)\n",
            self.instances, self.mean_jobs, self.mean_events
        ));
        out.push_str(&format!(
            "{:<14} {:>12}   {:>14}\n",
            "heuristic", "s/instance", "s/event"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<14} {:>12.4}   {:>14.6}\n",
                row.name, row.mean_time, row.mean_time_per_event
            ));
        }
        out
    }

    /// The `BENCH_baseline.json` entries of this report
    /// (`overhead_per_event/<heuristic>` → mean seconds per event).
    pub fn baseline_entries(&self) -> Vec<(String, f64)> {
        self.rows
            .iter()
            .filter(|r| r.mean_time_per_event.is_finite())
            .map(|r| {
                (
                    format!("overhead_per_event/{}", r.name),
                    r.mean_time_per_event,
                )
            })
            .collect()
    }

    /// Merges this report's per-event means into the baseline file.
    pub fn write_baseline(&self, path: &std::path::Path) -> std::io::Result<()> {
        crate::baseline::upsert(path, &self.baseline_entries())
    }
}

/// Measures the average scheduling time of every heuristic on 3-cluster
/// platforms (the only ones where Bender98 is affordable, as in the paper).
pub fn run_overhead_study(instances: usize, target_jobs: usize, seed: u64) -> OverheadReport {
    let config = ExperimentConfig {
        sites: 3,
        databanks: 3,
        availability: 0.6,
        density: 1.5,
        scenario: stretch_workload::Scenario::Steady,
    };
    let mut totals = vec![0.0f64; TABLE1_ORDER.len()];
    let mut per_event_totals = vec![0.0f64; TABLE1_ORDER.len()];
    let mut counts = vec![0usize; TABLE1_ORDER.len()];
    let mut total_jobs = 0usize;
    let mut total_events = 0usize;
    for i in 0..instances {
        let obs = run_instance(&config, target_jobs, seed + i as u64);
        total_jobs += obs.num_jobs;
        total_events += obs.num_events;
        for (k, o) in obs.observations.iter().enumerate() {
            if let Some(o) = o {
                totals[k] += o.scheduling_time;
                per_event_totals[k] += o.scheduling_time / obs.num_events.max(1) as f64;
                counts[k] += 1;
            }
        }
    }
    let rows = TABLE1_ORDER
        .iter()
        .enumerate()
        .map(|(k, kind)| {
            let (mean_time, mean_time_per_event) = if counts[k] > 0 {
                (
                    totals[k] / counts[k] as f64,
                    per_event_totals[k] / counts[k] as f64,
                )
            } else {
                (f64::NAN, f64::NAN)
            };
            OverheadRow {
                name: kind.name().to_string(),
                mean_time,
                mean_time_per_event,
            }
        })
        .collect();
    OverheadReport {
        rows,
        instances,
        mean_jobs: total_jobs as f64 / instances.max(1) as f64,
        mean_events: total_events as f64 / instances.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_study_ranks_bender98_as_most_expensive_online_algorithm() {
        let report = run_overhead_study(2, 12, 11);
        assert_eq!(report.rows.len(), 11);
        let bender98 = report.time_of("Bender98").unwrap();
        let srpt = report.time_of("SRPT").unwrap();
        let mct = report.time_of("MCT").unwrap();
        // The list and greedy heuristics are orders of magnitude cheaper than
        // Bender98's per-arrival off-line optimisations.
        assert!(bender98 > srpt);
        assert!(bender98 > mct);
        assert!(crate::heuristics::HeuristicKind::Bender98.runs_on(3));
        let rendered = report.render();
        assert!(rendered.contains("Bender98"));
        assert!(rendered.contains("s/event"));
    }

    #[test]
    fn per_event_times_are_consistent_with_instance_times() {
        let report = run_overhead_study(1, 10, 5);
        assert!(report.mean_events >= 1.0);
        for row in &report.rows {
            if row.mean_time.is_finite() {
                // Per-event time never exceeds per-instance time.
                assert!(
                    row.mean_time_per_event <= row.mean_time + 1e-12,
                    "{}: {} vs {}",
                    row.name,
                    row.mean_time_per_event,
                    row.mean_time
                );
            }
        }
    }

    #[test]
    fn baseline_entries_cover_every_measured_heuristic() {
        let report = run_overhead_study(1, 8, 3);
        let entries = report.baseline_entries();
        assert!(entries
            .iter()
            .all(|(k, v)| { k.starts_with("overhead_per_event/") && v.is_finite() && *v >= 0.0 }));
        assert!(entries.iter().any(|(k, _)| k.ends_with("/Online")));
    }
}
