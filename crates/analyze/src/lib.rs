//! # stretch-analyze
//!
//! The static half of the workspace's determinism contract.  Every
//! load-bearing guarantee of this reproduction is a *bit-identity*
//! guarantee — warm vs. cold solves, monge vs. simplex, journal replay,
//! thread counts — and a single stray `partial_cmp().unwrap()`, hash-map
//! iteration, raw environment read or wall-clock read can break it
//! silently.  This crate walks the workspace's Rust sources with a
//! hand-rolled token/line-level analyzer (dependency-free by design: the
//! offline container has no syn/proc-macro stack, and a lint this simple
//! should not need one) and enforces the contract as named rules:
//!
//! | rule | name              | contract                                               |
//! |------|-------------------|--------------------------------------------------------|
//! | D1   | `float-ord`       | no `partial_cmp` on float keys — use `total_cmp`       |
//! | D2   | `hash-collections`| no `HashMap`/`HashSet` in solver/serve/sim state — use `FastMap`/`BTreeMap`/indexed vecs |
//! | D3   | `env-read`        | no raw `std::env::var` outside the sanctioned config readers |
//! | D4   | `wall-clock`      | no `Instant::now`/`SystemTime` in replay-reachable layers |
//! | D5   | `ingest-panic`    | no `unwrap`/`expect`/`unreachable!` in the serve ingestion path |
//!
//! Violations are reported with `rule file:line` diagnostics (and as
//! machine-readable JSON for CI).  Known-good exceptions live in a
//! checked-in allowlist (`crates/analyze/allow.toml`) where **every entry
//! must carry a one-line justification**; entries are matched by rule,
//! file and exact (trimmed) line content, so they survive unrelated edits
//! but go *stale* — and fail the pass — as soon as the line they excuse
//! disappears.
//!
//! The scanner strips comments and string literals before matching (a
//! panic message may mention `unwrap`, a doc comment may mention
//! `HashMap`), and rules that only govern production code skip
//! `#[cfg(test)]` regions.  `crates/vendor/` (offline API stubs) and this
//! crate itself (whose sources quote the patterns as data) are excluded
//! from the walk.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

pub mod sanitize;

use sanitize::Sanitizer;

/// One lint rule of the determinism contract.
pub struct Rule {
    /// Stable identifier (`D1` … `D5`), the key allowlist entries use.
    pub id: &'static str,
    /// Short human name.
    pub name: &'static str,
    /// One-line statement of the contract the rule enforces.
    pub summary: &'static str,
    /// What a violating line should be changed to.
    pub fix: &'static str,
    /// Substring patterns that flag a (sanitized) source line.
    patterns: &'static [&'static str],
    /// Returns `true` when the rule applies to this workspace-relative
    /// path (forward slashes).
    in_scope: fn(&str) -> bool,
    /// Skip `#[cfg(test)]` regions: rules that only govern production
    /// paths (env reads, wall clocks, ingest panics) ignore test code;
    /// the hygiene rules (float ordering, hash collections) do not.
    skip_test_regions: bool,
}

/// Paths the walker never descends into, relative to the workspace root:
/// vendored stand-ins for external crates (not our code) and this crate
/// itself (its sources and fixtures quote the banned patterns as data).
const EXCLUDED_PREFIXES: &[&str] = &["crates/vendor/", "crates/analyze/"];

/// Files where raw environment reads are sanctioned: the once-per-process
/// config readers every other knob must route through.
const ENV_SANCTIONED: &[&str] = &[
    // `SolverConfig::from_env` and the strict shared parsers.
    "crates/core/src/config.rs",
    // `ServeConfig::from_env`, the serve layer's single env site.
    "crates/serve/src/service.rs",
];

fn any_path(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p))
}

fn d1_scope(_rel: &str) -> bool {
    true
}

fn d2_scope(rel: &str) -> bool {
    // Solver, serve and simulation layers: state or iteration order here
    // feeds the bit-identity contracts.  (The experiment harness may hash
    // for uniqueness asserts; its outputs are sorted before emission.)
    any_path(
        rel,
        &[
            "crates/flow/",
            "crates/core/",
            "crates/serve/",
            "crates/sim/",
        ],
    )
}

fn d3_scope(rel: &str) -> bool {
    // Production sources only (integration tests may probe env behaviour),
    // minus the sanctioned config readers.
    rel.starts_with("crates/") && rel.contains("/src/") && !ENV_SANCTIONED.contains(&rel)
}

fn d4_scope(rel: &str) -> bool {
    // The layers reachable from replay/recovery: flow solvers and the
    // serve state machine.  Timestamps there are journalled, never read.
    any_path(rel, &["crates/flow/src/", "crates/serve/src/"])
}

fn d5_scope(rel: &str) -> bool {
    // The serve ingestion path: submission, journalling, dead-lettering,
    // event decoding, the bus and the trace codec.  Submissions must
    // dead-letter, never panic — a panicking ingest turns one malformed
    // request into an outage for every queued request behind it; likewise
    // a panicking trace parser turns one torn recording into an
    // unreplayable run.
    any_path(
        rel,
        &[
            "crates/serve/src/service.rs",
            "crates/serve/src/journal.rs",
            "crates/serve/src/dlq.rs",
            "crates/serve/src/event.rs",
            "crates/serve/src/bus.rs",
            "crates/serve/src/trace.rs",
        ],
    )
}

/// The determinism-contract rule table (order is reporting order).
pub const RULES: &[Rule] = &[
    Rule {
        id: "D1",
        name: "float-ord",
        summary: "no partial_cmp on float keys: NaN-tolerant comparisons make \
                  sort order input-dependent",
        fix: "use f64::total_cmp (or derive an integer key)",
        patterns: &[".partial_cmp("],
        in_scope: d1_scope,
        skip_test_regions: false,
    },
    Rule {
        id: "D2",
        name: "hash-collections",
        summary: "no std HashMap/HashSet in solver/serve/sim layers: \
                  RandomState iteration order differs per process",
        fix: "use stretch_flow::FastMap, BTreeMap, or indexed vectors",
        patterns: &["HashMap", "HashSet"],
        in_scope: d2_scope,
        skip_test_regions: false,
    },
    Rule {
        id: "D3",
        name: "env-read",
        summary: "no raw std::env::var outside the sanctioned config \
                  readers: ad-hoc reads silently swallow malformed values",
        fix: "route through SolverConfig/ServeConfig/read_env strict parsers",
        patterns: &["env::var"],
        in_scope: d3_scope,
        skip_test_regions: true,
    },
    Rule {
        id: "D4",
        name: "wall-clock",
        summary: "no Instant::now/SystemTime in replay-reachable layers: \
                  replay must reproduce the original bytes at any wall time",
        fix: "journal timestamps on the live path; never read the clock on replay",
        patterns: &["Instant::now", "SystemTime"],
        in_scope: d4_scope,
        skip_test_regions: true,
    },
    Rule {
        id: "D5",
        name: "ingest-panic",
        summary: "no unwrap/expect/unreachable in the serve ingestion path: \
                  malformed submissions must dead-letter, never panic",
        fix: "return an error (reject/DLQ); reserve panics for corrupted internal state",
        patterns: &[".unwrap()", ".expect(", "unreachable!"],
        in_scope: d5_scope,
        skip_test_regions: true,
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// One flagged source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`D1` … `D5`).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed (the raw source, not the sanitized
    /// form — this is what allowlist entries match against).
    pub snippet: String,
}

/// One `[[allow]]` entry of `allow.toml`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry suppresses.
    pub rule: String,
    /// Workspace-relative file the entry applies to.
    pub file: String,
    /// Exact trimmed line content the entry matches (line *numbers* would
    /// go stale on every unrelated edit; content survives them).
    pub line: String,
    /// Mandatory one-line justification; an empty one is a parse error.
    pub justification: String,
}

/// Result of reconciling findings with the allowlist.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by any allowlist entry — the failures.
    pub violations: Vec<Finding>,
    /// Findings suppressed by an allowlist entry.
    pub allowed: Vec<Finding>,
    /// Allowlist entries that matched no finding: stale, and an error —
    /// a dead entry would silently excuse the next violation that happens
    /// to land on the same line content.
    pub stale: Vec<AllowEntry>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// `true` when the pass should exit zero.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.stale.is_empty()
    }
}

/// Scans one file's contents as `rel` (workspace-relative path) and
/// appends findings.  Exposed for the fixture tests; [`scan_tree`] is the
/// production entry point.
pub fn scan_source(rel: &str, source: &str, out: &mut Vec<Finding>) {
    let active: Vec<&Rule> = RULES.iter().filter(|r| (r.in_scope)(rel)).collect();
    if active.is_empty() {
        return;
    }
    let mut sanitizer = Sanitizer::new();
    // cfg(test)-region tracking: brace depth of the skipped item, if any.
    let mut pending_cfg_test = false;
    let mut skip_depth: i32 = 0;
    let mut in_test_region = false;

    for (idx, raw) in source.lines().enumerate() {
        let code = sanitizer.strip(raw);
        let trimmed_code = code.trim();
        let opens = code.matches('{').count() as i32;
        let closes = code.matches('}').count() as i32;

        if in_test_region {
            skip_depth += opens - closes;
            if skip_depth <= 0 {
                in_test_region = false;
            }
        } else if pending_cfg_test {
            if trimmed_code.starts_with("#[") {
                // Another attribute between #[cfg(test)] and the item.
            } else if opens > closes {
                // The item opens a block (`mod tests {`): skip to its end.
                pending_cfg_test = false;
                in_test_region = true;
                skip_depth = opens - closes;
            } else {
                // Single-line item (`use …;` or a one-line fn): skip it.
                pending_cfg_test = false;
            }
        } else if trimmed_code.starts_with("#[cfg(test)") {
            pending_cfg_test = true;
        } else {
            for r in &active {
                if in_test_region || (r.skip_test_regions && pending_cfg_test) {
                    continue;
                }
                if r.patterns.iter().any(|p| code.contains(p)) {
                    out.push(Finding {
                        rule: r.id,
                        file: rel.to_string(),
                        line: idx + 1,
                        snippet: raw.trim().to_string(),
                    });
                }
            }
            continue;
        }

        // Lines inside (or opening) a test region still feed the rules
        // that do not skip test code.
        for r in &active {
            if r.skip_test_regions {
                continue;
            }
            if r.patterns.iter().any(|p| code.contains(p)) {
                out.push(Finding {
                    rule: r.id,
                    file: rel.to_string(),
                    line: idx + 1,
                    snippet: raw.trim().to_string(),
                });
            }
        }
    }
}

/// Recursively collects the `.rs` files under `root` (sorted, so runs are
/// deterministic), excluding `target/`, hidden directories and
/// [`EXCLUDED_PREFIXES`].
fn collect_sources(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut stack = vec![root.to_path_buf()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            let rel = relative(root, &path);
            if path.is_dir() {
                if name.starts_with('.')
                    || name == "target"
                    || any_path(&format!("{rel}/"), EXCLUDED_PREFIXES)
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push((rel, path));
            }
        }
    }
    files.sort();
    Ok(files)
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Scans the workspace tree under `root`, returning every finding (before
/// allowlisting) and the number of files read.
pub fn scan_tree(root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let mut findings = Vec::new();
    let files = collect_sources(root)?;
    let count = files.len();
    for (rel, path) in files {
        let source = std::fs::read_to_string(&path)?;
        scan_source(&rel, &source, &mut findings);
    }
    Ok((findings, count))
}

/// Parses `allow.toml`: a sequence of `[[allow]]` tables with `rule`,
/// `file`, `line` and `justification` string keys.  The parser accepts
/// exactly that shape and nothing else — an allowlist is a contract
/// document, not a config language.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<[Option<String>; 4]> = None;
    const KEYS: [&str; 4] = ["rule", "file", "line", "justification"];

    fn finish(
        fields: [Option<String>; 4],
        entries: &mut Vec<AllowEntry>,
        at: usize,
    ) -> Result<(), String> {
        let [rule_id, file, line, justification] = fields;
        let entry = AllowEntry {
            rule: rule_id.ok_or(format!("allow entry before line {at}: missing `rule`"))?,
            file: file.ok_or(format!("allow entry before line {at}: missing `file`"))?,
            line: line.ok_or(format!("allow entry before line {at}: missing `line`"))?,
            justification: justification.ok_or(format!(
                "allow entry before line {at}: missing `justification`"
            ))?,
        };
        if rule(&entry.rule).is_none() {
            return Err(format!(
                "allow entry for {}: unknown rule `{}`",
                entry.file, entry.rule
            ));
        }
        if entry.justification.trim().is_empty() {
            return Err(format!(
                "allow entry for {} ({}): empty justification — every \
                 exception must say why it is sound",
                entry.file, entry.rule
            ));
        }
        entries.push(entry);
        Ok(())
    }

    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(fields) = current.take() {
                finish(fields, &mut entries, idx + 1)?;
            }
            current = Some([None, None, None, None]);
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "allow.toml line {}: expected `key = \"value\"`",
                idx + 1
            ));
        };
        let key = key.trim();
        let Some(slot) = KEYS.iter().position(|k| *k == key) else {
            return Err(format!("allow.toml line {}: unknown key `{key}`", idx + 1));
        };
        let value = value.trim();
        let inner = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or(format!(
                "allow.toml line {}: `{key}` must be a double-quoted string",
                idx + 1
            ))?;
        let unescaped = inner.replace("\\\"", "\"").replace("\\\\", "\\");
        let Some(fields) = current.as_mut() else {
            return Err(format!(
                "allow.toml line {}: `{key}` outside an [[allow]] table",
                idx + 1
            ));
        };
        if fields[slot].is_some() {
            return Err(format!("allow.toml line {}: duplicate `{key}`", idx + 1));
        }
        fields[slot] = Some(unescaped);
    }
    if let Some(fields) = current.take() {
        finish(fields, &mut entries, text.lines().count())?;
    }
    Ok(entries)
}

/// Reconciles raw findings with the allowlist: a finding is suppressed by
/// an entry with the same rule id and file whose `line` content equals the
/// finding's trimmed snippet; entries that suppress nothing are stale.
pub fn reconcile(findings: Vec<Finding>, allowlist: &[AllowEntry], files_scanned: usize) -> Report {
    let mut used = vec![false; allowlist.len()];
    let mut report = Report {
        files_scanned,
        ..Report::default()
    };
    for finding in findings {
        let matched = allowlist.iter().enumerate().find(|(_, e)| {
            e.rule == finding.rule && e.file == finding.file && e.line == finding.snippet
        });
        match matched {
            Some((i, _)) => {
                used[i] = true;
                report.allowed.push(finding);
            }
            None => report.violations.push(finding),
        }
    }
    for (entry, used) in allowlist.iter().zip(used) {
        if !used {
            report.stale.push(entry.clone());
        }
    }
    report
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable report for CI: one JSON object, violations first.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"violations\": [");
    for (i, f) in report.violations.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(
            out,
            "{sep}    {{\"rule\": \"{}\", \"name\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"snippet\": \"{}\"}}",
            f.rule,
            rule(f.rule).map_or("?", |r| r.name),
            json_escape(&f.file),
            f.line,
            json_escape(&f.snippet)
        );
    }
    if !report.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"stale_allow\": [");
    for (i, e) in report.stale.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(
            out,
            "{sep}    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": \"{}\"}}",
            json_escape(&e.rule),
            json_escape(&e.file),
            json_escape(&e.line)
        );
    }
    if !report.stale.is_empty() {
        out.push_str("\n  ");
    }
    let _ = write!(
        out,
        "],\n  \"allowed\": {},\n  \"files_scanned\": {},\n  \"clean\": {}\n}}",
        report.allowed.len(),
        report.files_scanned,
        report.clean()
    );
    out
}

/// Human-readable report: `rule file:line` diagnostics with the rule's
/// summary and suggested fix, then stale-allowlist errors.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.violations {
        let r = rule(f.rule).expect("finding carries a known rule");
        let _ = writeln!(
            out,
            "{} [{}] {}:{}\n    {}\n    contract: {}\n    fix: {}",
            f.rule, r.name, f.file, f.line, f.snippet, r.summary, r.fix
        );
    }
    for e in &report.stale {
        let _ = writeln!(
            out,
            "stale-allow [{}] {}: no source line matches \"{}\" — remove \
             the entry (or fix it) so it cannot excuse a future violation",
            e.rule, e.file, e.line
        );
    }
    let _ = writeln!(
        out,
        "stretch-analyze: {} file(s), {} violation(s), {} allowed, {} stale \
         allow entr{}",
        report.files_scanned,
        report.violations.len(),
        report.allowed.len(),
        report.stale.len(),
        if report.stale.len() == 1 { "y" } else { "ies" }
    );
    out
}

/// Runs the full pass: scan `root`, reconcile against the allowlist text
/// (empty string for none).  Returns the report or a configuration error.
pub fn run_check(root: &Path, allow_text: &str) -> Result<Report, String> {
    let allowlist = parse_allowlist(allow_text)?;
    let (findings, files_scanned) =
        scan_tree(root).map_err(|e| format!("cannot scan {}: {e}", root.display()))?;
    Ok(reconcile(findings, &allowlist, files_scanned))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_lookup_roundtrips() {
        for r in RULES {
            assert_eq!(rule(r.id).unwrap().name, r.name);
        }
        assert!(rule("D9").is_none());
    }

    #[test]
    fn comments_and_strings_do_not_flag() {
        let mut out = Vec::new();
        scan_source(
            "crates/core/src/x.rs",
            "// a.partial_cmp(b) in a comment\nlet m = \"HashMap in a string\";\n",
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn partial_cmp_is_flagged_anywhere() {
        let mut out = Vec::new();
        scan_source(
            "crates/metrics/src/y.rs",
            "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n",
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "D1");
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn test_regions_are_skipped_for_production_rules() {
        let src = "\
fn live() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    fn t() { let _ = std::env::var(\"X\"); }\n\
}\n";
        let mut out = Vec::new();
        scan_source("crates/experiments/src/z.rs", src, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn test_regions_still_feed_hygiene_rules() {
        let src = "\
#[cfg(test)]\n\
mod tests {\n\
    fn t(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n\
}\n";
        let mut out = Vec::new();
        scan_source("crates/core/src/z.rs", src, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "D1");
    }

    #[test]
    fn allowlist_requires_justification() {
        let err = parse_allowlist(
            "[[allow]]\nrule = \"D1\"\nfile = \"f.rs\"\nline = \"x\"\njustification = \"  \"\n",
        )
        .unwrap_err();
        assert!(err.contains("justification"), "{err}");
    }

    #[test]
    fn allowlist_rejects_unknown_rules_and_keys() {
        assert!(parse_allowlist("[[allow]]\nrule = \"D7\"\n").is_err());
        assert!(parse_allowlist("[[allow]]\nseverity = \"high\"\n").is_err());
    }

    #[test]
    fn reconcile_matches_by_content_and_reports_stale() {
        let findings = vec![Finding {
            rule: "D1",
            file: "crates/core/src/a.rs".into(),
            line: 10,
            snippet: "a.partial_cmp(b)".into(),
        }];
        let allow = vec![
            AllowEntry {
                rule: "D1".into(),
                file: "crates/core/src/a.rs".into(),
                line: "a.partial_cmp(b)".into(),
                justification: "proven NaN-free".into(),
            },
            AllowEntry {
                rule: "D1".into(),
                file: "crates/core/src/gone.rs".into(),
                line: "no such line".into(),
                justification: "stale".into(),
            },
        ];
        let report = reconcile(findings, &allow, 1);
        assert!(report.violations.is_empty());
        assert_eq!(report.allowed.len(), 1);
        assert_eq!(report.stale.len(), 1);
        assert!(!report.clean());
    }

    #[test]
    fn json_is_well_formed_for_empty_and_nonempty_reports() {
        let empty = Report {
            files_scanned: 3,
            ..Report::default()
        };
        let j = render_json(&empty);
        assert!(j.contains("\"clean\": true"), "{j}");
        let busy = reconcile(
            vec![Finding {
                rule: "D5",
                file: "crates/serve/src/service.rs".into(),
                line: 7,
                snippet: "x.unwrap()".into(),
            }],
            &[],
            1,
        );
        let j = render_json(&busy);
        assert!(
            j.contains("\"rule\": \"D5\"") && j.contains("\"clean\": false"),
            "{j}"
        );
    }
}
