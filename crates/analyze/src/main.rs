//! CLI for the determinism-contract static-analysis pass.
//!
//! ```text
//! cargo run -p stretch-analyze -- check [--json] [--root DIR] [--allow FILE]
//! cargo run -p stretch-analyze -- rules
//! ```
//!
//! `check` exits 0 when the workspace is clean (no violations, no stale
//! allowlist entries), 1 on violations/stale entries, 2 on configuration
//! errors (unreadable root, malformed allowlist).  `--json` emits the
//! machine-readable report on stdout for the CI gate.

use std::path::PathBuf;
use std::process::ExitCode;

use stretch_analyze::{render_json, render_text, run_check, RULES};

fn default_root() -> PathBuf {
    // crates/analyze -> workspace root; compile-time, so the binary needs
    // no environment reads of its own (the analyzer must satisfy its own
    // rules in spirit, even though it excludes itself from the walk).
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: stretch-analyze check [--json] [--root DIR] [--allow FILE]\n\
         \u{20}      stretch-analyze rules"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            for r in RULES {
                println!(
                    "{} [{}]\n    contract: {}\n    fix: {}",
                    r.id, r.name, r.summary, r.fix
                );
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let mut json = false;
            let mut root = default_root();
            let mut allow: Option<PathBuf> = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--json" => json = true,
                    "--root" => match it.next() {
                        Some(dir) => root = PathBuf::from(dir),
                        None => return usage(),
                    },
                    "--allow" => match it.next() {
                        Some(file) => allow = Some(PathBuf::from(file)),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            let allow_path = allow.unwrap_or_else(|| root.join("crates/analyze/allow.toml"));
            let allow_text = match std::fs::read_to_string(&allow_path) {
                Ok(text) => text,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
                Err(e) => {
                    eprintln!("stretch-analyze: cannot read {}: {e}", allow_path.display());
                    return ExitCode::from(2);
                }
            };
            match run_check(&root, &allow_text) {
                Ok(report) => {
                    if json {
                        println!("{}", render_json(&report));
                    } else {
                        print!("{}", render_text(&report));
                    }
                    if report.clean() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(msg) => {
                    eprintln!("stretch-analyze: {msg}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
