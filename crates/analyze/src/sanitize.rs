//! Line sanitizer: blanks out string literals, char literals and comments
//! so the rule patterns only ever match *code*.
//!
//! A panic message that says `"journal unwrap failed"`, a doc comment that
//! explains why `HashMap` is banned, or a lint summary quoting
//! `partial_cmp` must not trip the lint that bans it.  The sanitizer is a
//! small per-character state machine fed one line at a time; block
//! comments and (raw) string literals can span lines, so their state
//! persists across calls on the same [`Sanitizer`].
//!
//! Blanked regions are replaced by spaces (not removed) so byte columns —
//! and in particular brace counts used by the `#[cfg(test)]` region
//! skipper — line up with the original source.

/// Carry-over lexical state between lines of one file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Plain code.
    Code,
    /// Inside `/* … */`, with nesting depth (Rust block comments nest).
    BlockComment(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string literal `r##"…"##` with the given hash count.
    RawStr(u32),
}

/// Per-file sanitizer; create one per file and feed lines in order.
pub struct Sanitizer {
    mode: Mode,
}

impl Default for Sanitizer {
    fn default() -> Self {
        Self::new()
    }
}

impl Sanitizer {
    pub fn new() -> Self {
        Sanitizer { mode: Mode::Code }
    }

    /// Returns `line` with comments and literal contents blanked to
    /// spaces, advancing the cross-line state machine.
    pub fn strip(&mut self, line: &str) -> String {
        let bytes: Vec<char> = line.chars().collect();
        let n = bytes.len();
        let mut out = vec![' '; n];
        let mut i = 0;
        while i < n {
            match self.mode {
                Mode::BlockComment(depth) => {
                    if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                        i += 2;
                        self.mode = if depth > 1 {
                            Mode::BlockComment(depth - 1)
                        } else {
                            Mode::Code
                        };
                    } else if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        i += 2;
                        self.mode = Mode::BlockComment(depth + 1);
                    } else {
                        i += 1;
                    }
                }
                Mode::Str => {
                    if bytes[i] == '\\' {
                        i += 2; // skip the escaped char (possibly past EOL)
                    } else if bytes[i] == '"' {
                        out[i] = '"';
                        self.mode = Mode::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if bytes[i] == '"' && closes_raw(&bytes, i, n, hashes) {
                        out[i] = '"';
                        i += 1 + hashes as usize;
                        self.mode = Mode::Code;
                    } else {
                        i += 1;
                    }
                }
                Mode::Code => {
                    let c = bytes[i];
                    if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
                        // Line comment: rest of the line is gone.
                        break;
                    } else if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        self.mode = Mode::BlockComment(1);
                        i += 2;
                    } else if c == '"' {
                        out[i] = '"';
                        self.mode = Mode::Str;
                        i += 1;
                    } else if (c == 'r' || c == 'b') && is_raw_string_start(&bytes, i, n) {
                        // r"…", r#"…"#, br"…" — count hashes after the r.
                        let mut j = i + 1;
                        if bytes[j] == 'r' {
                            j += 1; // the `br` prefix
                        }
                        let mut hashes = 0u32;
                        while j < n && bytes[j] == '#' {
                            hashes += 1;
                            j += 1;
                        }
                        for o in out.iter_mut().take(j + 1).skip(i) {
                            *o = ' ';
                        }
                        self.mode = Mode::RawStr(hashes);
                        i = j + 1;
                    } else if c == '\'' {
                        // Char literal or lifetime.  `'\n'`, `'a'`, `'}'`
                        // are literals; `'a` followed by a non-quote is a
                        // lifetime and stays visible (it cannot confuse the
                        // patterns, but its `'` must not open a "string").
                        if i + 1 < n && bytes[i + 1] == '\\' {
                            // Escaped char literal: skip to the closing quote.
                            out[i] = '\'';
                            i += 2;
                            while i < n && bytes[i] != '\'' {
                                i += 1;
                            }
                            i += 1;
                        } else if i + 2 < n && bytes[i + 2] == '\'' {
                            out[i] = '\'';
                            i += 3;
                        } else {
                            out[i] = '\'';
                            i += 1;
                        }
                    } else {
                        out[i] = c;
                        i += 1;
                    }
                }
            }
        }
        // A plain string literal cannot span lines without a trailing `\`;
        // if the line ended mid-string with no continuation backslash the
        // state machine already consumed it above (the `\\` arm eats EOL).
        out.into_iter().collect()
    }
}

/// Is `bytes[i]` the start of a raw-string prefix (`r"`, `r#`, `br"`)?
/// Requires the previous char to not be identifier-ish, so `for` or
/// `attr` followed by `"` is not misread.
fn is_raw_string_start(bytes: &[char], i: usize, n: usize) -> bool {
    if i > 0 {
        let prev = bytes[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    if j < n && bytes[i] == 'b' && bytes[j] == 'r' {
        j += 1;
    } else if bytes[i] == 'b' {
        return false;
    }
    while j < n && bytes[j] == '#' {
        j += 1;
    }
    j < n && bytes[j] == '"'
}

/// Does the `"` at `i` close a raw string with `hashes` trailing `#`s?
fn closes_raw(bytes: &[char], i: usize, n: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| i + k < n && bytes[i + k] == '#')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip_all(src: &str) -> Vec<String> {
        let mut s = Sanitizer::new();
        src.lines().map(|l| s.strip(l)).collect()
    }

    #[test]
    fn line_comments_are_blanked() {
        let out = strip_all("let x = 1; // uses partial_cmp\n");
        assert!(out[0].contains("let x = 1;"));
        assert!(!out[0].contains("partial_cmp"));
    }

    #[test]
    fn string_contents_are_blanked_but_quotes_kept() {
        let out = strip_all("panic!(\"HashMap is banned\");\n");
        assert!(!out[0].contains("HashMap"));
        assert!(out[0].contains("panic!(\""));
    }

    #[test]
    fn multiline_block_comments_persist() {
        let out = strip_all("/* start\n HashMap \n end */ let y = 2;\n");
        assert!(!out[1].contains("HashMap"));
        assert!(out[2].contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comments() {
        let out = strip_all("/* a /* b */ HashMap */ code()\n");
        assert!(!out[0].contains("HashMap"));
        assert!(out[0].contains("code()"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let out = strip_all("let s = \"quote \\\" HashMap\"; rest()\n");
        assert!(!out[0].contains("HashMap"));
        assert!(out[0].contains("rest()"));
    }

    #[test]
    fn multiline_string_with_continuation() {
        let out = strip_all("let s = \"first \\\n  HashMap second\"; tail()\n");
        assert!(!out[1].contains("HashMap"));
        assert!(out[1].contains("tail()"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let out = strip_all("let s = r#\"HashMap \"inner\" \"#; after()\n");
        assert!(!out[0].contains("HashMap"));
        assert!(out[0].contains("after()"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let out = strip_all("let c = '\"'; fn f<'a>(x: &'a str) {}\n");
        // The quote char literal must not open a string.
        assert!(out[0].contains("fn f<"));
        let out = strip_all("let b = '{'; let x = 1;\n");
        // Brace char literal is blanked so brace counting stays correct.
        assert!(!out[0].contains('{'));
        assert!(out[0].contains("let x = 1;"));
    }

    #[test]
    fn braces_survive_in_code() {
        let out = strip_all("mod tests { // open\n");
        assert_eq!(out[0].matches('{').count(), 1);
    }
}
