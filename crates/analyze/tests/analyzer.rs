//! End-to-end tests for the determinism-contract pass: each rule flags
//! its bad fixture at the right line, the clean fixture passes, stale
//! allowlist entries fail, and — the dogfood test — the real workspace is
//! clean under the real checked-in allowlist.

use std::path::{Path, PathBuf};

use stretch_analyze::{parse_allowlist, reconcile, run_check, scan_tree, Finding};

fn fixture_root(which: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(which)
}

fn scan(which: &str) -> Vec<Finding> {
    scan_tree(&fixture_root(which))
        .expect("fixture tree scans")
        .0
}

fn has(findings: &[Finding], rule: &str, file: &str, line: usize) -> bool {
    findings
        .iter()
        .any(|f| f.rule == rule && f.file == file && f.line == line)
}

#[test]
fn d1_bad_fixture_flags_partial_cmp() {
    let findings = scan("bad");
    assert!(
        has(&findings, "D1", "crates/core/src/d1_float_ord.rs", 3),
        "{findings:?}"
    );
}

#[test]
fn d2_bad_fixture_flags_hash_collections() {
    let findings = scan("bad");
    for line in [2, 4, 5] {
        assert!(
            has(
                &findings,
                "D2",
                "crates/core/src/d2_hash_collections.rs",
                line
            ),
            "line {line} missing in {findings:?}"
        );
    }
}

#[test]
fn d3_bad_fixture_flags_env_read_outside_tests_only() {
    let findings = scan("bad");
    let d3: Vec<_> = findings.iter().filter(|f| f.rule == "D3").collect();
    // The production read flags; the probe inside #[cfg(test)] does not.
    assert_eq!(d3.len(), 1, "{d3:?}");
    assert!(has(
        &findings,
        "D3",
        "crates/experiments/src/d3_env_read.rs",
        3
    ));
}

#[test]
fn d4_bad_fixture_flags_wall_clock() {
    let findings = scan("bad");
    assert!(
        has(&findings, "D4", "crates/serve/src/d4_wall_clock.rs", 5),
        "{findings:?}"
    );
}

#[test]
fn d5_bad_fixture_flags_ingest_panic_outside_tests_only() {
    let findings = scan("bad");
    let d5: Vec<_> = findings.iter().filter(|f| f.rule == "D5").collect();
    assert_eq!(d5.len(), 1, "{d5:?}");
    assert!(has(&findings, "D5", "crates/serve/src/service.rs", 4));
}

#[test]
fn bad_fixture_fails_check_and_reports_every_rule() {
    let report = run_check(&fixture_root("bad"), "").expect("config is valid");
    assert!(!report.clean());
    let mut rules: Vec<&str> = report.violations.iter().map(|f| f.rule).collect();
    rules.sort();
    rules.dedup();
    assert_eq!(rules, ["D1", "D2", "D3", "D4", "D5"]);
}

#[test]
fn clean_fixture_passes_with_empty_allowlist() {
    let report = run_check(&fixture_root("clean"), "").expect("config is valid");
    assert!(report.clean(), "{:?}", report.violations);
    assert_eq!(report.files_scanned, 1);
    assert!(report.allowed.is_empty());
}

#[test]
fn stale_allow_entry_fails_even_on_a_clean_tree() {
    let allow = r#"
[[allow]]
rule = "D1"
file = "crates/serve/src/clean.rs"
line = "times.sort_by(|a, b| a.partial_cmp(b).unwrap());"
justification = "left over from a line that has since been fixed"
"#;
    let report = run_check(&fixture_root("clean"), allow).expect("config is valid");
    assert!(report.violations.is_empty());
    assert_eq!(report.stale.len(), 1, "{:?}", report.stale);
    assert!(!report.clean(), "stale entries must fail the pass");
}

#[test]
fn allow_entries_suppress_matching_bad_findings() {
    let (findings, files) = scan_tree(&fixture_root("bad")).unwrap();
    let allow = parse_allowlist(
        r#"
[[allow]]
rule = "D4"
file = "crates/serve/src/d4_wall_clock.rs"
line = "Instant::now()"
justification = "fixture exercise of the suppression path"
"#,
    )
    .unwrap();
    let report = reconcile(findings, &allow, files);
    assert_eq!(report.allowed.len(), 1);
    assert!(report.stale.is_empty());
    assert!(report.violations.iter().all(|f| f.rule != "D4"));
}

/// The dogfood gate: the actual workspace, under the actual checked-in
/// allowlist, has zero violations and zero stale entries.  This is the
/// same invocation CI runs via `cargo run -p stretch-analyze -- check`.
#[test]
fn real_workspace_is_clean_under_the_checked_in_allowlist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let allow_text = std::fs::read_to_string(root.join("crates/analyze/allow.toml"))
        .expect("checked-in allowlist exists");
    let report = run_check(&root, &allow_text).expect("allowlist parses");
    assert!(
        report.clean(),
        "violations: {:#?}\nstale: {:#?}",
        report.violations,
        report.stale
    );
    assert!(
        report.files_scanned > 50,
        "walk found the workspace sources"
    );
    // Every allowlist entry is live (reconcile already enforces this via
    // staleness, but assert the count so the suppression volume is visible
    // in the test when it changes).
    assert_eq!(report.allowed.len(), 10);
}
