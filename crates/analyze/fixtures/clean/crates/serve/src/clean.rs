//! Clean fixture: the deterministic spellings of everything the bad
//! fixtures do wrong.  Comments and strings may name the banned patterns
//! freely — e.g. partial_cmp, HashMap, Instant::now — without flagging.
use std::collections::BTreeMap;

pub fn sort_times(times: &mut Vec<f64>) {
    times.sort_by(|a, b| a.total_cmp(b));
}

pub fn completions() -> BTreeMap<usize, f64> {
    BTreeMap::new()
}

pub fn decode(bytes: &[u8]) -> Option<u32> {
    let word: [u8; 4] = bytes.get(0..4)?.try_into().ok()?;
    Some(u32::from_le_bytes(word))
}

pub fn banned_names_in_strings_do_not_flag() -> &'static str {
    "env::var and .unwrap() and SystemTime are fine inside a literal"
}
