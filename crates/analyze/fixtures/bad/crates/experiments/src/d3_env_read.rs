//! D3 fixture: raw environment read outside the sanctioned config files.
pub fn jobs() -> usize {
    std::env::var("STRETCH_JOBS_COUNT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

#[cfg(test)]
mod tests {
    // Test code may probe env behaviour without tripping D3.
    #[test]
    fn probe() {
        let _ = std::env::var("STRETCH_TEST_ONLY");
    }
}
