//! D4 fixture: wall-clock read in a replay-reachable layer.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
