//! D5 fixture: panicking decode on the serve ingestion path.
pub fn decode(bytes: &[u8]) -> u32 {
    // A malformed submission must dead-letter, not panic the scheduler.
    u32::from_le_bytes(bytes[0..4].try_into().unwrap())
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Result<u32, ()> = Ok(7);
        assert_eq!(v.unwrap(), 7);
    }
}
