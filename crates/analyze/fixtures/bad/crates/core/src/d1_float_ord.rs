//! D1 fixture: NaN-tolerant float comparison in a sort key.
pub fn sort_times(times: &mut Vec<f64>) {
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
