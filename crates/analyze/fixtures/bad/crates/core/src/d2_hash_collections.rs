//! D2 fixture: RandomState hash containers in a solver layer.
use std::collections::HashMap;

pub fn completions() -> HashMap<usize, f64> {
    HashMap::new()
}
