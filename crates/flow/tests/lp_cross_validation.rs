//! Cross-validation of the flow back-end against the simplex back-end.
//!
//! The scheduler can solve System (1)/(2) either as an LP (`stretch-lp`) or as
//! a transportation flow (`stretch-flow`); these tests check on random
//! bipartite instances that the two agree on feasibility and on the optimal
//! cost, which is the property the scheduler relies on when it switches
//! back-ends for speed.

use proptest::prelude::*;
use stretch_flow::TransportInstance;
use stretch_lp::problem::{Problem, Relation, Sense};

/// Solves the transportation instance as an explicit LP.
fn solve_as_lp(demands: &[f64], capacities: &[f64], routes: &[(usize, usize, f64)]) -> Option<f64> {
    let mut p = Problem::new(Sense::Minimize);
    let vars: Vec<_> = routes
        .iter()
        .enumerate()
        .map(|(k, _)| p.add_var(format!("x{k}")))
        .collect();
    for (k, &(_, _, cost)) in routes.iter().enumerate() {
        p.set_objective_coeff(vars[k], cost);
    }
    // Each source ships exactly its demand.
    for (j, &d) in demands.iter().enumerate() {
        let coeffs: Vec<_> = routes
            .iter()
            .enumerate()
            .filter(|(_, &(src, _, _))| src == j)
            .map(|(k, _)| (vars[k], 1.0))
            .collect();
        if coeffs.is_empty() {
            if d > 0.0 {
                return None;
            }
            continue;
        }
        p.add_constraint_coeffs(&coeffs, Relation::Eq, d);
    }
    // Each bin receives at most its capacity.
    for (b, &c) in capacities.iter().enumerate() {
        let coeffs: Vec<_> = routes
            .iter()
            .enumerate()
            .filter(|(_, &(_, bin, _))| bin == b)
            .map(|(k, _)| (vars[k], 1.0))
            .collect();
        if coeffs.is_empty() {
            continue;
        }
        p.add_constraint_coeffs(&coeffs, Relation::Le, c);
    }
    p.solve().ok().map(|s| s.objective)
}

fn build_transport(
    demands: &[f64],
    capacities: &[f64],
    routes: &[(usize, usize, f64)],
) -> TransportInstance {
    let mut t = TransportInstance::new(demands.len(), capacities.len());
    for (j, &d) in demands.iter().enumerate() {
        t.set_demand(j, d);
    }
    for (b, &c) in capacities.iter().enumerate() {
        t.set_capacity(b, c);
    }
    for &(j, b, cost) in routes {
        t.add_route(j, b, cost);
    }
    t
}

#[test]
fn agree_on_small_fixed_instance() {
    let demands = [2.0, 3.0];
    let capacities = [4.0, 4.0];
    let routes = [(0, 0, 1.0), (0, 1, 3.0), (1, 0, 2.0), (1, 1, 1.0)];
    let t = build_transport(&demands, &capacities, &routes);
    let flow_cost = t.solve_min_cost().expect("feasible").cost;
    let lp_cost = solve_as_lp(&demands, &capacities, &routes).expect("feasible");
    assert!(
        (flow_cost - lp_cost).abs() < 1e-5,
        "flow {flow_cost} vs lp {lp_cost}"
    );
}

#[test]
fn agree_on_infeasible_instance() {
    let demands = [5.0];
    let capacities = [1.0];
    let routes = [(0, 0, 1.0)];
    let t = build_transport(&demands, &capacities, &routes);
    assert!(t.solve_min_cost().is_none());
    assert!(solve_as_lp(&demands, &capacities, &routes).is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn flow_and_lp_agree_on_random_instances(
        num_sources in 1usize..4,
        num_bins in 1usize..4,
        demand_seed in proptest::collection::vec(0.5f64..4.0, 1..4),
        capacity_seed in proptest::collection::vec(0.5f64..6.0, 1..4),
        cost_seed in proptest::collection::vec(0.0f64..5.0, 1..16),
        density in 0.4f64..1.0,
    ) {
        let demands: Vec<f64> = (0..num_sources)
            .map(|j| demand_seed[j % demand_seed.len()])
            .collect();
        let capacities: Vec<f64> = (0..num_bins)
            .map(|b| capacity_seed[b % capacity_seed.len()])
            .collect();
        let mut routes = Vec::new();
        for j in 0..num_sources {
            for b in 0..num_bins {
                // Deterministic pseudo-random sparsity pattern.
                let key = ((j * 31 + b * 17) % 10) as f64 / 10.0;
                if key <= density {
                    let cost = cost_seed[(j * num_bins + b) % cost_seed.len()];
                    routes.push((j, b, cost));
                }
            }
        }
        let t = build_transport(&demands, &capacities, &routes);
        let flow_result = t.solve_min_cost();
        let lp_result = solve_as_lp(&demands, &capacities, &routes);
        match (flow_result, lp_result) {
            (Some(f), Some(l)) => {
                prop_assert!((f.cost - l).abs() < 1e-4,
                    "flow cost {} vs LP cost {}", f.cost, l);
            }
            (None, None) => {}
            (f, l) => {
                prop_assert!(false, "feasibility disagreement: flow={:?} lp={:?}",
                    f.map(|s| s.cost), l);
            }
        }
    }

    #[test]
    fn max_shippable_never_exceeds_capacity_or_demand(
        demand in 0.1f64..10.0,
        cap0 in 0.1f64..5.0,
        cap1 in 0.1f64..5.0,
    ) {
        let mut t = TransportInstance::new(1, 2);
        t.set_demand(0, demand);
        t.set_capacity(0, cap0);
        t.set_capacity(1, cap1);
        t.add_route(0, 0, 0.0);
        t.add_route(0, 1, 0.0);
        let shipped = t.max_shippable();
        prop_assert!(shipped <= demand + 1e-6);
        prop_assert!(shipped <= cap0 + cap1 + 1e-6);
        prop_assert!((shipped - demand.min(cap0 + cap1)).abs() < 1e-6);
    }
}
