//! `FlowWorkspace` reuse invariants on the parametric min-cost path.
//!
//! The warm-start machinery rests on one contract: a solve that *reuses*
//! scratch (the shared [`FlowWorkspace`], a long-lived backend, a
//! [`ParametricNetwork`] whose capacities were rebound in place) must return
//! exactly what a from-scratch solve returns.  These tests drive repeated
//! `solve_min_cost_with` calls through capacity/cost rebinding sequences —
//! growing, shrinking, zeroing — and compare every step against a fresh
//! network, fresh workspace, fresh backend solve.

use stretch_flow::{
    BackendKind, FlowWorkspace, MinCostBackend, ParametricNetwork, TransportInstance,
};

const DEMANDS: [f64; 3] = [2.0, 3.0, 1.5];
const ROUTES: [(usize, usize); 6] = [(0, 0), (0, 1), (1, 0), (1, 2), (2, 1), (2, 2)];
const COSTS: [f64; 6] = [1.0, 4.0, 2.0, 1.0, 0.5, 3.0];

/// Capacity schedules covering the warm-start regimes: monotone growth (the
/// flow always fits), shrink below the carried flow (forces a reset), zeroed
/// bins (route admissibility flips) and repeats (idempotence).
const SCHEDULES: [[f64; 3]; 7] = [
    [3.0, 2.5, 4.0],
    [4.0, 4.0, 4.0], // growth: previous flow still fits
    [4.0, 4.0, 4.0], // repeat: nothing to re-route
    [2.0, 2.0, 2.5], // shrink below the carried flow
    [0.0, 6.0, 6.0], // bin knocked out entirely
    [1.0, 1.0, 1.0], // infeasible
    [3.0, 2.5, 4.0], // back to the start
];

/// The oracle: an independent `TransportInstance` solved from scratch.
fn reference_solve(caps: &[f64]) -> Option<(f64, Vec<f64>)> {
    let mut t = TransportInstance::new(DEMANDS.len(), caps.len());
    for (j, &d) in DEMANDS.iter().enumerate() {
        t.set_demand(j, d);
    }
    for (b, &c) in caps.iter().enumerate() {
        t.set_capacity(b, c);
    }
    for (&(j, b), &c) in ROUTES.iter().zip(&COSTS) {
        t.add_route(j, b, c);
    }
    let s = t.solve_min_cost()?;
    let shipped: Vec<f64> = (0..DEMANDS.len()).map(|j| s.shipped_from(j)).collect();
    Some((s.cost, shipped))
}

fn run_schedule_with_shared_state(kind: BackendKind) {
    let mut network = ParametricNetwork::new(&DEMANDS, 3, ROUTES.to_vec());
    network.set_route_costs(&COSTS);
    let mut workspace = FlowWorkspace::new();
    let mut backend = kind.instantiate();
    for (step, caps) in SCHEDULES.iter().enumerate() {
        network.set_bin_capacities(caps);
        let shared = network.solve_min_cost_with(1e-6, backend.as_mut(), &mut workspace);
        let fresh = reference_solve(caps);
        match (&shared, &fresh) {
            (Some(r), Some((cost, shipped))) => {
                assert!(
                    (r.cost - cost).abs() < 1e-6 * (1.0 + cost.abs()),
                    "{} step {step}: shared-workspace cost {} vs fresh {}",
                    kind.name(),
                    r.cost,
                    cost
                );
                for (j, &expected) in shipped.iter().enumerate() {
                    let got: f64 = ROUTES
                        .iter()
                        .enumerate()
                        .filter(|(_, &(src, _))| src == j)
                        .map(|(idx, _)| network.flow_on_route(idx))
                        .sum();
                    assert!(
                        (got - expected).abs() < 1e-6,
                        "{} step {step}: job {j} ships {got} vs fresh {expected}",
                        kind.name(),
                    );
                }
            }
            (None, None) => {}
            _ => panic!(
                "{} step {step} (caps {caps:?}): feasibility mismatch, shared={:?} fresh={:?}",
                kind.name(),
                shared.as_ref().map(|r| r.cost),
                fresh.as_ref().map(|(c, _)| *c),
            ),
        }
    }
}

#[test]
fn primal_dual_reuse_matches_fresh_solves() {
    run_schedule_with_shared_state(BackendKind::PrimalDual);
}

#[test]
fn network_simplex_reuse_matches_fresh_solves() {
    run_schedule_with_shared_state(BackendKind::NetworkSimplex);
}

#[test]
fn min_cost_solves_interleave_with_feasibility_probes() {
    // The feasibility probes leave a maximal-but-not-min-cost residual flow
    // in the network; a min-cost solve right after must not inherit it, and
    // a probe right after a min-cost solve must still be correct.
    for kind in BackendKind::ALL {
        let mut network = ParametricNetwork::new(&DEMANDS, 3, ROUTES.to_vec());
        network.set_route_costs(&COSTS);
        let mut workspace = FlowWorkspace::new();
        let mut backend = kind.instantiate();
        let caps = [3.0, 2.5, 4.0];
        network.set_bin_capacities(&caps);
        assert!(network.probe_feasible(1e-6, &mut workspace));
        let r = network
            .solve_min_cost_with(1e-6, backend.as_mut(), &mut workspace)
            .expect("feasible");
        let (expected_cost, _) = reference_solve(&caps).expect("feasible");
        assert!(
            (r.cost - expected_cost).abs() < 1e-6 * (1.0 + expected_cost),
            "{}: cost {} vs fresh {expected_cost} after a probe",
            kind.name(),
            r.cost
        );
        // And the probe after the min-cost solve warm-starts from its flow.
        assert!(network.probe_feasible(1e-6, &mut workspace));
        network.set_bin_capacities(&[1.0, 1.0, 1.0]);
        assert!(!network.probe_feasible(1e-6, &mut workspace));
    }
}

#[test]
fn one_workspace_shared_across_backends_stays_consistent() {
    // A single FlowWorkspace threaded alternately through both backends
    // (the differential harness does exactly this) must not leak state
    // between them.
    let caps = [3.0, 2.5, 4.0];
    let (expected_cost, _) = reference_solve(&caps).expect("feasible");
    let mut workspace = FlowWorkspace::new();
    let mut backends: Vec<Box<dyn MinCostBackend + Send>> =
        BackendKind::ALL.iter().map(|k| k.instantiate()).collect();
    for round in 0..3 {
        for backend in backends.iter_mut() {
            let mut network = ParametricNetwork::new(&DEMANDS, 3, ROUTES.to_vec());
            network.set_route_costs(&COSTS);
            network.set_bin_capacities(&caps);
            let r = network
                .solve_min_cost_with(1e-6, backend.as_mut(), &mut workspace)
                .expect("feasible");
            assert!(
                (r.cost - expected_cost).abs() < 1e-6 * (1.0 + expected_cost),
                "round {round}, {}: cost {} vs {expected_cost}",
                backend.name(),
                r.cost
            );
        }
    }
}
