//! # stretch-flow
//!
//! Network-flow solvers used as the *fast* back-end for the two linear
//! programs of the paper:
//!
//! * the deadline-scheduling feasibility check behind **System (1)** is a
//!   transportation problem — each job must route `W_j` units of work to
//!   `(machine, interval)` bins whose capacity is the amount of work the
//!   machine can perform during the interval; it is feasible iff the maximum
//!   flow saturates every job source ([`maxflow`]);
//! * **System (2)** — spreading work as early as possible under the optimal
//!   max-stretch deadlines — is a minimum-cost maximum-flow where the cost of
//!   a unit of job `j`'s work in interval `t` is the interval midpoint divided
//!   by `W_j` ([`mincost`]).
//!
//! Both solvers work on floating-point capacities with an explicit tolerance,
//! which matches the divisible-load model (work amounts are continuous).
//! A higher-level [`transport`] module exposes the bipartite structure
//! directly so callers never build raw graphs.

pub mod graph;
pub mod maxflow;
pub mod mincost;
pub mod transport;

pub use graph::FlowNetwork;
pub use maxflow::MaxFlowResult;
pub use mincost::MinCostResult;
pub use transport::{TransportInstance, TransportSolution};

/// Tolerance under which a residual capacity is considered exhausted.
pub const FLOW_EPS: f64 = 1e-9;
