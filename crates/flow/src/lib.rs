//! # stretch-flow
//!
//! Network-flow solvers used as the *fast* back-end for the two linear
//! programs of the paper:
//!
//! * the deadline-scheduling feasibility check behind **System (1)** is a
//!   transportation problem — each job must route `W_j` units of work to
//!   `(machine, interval)` bins whose capacity is the amount of work the
//!   machine can perform during the interval; it is feasible iff the maximum
//!   flow saturates every job source ([`maxflow`]);
//! * **System (2)** — spreading work as early as possible under the optimal
//!   max-stretch deadlines — is a minimum-cost maximum-flow where the cost of
//!   a unit of job `j`'s work in interval `t` is the interval midpoint divided
//!   by `W_j` ([`mincost`]).
//!
//! Both solvers work on floating-point capacities with an explicit tolerance,
//! which matches the divisible-load model (work amounts are continuous).
//! A higher-level [`transport`] module exposes the bipartite structure
//! directly so callers never build raw graphs.
//!
//! Two modules serve the hot path of the schedulers:
//!
//! * [`workspace`] provides [`FlowWorkspace`], the preallocated scratch all
//!   `*_with` solver entry points reuse across probes and augmentations;
//! * [`parametric`] provides [`ParametricNetwork`], a bipartite network with
//!   frozen adjacency whose bin/route capacities are rebound in place
//!   between feasibility probes, warm-starting from the previous residual
//!   flow and stopping as soon as the demand is covered.
//!
//! The minimum-cost solve itself is pluggable: [`backend`] defines the
//! [`MinCostBackend`] trait, with the primal-dual kernel as the reference
//! implementation, a warm-startable network simplex ([`simplex`]) as the
//! alternative engine, and a Monge/greedy product-form backend ([`monge`])
//! that solves certified System-(2)-shaped instances by a north-west-corner
//! sweep with zero pivoting (falling back to the simplex otherwise); all are
//! cross-checked by the differential-oracle
//! tests in `stretch-core`.  The simplex carries its spanning-tree basis
//! **across events**: [`remap`] maps the previous solve's basis onto a
//! structurally different network through the stable node keys supplied via
//! [`MinCostBackend::warm_hint`], and a lexicographic tie-break plus
//! canonical basis extraction keep warm-started and cold solves
//! bit-identical.

#![deny(missing_docs)]

#[cfg(feature = "invariant-audit")]
pub mod audit;
pub mod backend;
pub mod fasthash;
pub mod graph;
pub mod maxflow;
pub mod mincost;
pub mod monge;
pub mod parametric;
pub mod remap;
pub mod simplex;
pub mod transport;
pub mod workspace;

pub use backend::{
    BackendKind, MinCostBackend, PrimalDualBackend, KEY_SUPER_SINK, KEY_SUPER_SOURCE,
};
pub use fasthash::FastMap;
pub use graph::FlowNetwork;
pub use maxflow::MaxFlowResult;
pub use mincost::MinCostResult;
pub use monge::MongeBackend;
pub use parametric::ParametricNetwork;
pub use remap::BasisRemap;
pub use simplex::{NetworkSimplexBackend, STATE_LOWER, STATE_TREE, STATE_UPPER};
pub use transport::{TransportArena, TransportInstance, TransportSolution};
pub use workspace::FlowWorkspace;

/// Tolerance under which a residual capacity is considered exhausted.
pub const FLOW_EPS: f64 = 1e-9;
