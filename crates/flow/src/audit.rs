//! Runtime invariant audits (feature `invariant-audit`).
//!
//! Every guarantee this workspace ships is a *determinism* guarantee, and
//! determinism bugs are silent: a conservation leak or a malformed basis
//! does not crash, it just produces different bytes on the next replay.
//! This module is the runtime half of the determinism contract (the static
//! half is the `stretch-analyze` lint pass): compiled only under the
//! `invariant-audit` feature, it verifies
//!
//! * **flow conservation** per node after every augmenting path of the
//!   Dinic kernel ([`check_flow_conservation`]);
//! * **spanning-tree basis well-formedness** after every simplex pivot,
//!   remap and canonicalisation (hooks in `simplex.rs` — tree arc count,
//!   parent/pred/depth consistency, nonbasic arcs at their bounds, zero
//!   reduced cost on tree arcs in both lexicographic channels);
//! * **monge-certification post-conditions** after every greedy seed
//!   (hooks in `monge.rs` — route flows within capacity, every demand
//!   shipped exactly);
//! * **scheduler state-digest consistency** at every serve transition
//!   (hooks in `stretch-serve` — an export/rebuild round-trip must
//!   reproduce the digest).
//!
//! Audits are pure checks: enabling the feature never changes a single
//! output bit, it only turns latent contract violations into immediate
//! panics with a `invariant-audit[...]` prefix.  The dedicated CI leg runs
//! the tier-1 suite with the feature armed.

use crate::graph::FlowNetwork;

/// Aborts with a uniformly-prefixed audit diagnostic.  Every audit failure
/// funnels through here so CI logs can be grepped for one marker.
#[cold]
pub fn fail(context: &str, detail: &str) -> ! {
    panic!("invariant-audit[{context}]: {detail}");
}

/// Verifies per-node flow conservation on `network`: for every node other
/// than `source` and `sink`, inflow equals outflow within a scale-aware
/// tolerance.  Called after every augmenting path of the Dinic kernel
/// (each path moves flow atomically from source to sink, so conservation
/// must hold at every intermediate state).
pub fn check_flow_conservation(network: &FlowNetwork, source: usize, sink: usize) {
    let n = network.num_nodes();
    let mut net = vec![0.0f64; n];
    let mut max_flow_seen = 0.0f64;
    for e in 0..network.num_edges() {
        let fwd = network.edge(2 * e);
        let f = network.flow_on(2 * e);
        max_flow_seen = max_flow_seen.max(f.abs());
        // `edge(2e).to` is the head of the forward edge; its tail is the
        // head of the paired backward edge.
        let from = network.edge(2 * e + 1).to;
        net[from] -= f;
        net[fwd.to] += f;
    }
    let tol = 1e-6 * (1.0 + max_flow_seen);
    for (node, imbalance) in net.iter().enumerate() {
        if node == source || node == sink {
            continue;
        }
        if imbalance.abs() > tol {
            fail(
                "flow-conservation",
                &format!(
                    "node {node} accumulates {imbalance:+.3e} units \
                     (tolerance {tol:.3e}) after an augment"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_network_passes() {
        let mut g = FlowNetwork::new(3);
        let a = g.add_edge(0, 1, 2.0, 0.0);
        let b = g.add_edge(1, 2, 2.0, 0.0);
        g.push(a, 1.5);
        g.push(b, 1.5);
        check_flow_conservation(&g, 0, 2);
    }

    #[test]
    #[should_panic(expected = "invariant-audit[flow-conservation]")]
    fn leaking_node_is_caught() {
        let mut g = FlowNetwork::new(3);
        let a = g.add_edge(0, 1, 2.0, 0.0);
        let _b = g.add_edge(1, 2, 2.0, 0.0);
        g.push(a, 1.5); // 1.5 units enter node 1 and never leave
        check_flow_conservation(&g, 0, 2);
    }
}
