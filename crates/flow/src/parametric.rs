//! Warm-started feasibility probing on a frozen bipartite topology.
//!
//! Between two consecutive milestones of the deadline-scheduling problem the
//! *structure* of the transportation instance is invariant: the same jobs,
//! the same `(site, interval)` bins, the same admissible routes — only the
//! bin capacities move (linearly in the objective `F`).  A
//! [`ParametricNetwork`] exploits that: the residual graph is built **once**,
//! and each probe
//!
//! 1. rebinds the bin capacities in place ([`FlowNetwork::try_set_capacity`]),
//!    keeping the previous probe's flow whenever it still fits (warm start,
//!    the common case when the bisection moves towards larger capacities),
//! 2. resumes max-flow from the residual state with an early-exit target
//!    ([`crate::maxflow::max_flow_with`]): a feasibility probe stops as soon
//!    as the shipped flow covers the total demand minus the tolerance.
//!
//! Compared to rebuilding a [`crate::TransportInstance`] per probe this
//! removes every per-probe allocation and most of the repeated augmentation
//! work, which is where the off-line and on-line schedulers of the paper
//! spend almost all of their time.

use crate::graph::FlowNetwork;
use crate::maxflow::max_flow_with;
use crate::workspace::FlowWorkspace;
use crate::FLOW_EPS;

/// A bipartite transportation network with frozen topology and mutable bin
/// capacities.
///
/// ```
/// use stretch_flow::{FlowWorkspace, ParametricNetwork};
///
/// // Two jobs, two bins, three admissible routes — built once.
/// let mut network = ParametricNetwork::new(&[2.0, 1.0], 2, vec![(0, 0), (0, 1), (1, 1)]);
/// let mut ws = FlowWorkspace::new();
/// // Each probe rebinds capacities in place and resumes from the previous
/// // residual flow.
/// network.set_bin_capacities(&[1.0, 1.0]);
/// assert!(!network.probe_feasible(1e-6, &mut ws)); // 3 units into 2
/// network.set_bin_capacities(&[2.0, 1.5]);
/// assert!(network.probe_feasible(1e-6, &mut ws));
/// ```
#[derive(Clone, Debug)]
pub struct ParametricNetwork {
    num_sources: usize,
    num_bins: usize,
    total_demand: f64,
    demands: Vec<f64>,
    routes: Vec<(usize, usize)>,
    network: FlowNetwork,
    /// Forward-edge handle of each bin -> sink edge.
    bin_edges: Vec<usize>,
    /// Forward-edge handle of each route edge (same order as `routes`).
    route_edges: Vec<usize>,
    /// Forward-edge handle of each source -> job edge (`usize::MAX` for
    /// zero-demand jobs, which get no edge).
    source_edges: Vec<usize>,
    source: usize,
    sink: usize,
    /// Flow shipped by the probes since the last reset.
    shipped: f64,
    /// Degree-count scratch reused by [`ParametricNetwork::rebuild`].
    degree_scratch: Vec<usize>,
}

impl ParametricNetwork {
    /// Builds the network once from fixed demands and admissible routes.
    ///
    /// All bin capacities start at zero; set them before the first probe
    /// with [`ParametricNetwork::set_bin_capacities`].
    pub fn new(demands: &[f64], num_bins: usize, routes: Vec<(usize, usize)>) -> Self {
        let mut p = Self::empty();
        p.rebuild(demands, num_bins, &routes);
        p
    }

    /// An empty network (no sources, no bins, no routes), the starting
    /// point for [`ParametricNetwork::rebuild`]-driven reuse.
    pub fn empty() -> Self {
        ParametricNetwork {
            num_sources: 0,
            num_bins: 0,
            total_demand: 0.0,
            demands: Vec::new(),
            routes: Vec::new(),
            network: FlowNetwork::new(2),
            bin_edges: Vec::new(),
            route_edges: Vec::new(),
            source_edges: Vec::new(),
            source: 0,
            sink: 1,
            shipped: 0.0,
            degree_scratch: Vec::new(),
        }
    }

    /// Rebuilds the network in place for a new shape, **reusing every
    /// buffer** — the per-event primitive of the incremental solver path.
    ///
    /// The result is element-identical to `ParametricNetwork::new(demands,
    /// num_bins, routes.to_vec())` (same edge sequence, same handles, all
    /// flow cleared, bin capacities back to zero), but steady-state
    /// allocation-free: a persistent network spliced from event to event
    /// produces bit-identical probes to a freshly built one.
    ///
    /// ```
    /// use stretch_flow::{FlowWorkspace, ParametricNetwork};
    ///
    /// let mut network = ParametricNetwork::new(&[2.0], 1, vec![(0, 0)]);
    /// let mut ws = FlowWorkspace::new();
    /// network.set_bin_capacities(&[2.0]);
    /// assert!(network.probe_feasible(1e-6, &mut ws));
    /// // Next event: one more job, one more bin — same buffers.
    /// network.rebuild(&[2.0, 1.0], 2, &[(0, 0), (1, 1)]);
    /// network.set_bin_capacities(&[2.0, 1.0]);
    /// assert!(network.probe_feasible(1e-6, &mut ws));
    /// ```
    pub fn rebuild(&mut self, demands: &[f64], num_bins: usize, routes: &[(usize, usize)]) {
        let num_sources = demands.len();
        let source = num_sources + num_bins;
        let sink = source + 1;
        self.network.rebuild(num_sources + num_bins + 2);
        // Exact degree counts: bulk construction without reallocation.
        self.degree_scratch.clear();
        self.degree_scratch.resize(num_sources + num_bins + 2, 0);
        let degrees = &mut self.degree_scratch;
        degrees[source] = num_sources;
        degrees[sink] = num_bins;
        for &(j, b) in routes {
            degrees[j] += 1;
            degrees[num_sources + b] += 1;
        }
        for degree in degrees[..num_sources].iter_mut() {
            *degree += 1; // source edge
        }
        for degree in degrees[num_sources..num_sources + num_bins].iter_mut() {
            *degree += 1; // sink edge
        }
        self.network
            .reserve(num_sources + num_bins + routes.len(), degrees);
        self.source_edges.clear();
        for (j, &d) in demands.iter().enumerate() {
            self.source_edges.push(if d > 0.0 {
                self.network.add_edge(source, j, d, 0.0)
            } else {
                usize::MAX
            });
        }
        self.bin_edges.clear();
        for b in 0..num_bins {
            self.bin_edges
                .push(self.network.add_edge(num_sources + b, sink, 0.0, 0.0));
        }
        self.route_edges.clear();
        for &(j, b) in routes {
            assert!(j < num_sources && b < num_bins, "route out of range");
            // A route can never carry more than its source's demand.
            self.route_edges
                .push(self.network.add_edge(j, num_sources + b, demands[j], 0.0));
        }
        self.num_sources = num_sources;
        self.num_bins = num_bins;
        self.total_demand = demands.iter().sum();
        self.demands.clear();
        self.demands.extend_from_slice(demands);
        self.routes.clear();
        self.routes.extend_from_slice(routes);
        self.source = source;
        self.sink = sink;
        self.shipped = 0.0;
    }

    /// Number of sources (jobs).
    pub fn num_sources(&self) -> usize {
        self.num_sources
    }

    /// Number of bins (site × interval slots).
    pub fn num_bins(&self) -> usize {
        self.num_bins
    }

    /// Total demand over all sources.
    pub fn total_demand(&self) -> f64 {
        self.total_demand
    }

    /// Rebinds every bin capacity in place.
    ///
    /// Keeps the flow of the previous probe when it still fits under the new
    /// capacities (warm start); otherwise clears all flow.
    pub fn set_bin_capacities(&mut self, capacities: &[f64]) {
        assert_eq!(capacities.len(), self.num_bins, "one capacity per bin");
        let mut warm = true;
        for (&edge, &cap) in self.bin_edges.iter().zip(capacities) {
            warm &= self.network.try_set_capacity(edge, cap.max(0.0));
        }
        if !warm {
            self.network.reset();
            self.shipped = 0.0;
        }
    }

    /// Rebinds every bin *and* route capacity in place (warm start rules as
    /// in [`ParametricNetwork::set_bin_capacities`]).
    ///
    /// Mutable route capacities let a caller encode *route admissibility*
    /// parametrically: an inadmissible route simply carries capacity zero,
    /// so crossing a milestone never requires rebuilding adjacency.
    pub fn set_capacities(&mut self, bin_capacities: &[f64], route_capacities: &[f64]) {
        assert_eq!(bin_capacities.len(), self.num_bins, "one capacity per bin");
        assert_eq!(
            route_capacities.len(),
            self.route_edges.len(),
            "one capacity per route"
        );
        let mut warm = true;
        for (&edge, &cap) in self.bin_edges.iter().zip(bin_capacities) {
            warm &= self.network.try_set_capacity(edge, cap.max(0.0));
        }
        for (&edge, &cap) in self.route_edges.iter().zip(route_capacities) {
            warm &= self.network.try_set_capacity(edge, cap.max(0.0));
        }
        if !warm {
            self.network.reset();
            self.shipped = 0.0;
        }
    }

    /// Current capacity of route `idx`.
    pub fn route_capacity(&self, idx: usize) -> f64 {
        self.network.residual(self.route_edges[idx]) + self.flow_on_route(idx)
    }

    /// Rebinds every route cost in place (one cost per route, construction
    /// order).
    ///
    /// Like the capacities, the System-(2) costs are functions of the
    /// objective `F` (interval midpoints move linearly), so re-pricing the
    /// frozen topology *can* replace the per-solve network rebuild.  The
    /// scheduler hot path still rebuilds a [`crate::TransportInstance`] per
    /// System-(2) solve — its cross-event reuse happens one level down, in
    /// the backend's basis memory ([`crate::remap::BasisRemap`]) — so this
    /// API is exercised and guarded by the workspace-reuse invariant tests.
    pub fn set_route_costs(&mut self, costs: &[f64]) {
        assert_eq!(costs.len(), self.route_edges.len(), "one cost per route");
        for (&edge, &cost) in self.route_edges.iter().zip(costs) {
            self.network.set_cost(edge, cost);
        }
    }

    /// Ships every demand at minimum total cost under the current bin/route
    /// capacities and route costs, using `backend`.
    ///
    /// Returns `None` when the instance is infeasible (some demand cannot be
    /// routed within `tol`, same rule as [`ParametricNetwork::probe_feasible`]).
    /// Unlike the feasibility probes, a min-cost solve always **restarts from
    /// zero flow**: the residual flow left by warm-started probes is maximal
    /// but not cost-optimal, and no min-cost backend can resume from it
    /// without violating the min-cost-per-value invariant.  The per-edge
    /// flows are readable through [`ParametricNetwork::flow_on_route`]
    /// afterwards, and subsequent probes warm-start from the solution.
    pub fn solve_min_cost_with(
        &mut self,
        tol: f64,
        backend: &mut dyn crate::backend::MinCostBackend,
        workspace: &mut FlowWorkspace,
    ) -> Option<crate::mincost::MinCostResult> {
        self.network.reset();
        self.shipped = 0.0;
        if self.total_demand <= FLOW_EPS {
            return Some(crate::mincost::MinCostResult {
                flow: 0.0,
                cost: 0.0,
                augmentations: 0,
                phases: 0,
            });
        }
        let slack = tol.max(self.total_demand * tol);
        let target = self.total_demand - slack.min(self.total_demand * 1e-9 + FLOW_EPS);
        let r = backend.solve_up_to(&mut self.network, self.source, self.sink, target, workspace);
        self.shipped = r.flow;
        if r.flow < self.total_demand - slack {
            return None;
        }
        Some(r)
    }

    /// `true` when every source can ship its entire demand under the current
    /// bin capacities, within the same tolerance rule as
    /// [`crate::TransportInstance::is_feasible_with_tolerance`].
    ///
    /// The probe resumes from the residual flow left by the previous probe
    /// and stops as soon as the demand (minus tolerance) is covered.
    pub fn probe_feasible(&mut self, tol: f64, workspace: &mut FlowWorkspace) -> bool {
        if self.total_demand <= FLOW_EPS {
            return true;
        }
        let slack = tol.max(self.total_demand * tol);
        let target = self.total_demand - slack - self.shipped;
        if target > 0.0 {
            let r = max_flow_with(&mut self.network, self.source, self.sink, target, workspace);
            self.shipped += r.value;
        }
        self.shipped >= self.total_demand - slack
    }

    /// Seeds up to `amount` units of flow along route `idx` — through the
    /// source edge, the route edge and the bin edge — clamped to the three
    /// residual capacities, and returns the amount actually seeded.
    ///
    /// This is the **cross-event residual carry-over** primitive: a solver
    /// that remembered where the previous event's (maximum) flow ran can
    /// replay the surviving jobs' shares into a freshly bound network before
    /// the first probe, so the probe only has to route what changed.  Any
    /// seeded flow is conserving and capacity-respecting by construction, so
    /// — like every warm start in this crate — seeding can only change how
    /// much augmentation work a probe does, never its answer.
    ///
    /// Call after the capacities are bound for the probe
    /// ([`ParametricNetwork::set_capacities`]); a later rebind that shrinks
    /// a capacity below the seeded flow resets the network as usual.
    pub fn seed_route_flow(&mut self, idx: usize, amount: f64) -> f64 {
        let (j, b) = self.routes[idx];
        let se = self.source_edges[j];
        if se == usize::MAX {
            return 0.0;
        }
        let re = self.route_edges[idx];
        let be = self.bin_edges[b];
        let f = amount
            .min(self.network.residual(se))
            .min(self.network.residual(re))
            .min(self.network.residual(be));
        if f <= FLOW_EPS {
            return 0.0;
        }
        self.network.push(se, f);
        self.network.push(re, f);
        self.network.push(be, f);
        self.shipped += f;
        f
    }

    /// Flow currently routed through route `idx` (order of construction).
    pub fn flow_on_route(&self, idx: usize) -> f64 {
        self.network.flow_on(self.route_edges[idx])
    }

    /// The routes this network was built with.
    pub fn routes(&self) -> &[(usize, usize)] {
        &self.routes
    }

    /// The source side of a minimum cut, as reachability flags over sources
    /// and bins.
    ///
    /// Only meaningful right after an **unsuccessful** probe (the flow then
    /// is a true maximum flow, so the set of nodes reachable from the
    /// super-source in the residual graph is the minimum cut's source side).
    /// The buffers are cleared and refilled; together with the workspace
    /// (whose BFS scratch is free between probes) they make the cut
    /// extraction allocation-free on the solver hot path.
    pub fn residual_cut(
        &self,
        workspace: &mut FlowWorkspace,
        sources: &mut Vec<bool>,
        bins: &mut Vec<bool>,
    ) {
        sources.clear();
        sources.resize(self.num_sources, false);
        bins.clear();
        bins.resize(self.num_bins, false);
        let n = self.network.num_nodes();
        workspace.ensure_nodes(n);
        let seen = &mut workspace.level[..n];
        for s in seen.iter_mut() {
            *s = 0;
        }
        seen[self.source] = 1;
        workspace.queue.clear();
        workspace.queue.push_back(self.source);
        while let Some(u) = workspace.queue.pop_front() {
            for &eid in self.network.edges_from(u) {
                let e = self.network.edge(eid);
                if e.cap > FLOW_EPS && workspace.level[e.to] == 0 {
                    workspace.level[e.to] = 1;
                    workspace.queue.push_back(e.to);
                }
            }
        }
        for (j, flag) in sources.iter_mut().enumerate() {
            *flag = workspace.level[j] != 0;
        }
        for (b, flag) in bins.iter_mut().enumerate() {
            *flag = workspace.level[self.num_sources + b] != 0;
        }
    }

    /// Demand of one source.
    pub fn demand(&self, source: usize) -> f64 {
        self.demands[source]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransportInstance;

    /// The reference implementation: a from-scratch transportation instance.
    fn reference_feasible(demands: &[f64], caps: &[f64], routes: &[(usize, usize)]) -> bool {
        let mut t = TransportInstance::new(demands.len(), caps.len());
        for (j, &d) in demands.iter().enumerate() {
            t.set_demand(j, d);
        }
        for (b, &c) in caps.iter().enumerate() {
            t.set_capacity(b, c);
        }
        for &(j, b) in routes {
            t.add_route(j, b, 0.0);
        }
        t.is_feasible()
    }

    #[test]
    fn probes_match_from_scratch_feasibility() {
        let demands = [2.0, 3.0, 1.5];
        let routes = vec![(0, 0), (0, 1), (1, 1), (2, 0), (2, 2)];
        let mut p = ParametricNetwork::new(&demands, 3, routes.clone());
        let probes: [[f64; 3]; 5] = [
            [1.0, 1.0, 1.0],
            [4.0, 4.0, 4.0],
            [2.0, 3.5, 1.0],
            [0.5, 5.0, 2.0],
            [6.0, 6.0, 6.0],
        ];
        let mut ws = FlowWorkspace::new();
        for caps in probes {
            p.set_bin_capacities(&caps);
            let fast = p.probe_feasible(1e-6, &mut ws);
            let slow = reference_feasible(&demands, &caps, &routes);
            assert_eq!(fast, slow, "capacities {caps:?}");
        }
    }

    #[test]
    fn warm_start_survives_monotone_capacity_growth() {
        let demands = [4.0];
        let mut p = ParametricNetwork::new(&demands, 1, vec![(0, 0)]);
        let mut ws = FlowWorkspace::new();
        p.set_bin_capacities(&[1.0]);
        assert!(!p.probe_feasible(1e-6, &mut ws));
        // Growing the capacity keeps the shipped unit and only pushes the
        // remainder.
        p.set_bin_capacities(&[4.0]);
        assert!(p.probe_feasible(1e-6, &mut ws));
        assert!((p.flow_on_route(0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_shrink_below_flow_resets_and_stays_correct() {
        let demands = [2.0, 2.0];
        let routes = vec![(0, 0), (1, 0), (1, 1)];
        let mut p = ParametricNetwork::new(&demands, 2, routes.clone());
        let mut ws = FlowWorkspace::new();
        p.set_bin_capacities(&[4.0, 0.0]);
        assert!(p.probe_feasible(1e-6, &mut ws));
        // Bin 0 shrinks below the flow it carries: the probe must reset and
        // re-route through bin 1.
        p.set_bin_capacities(&[2.0, 2.0]);
        assert!(p.probe_feasible(1e-6, &mut ws));
        assert!(reference_feasible(&demands, &[2.0, 2.0], &routes));
        // And an infeasible shrink is detected.
        p.set_bin_capacities(&[1.0, 1.0]);
        assert!(!p.probe_feasible(1e-6, &mut ws));
    }

    #[test]
    fn parametric_min_cost_matches_transport_solve() {
        use crate::backend::{MinCostBackend, PrimalDualBackend};
        use crate::simplex::NetworkSimplexBackend;
        let demands = [2.0, 3.0];
        let routes = vec![(0, 0), (0, 1), (1, 0), (1, 1)];
        let costs = [1.0, 3.0, 2.0, 1.0];
        let caps = [4.0, 4.0];

        let mut t = TransportInstance::new(2, 2);
        for (j, &d) in demands.iter().enumerate() {
            t.set_demand(j, d);
        }
        for (b, &c) in caps.iter().enumerate() {
            t.set_capacity(b, c);
        }
        for (&(j, b), &c) in routes.iter().zip(&costs) {
            t.add_route(j, b, c);
        }
        let reference = t.solve_min_cost().expect("feasible");

        for backend in [
            &mut PrimalDualBackend as &mut dyn MinCostBackend,
            &mut NetworkSimplexBackend::new(),
        ] {
            let mut p = ParametricNetwork::new(&demands, 2, routes.clone());
            p.set_bin_capacities(&caps);
            p.set_route_costs(&costs);
            let mut ws = FlowWorkspace::new();
            let r = p
                .solve_min_cost_with(1e-6, backend, &mut ws)
                .expect("feasible");
            assert!(
                (r.cost - reference.cost).abs() < 1e-6,
                "{}: cost {} vs {}",
                backend.name(),
                r.cost,
                reference.cost
            );
            // Per-route flows conserve each demand.
            for (j, &d) in demands.iter().enumerate() {
                let shipped: f64 = routes
                    .iter()
                    .enumerate()
                    .filter(|(_, &(src, _))| src == j)
                    .map(|(idx, _)| p.flow_on_route(idx))
                    .sum();
                assert!((shipped - d).abs() < 1e-6, "job {j}: {shipped} vs {d}");
            }
        }
    }

    #[test]
    fn infeasible_min_cost_solve_is_detected() {
        use crate::backend::PrimalDualBackend;
        let mut p = ParametricNetwork::new(&[5.0], 1, vec![(0, 0)]);
        p.set_bin_capacities(&[1.0]);
        p.set_route_costs(&[2.0]);
        let mut ws = FlowWorkspace::new();
        assert!(p
            .solve_min_cost_with(1e-6, &mut PrimalDualBackend, &mut ws)
            .is_none());
    }

    #[test]
    fn seeded_flow_is_clamped_and_probes_stay_correct() {
        let demands = [2.0, 2.0];
        let routes = vec![(0, 0), (1, 0), (1, 1)];
        let mut p = ParametricNetwork::new(&demands, 2, routes.clone());
        let mut ws = FlowWorkspace::new();
        p.set_bin_capacities(&[3.0, 1.0]);
        // Seed more than fits anywhere: clamped to the tightest of the
        // source, route and bin residuals.
        let seeded = p.seed_route_flow(0, 10.0);
        assert!((seeded - 2.0).abs() < 1e-9, "clamped to the job demand");
        assert!((p.flow_on_route(0) - 2.0).abs() < 1e-9);
        // Bin 0 has 1.0 residual left; seeding route 1 respects it.
        let seeded = p.seed_route_flow(1, 2.0);
        assert!((seeded - 1.0).abs() < 1e-9, "clamped to the bin residual");
        // The probe completes the flow and agrees with from-scratch.
        let fast = p.probe_feasible(1e-6, &mut ws);
        assert_eq!(fast, reference_feasible(&demands, &[3.0, 1.0], &routes));
        // And an infeasible rebind after seeding is still detected.
        p.set_bin_capacities(&[1.0, 0.5]);
        assert!(!p.probe_feasible(1e-6, &mut ws));
    }

    #[test]
    fn rebuilt_networks_probe_identically_to_fresh_ones() {
        type Shape<'a> = (&'a [f64], usize, &'a [(usize, usize)]);
        let shapes: [Shape; 3] = [
            (&[2.0, 3.0], 2, &[(0, 0), (0, 1), (1, 1)]),
            (&[1.0], 1, &[(0, 0)]),
            (&[2.0, 0.0, 4.0], 3, &[(0, 0), (1, 1), (2, 1), (2, 2)]),
        ];
        let mut reused = ParametricNetwork::empty();
        let mut ws = FlowWorkspace::new();
        for (demands, num_bins, routes) in shapes {
            reused.rebuild(demands, num_bins, routes);
            let mut fresh = ParametricNetwork::new(demands, num_bins, routes.to_vec());
            assert_eq!(reused.num_sources(), fresh.num_sources());
            assert_eq!(reused.num_bins(), fresh.num_bins());
            assert_eq!(
                reused.total_demand().to_bits(),
                fresh.total_demand().to_bits()
            );
            let caps: Vec<f64> = (0..num_bins).map(|b| 1.5 + b as f64).collect();
            reused.set_bin_capacities(&caps);
            fresh.set_bin_capacities(&caps);
            assert_eq!(
                reused.probe_feasible(1e-6, &mut ws),
                fresh.probe_feasible(1e-6, &mut FlowWorkspace::new())
            );
            for idx in 0..routes.len() {
                assert_eq!(
                    reused.flow_on_route(idx).to_bits(),
                    fresh.flow_on_route(idx).to_bits(),
                    "route {idx} flow diverged after rebuild"
                );
            }
        }
    }

    #[test]
    fn zero_demand_jobs_cannot_be_seeded() {
        let mut p = ParametricNetwork::new(&[0.0, 1.0], 1, vec![(0, 0), (1, 0)]);
        p.set_bin_capacities(&[2.0]);
        assert_eq!(p.seed_route_flow(0, 1.0), 0.0);
        assert!((p.seed_route_flow(1, 1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_demand_is_always_feasible() {
        let mut p = ParametricNetwork::new(&[0.0, 0.0], 2, vec![(0, 0)]);
        let mut ws = FlowWorkspace::new();
        p.set_bin_capacities(&[0.0, 0.0]);
        assert!(p.probe_feasible(1e-6, &mut ws));
    }
}
