//! Bipartite transportation problems.
//!
//! This is the shape of both linear systems of the paper once the epochal
//! intervals are fixed:
//!
//! * **sources** are jobs, each with a demand equal to its remaining work;
//! * **bins** are `(machine, interval)` pairs, each with a capacity equal to
//!   the amount of work that machine can perform during that interval;
//! * a **route** `(job, bin)` exists when the machine hosts the job's
//!   databank and the interval lies between the job's release date and its
//!   deadline; its cost is the System-(2) weight (interval midpoint divided
//!   by the job size) or zero for a pure feasibility check.

use crate::graph::FlowNetwork;
use crate::maxflow::max_flow;
use crate::mincost::min_cost_max_flow;
use crate::FLOW_EPS;

/// A bipartite transportation instance.
#[derive(Clone, Debug)]
pub struct TransportInstance {
    demands: Vec<f64>,
    capacities: Vec<f64>,
    routes: Vec<(usize, usize, f64)>,
}

/// Solution of a transportation instance.
#[derive(Clone, Debug)]
pub struct TransportSolution {
    /// `(source, bin, amount)` triples with strictly positive amounts.
    pub allocations: Vec<(usize, usize, f64)>,
    /// Total cost of the allocation.
    pub cost: f64,
    /// Total amount shipped (equals the total demand when feasible).
    pub shipped: f64,
}

impl TransportSolution {
    /// Amount shipped from `source` to `bin` (zero if no allocation).
    pub fn amount(&self, source: usize, bin: usize) -> f64 {
        self.allocations
            .iter()
            .filter(|&&(s, b, _)| s == source && b == bin)
            .map(|&(_, _, a)| a)
            .sum()
    }

    /// Total amount shipped out of one source.
    pub fn shipped_from(&self, source: usize) -> f64 {
        self.allocations
            .iter()
            .filter(|&&(s, _, _)| s == source)
            .map(|&(_, _, a)| a)
            .sum()
    }

    /// Total amount received by one bin.
    pub fn received_by(&self, bin: usize) -> f64 {
        self.allocations
            .iter()
            .filter(|&&(_, b, _)| b == bin)
            .map(|&(_, _, a)| a)
            .sum()
    }
}

impl TransportInstance {
    /// Creates an instance with the given number of sources and bins, all
    /// demands and capacities zero and no routes.
    pub fn new(num_sources: usize, num_bins: usize) -> Self {
        TransportInstance {
            demands: vec![0.0; num_sources],
            capacities: vec![0.0; num_bins],
            routes: Vec::new(),
        }
    }

    /// Number of sources (jobs).
    pub fn num_sources(&self) -> usize {
        self.demands.len()
    }

    /// Number of bins (machine × interval slots).
    pub fn num_bins(&self) -> usize {
        self.capacities.len()
    }

    /// Sets the demand (remaining work) of a source.
    pub fn set_demand(&mut self, source: usize, demand: f64) {
        assert!(demand >= 0.0 && demand.is_finite());
        self.demands[source] = demand;
    }

    /// Sets the capacity of a bin.
    pub fn set_capacity(&mut self, bin: usize, capacity: f64) {
        assert!(capacity >= 0.0 && capacity.is_finite());
        self.capacities[bin] = capacity;
    }

    /// Demand of a source.
    pub fn demand(&self, source: usize) -> f64 {
        self.demands[source]
    }

    /// Capacity of a bin.
    pub fn capacity(&self, bin: usize) -> f64 {
        self.capacities[bin]
    }

    /// Declares that `source` may ship through `bin` at the given unit cost.
    pub fn add_route(&mut self, source: usize, bin: usize, cost: f64) {
        assert!(source < self.num_sources() && bin < self.num_bins());
        assert!(cost.is_finite());
        self.routes.push((source, bin, cost));
    }

    /// Total demand of all sources.
    pub fn total_demand(&self) -> f64 {
        self.demands.iter().sum()
    }

    fn build_network(&self) -> (FlowNetwork, Vec<usize>, usize, usize) {
        let ns = self.num_sources();
        let nb = self.num_bins();
        let source = ns + nb;
        let sink = ns + nb + 1;
        let mut g = FlowNetwork::new(ns + nb + 2);
        for (j, &d) in self.demands.iter().enumerate() {
            if d > 0.0 {
                g.add_edge(source, j, d, 0.0);
            }
        }
        for (b, &c) in self.capacities.iter().enumerate() {
            if c > 0.0 {
                g.add_edge(ns + b, sink, c, 0.0);
            }
        }
        let mut route_edges = Vec::with_capacity(self.routes.len());
        for &(j, b, cost) in &self.routes {
            // A route can never carry more than its source's demand; using the
            // demand as capacity (instead of "infinity") keeps `flow_on`
            // numerically exact.
            let cap = self.demands[j];
            route_edges.push(g.add_edge(j, ns + b, cap, cost));
        }
        (g, route_edges, source, sink)
    }

    /// Maximum total amount that can be shipped (regardless of cost).
    pub fn max_shippable(&self) -> f64 {
        let (mut g, _, s, t) = self.build_network();
        max_flow(&mut g, s, t).value
    }

    /// `true` when every source can ship its entire demand.
    pub fn is_feasible(&self) -> bool {
        self.is_feasible_with_tolerance(1e-6)
    }

    /// Feasibility with an explicit relative/absolute tolerance.
    pub fn is_feasible_with_tolerance(&self, tol: f64) -> bool {
        let demand = self.total_demand();
        if demand <= FLOW_EPS {
            return true;
        }
        let shipped = self.max_shippable();
        shipped >= demand - tol.max(demand * tol)
    }

    /// Ships every demand at minimum total cost.
    ///
    /// Returns `None` when the instance is infeasible (some demand cannot be
    /// routed), in which case callers should treat the corresponding deadline
    /// set as unachievable.
    pub fn solve_min_cost(&self) -> Option<TransportSolution> {
        let (mut g, route_edges, s, t) = self.build_network();
        let r = min_cost_max_flow(&mut g, s, t);
        let demand = self.total_demand();
        let tol = 1e-6_f64.max(demand * 1e-9);
        if r.flow < demand - tol {
            return None;
        }
        let mut allocations = Vec::new();
        for (idx, &(j, b, _)) in self.routes.iter().enumerate() {
            let amount = g.flow_on(route_edges[idx]);
            if amount > FLOW_EPS {
                allocations.push((j, b, amount));
            }
        }
        Some(TransportSolution {
            allocations,
            cost: r.cost,
            shipped: r.flow,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_instance_is_feasible() {
        let t = TransportInstance::new(0, 0);
        assert!(t.is_feasible());
        assert_eq!(t.total_demand(), 0.0);
    }

    #[test]
    fn feasibility_requires_capacity_and_routes() {
        let mut t = TransportInstance::new(1, 1);
        t.set_demand(0, 5.0);
        t.set_capacity(0, 10.0);
        // No route yet -> infeasible.
        assert!(!t.is_feasible());
        t.add_route(0, 0, 0.0);
        assert!(t.is_feasible());
    }

    #[test]
    fn infeasible_when_capacity_too_small() {
        let mut t = TransportInstance::new(2, 1);
        t.set_demand(0, 3.0);
        t.set_demand(1, 3.0);
        t.set_capacity(0, 5.0);
        t.add_route(0, 0, 0.0);
        t.add_route(1, 0, 0.0);
        assert!(!t.is_feasible());
        assert!((t.max_shippable() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn min_cost_prefers_cheap_bins() {
        let mut t = TransportInstance::new(1, 2);
        t.set_demand(0, 4.0);
        t.set_capacity(0, 3.0);
        t.set_capacity(1, 3.0);
        t.add_route(0, 0, 1.0);
        t.add_route(0, 1, 10.0);
        let sol = t.solve_min_cost().expect("feasible");
        assert!((sol.shipped - 4.0).abs() < 1e-6);
        assert!((sol.amount(0, 0) - 3.0).abs() < 1e-6);
        assert!((sol.amount(0, 1) - 1.0).abs() < 1e-6);
        assert!((sol.cost - (3.0 + 10.0)).abs() < 1e-6);
    }

    #[test]
    fn solve_returns_none_when_infeasible() {
        let mut t = TransportInstance::new(1, 1);
        t.set_demand(0, 2.0);
        t.set_capacity(0, 1.0);
        t.add_route(0, 0, 1.0);
        assert!(t.solve_min_cost().is_none());
    }

    #[test]
    fn per_source_and_per_bin_accounting() {
        let mut t = TransportInstance::new(2, 2);
        t.set_demand(0, 1.0);
        t.set_demand(1, 2.0);
        t.set_capacity(0, 2.0);
        t.set_capacity(1, 2.0);
        for j in 0..2 {
            for b in 0..2 {
                t.add_route(j, b, (j + b) as f64);
            }
        }
        let sol = t.solve_min_cost().expect("feasible");
        assert!((sol.shipped_from(0) - 1.0).abs() < 1e-6);
        assert!((sol.shipped_from(1) - 2.0).abs() < 1e-6);
        let received: f64 = (0..2).map(|b| sol.received_by(b)).sum();
        assert!((received - 3.0).abs() < 1e-6);
    }
}
