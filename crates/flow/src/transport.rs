//! Bipartite transportation problems.
//!
//! This is the shape of both linear systems of the paper once the epochal
//! intervals are fixed:
//!
//! * **sources** are jobs, each with a demand equal to its remaining work;
//! * **bins** are `(machine, interval)` pairs, each with a capacity equal to
//!   the amount of work that machine can perform during that interval;
//! * a **route** `(job, bin)` exists when the machine hosts the job's
//!   databank and the interval lies between the job's release date and its
//!   deadline; its cost is the System-(2) weight (interval midpoint divided
//!   by the job size) or zero for a pure feasibility check.

use crate::backend::MinCostBackend;
use crate::graph::FlowNetwork;
use crate::maxflow::max_flow_with;
use crate::workspace::FlowWorkspace;
use crate::FLOW_EPS;

/// A bipartite transportation instance.
#[derive(Clone, Debug)]
pub struct TransportInstance {
    demands: Vec<f64>,
    capacities: Vec<f64>,
    routes: Vec<(usize, usize, f64)>,
    /// Optional stable identities (per source, per bin) handed to the
    /// min-cost backend as a cross-solve warm-start hint.
    stable_keys: Option<(Vec<u64>, Vec<u64>)>,
}

/// Persistent construction scratch for repeated transportation solves: the
/// flow network, the degree counts, the route-edge handles and the key
/// buffer a solve would otherwise allocate afresh.
///
/// An arena makes [`TransportInstance::solve_min_cost_in`] allocation-free
/// at steady state — the incremental event path of the scheduling layer
/// holds one arena per solver and rebuilds the network into it at every
/// event.  The network built into an arena is **element-identical** to the
/// one a from-scratch solve builds (same node count, same
/// [`FlowNetwork::add_edge`] sequence, same capacities and costs), so
/// routing a solve through an arena never changes its result — only where
/// the memory comes from.
///
/// ```
/// use stretch_flow::{FlowWorkspace, PrimalDualBackend, TransportArena, TransportInstance};
///
/// let mut t = TransportInstance::new(1, 2);
/// t.set_demand(0, 4.0);
/// t.set_capacity(0, 3.0);
/// t.set_capacity(1, 3.0);
/// t.add_route(0, 0, 1.0);
/// t.add_route(0, 1, 10.0);
/// let mut arena = TransportArena::default();
/// let mut ws = FlowWorkspace::new();
/// let sol = t
///     .solve_min_cost_in(&mut PrimalDualBackend, &mut ws, &mut arena)
///     .expect("feasible");
/// // Identical to the allocating path, reusable for the next event.
/// assert_eq!(
///     sol.cost.to_bits(),
///     t.solve_min_cost().expect("feasible").cost.to_bits()
/// );
/// ```
#[derive(Clone, Debug, Default)]
pub struct TransportArena {
    network: FlowNetwork,
    degrees: Vec<usize>,
    route_edges: Vec<usize>,
    keys: Vec<u64>,
}

impl TransportArena {
    /// Creates an empty arena; buffers grow on first use and are reused
    /// afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Solution of a transportation instance.
#[derive(Clone, Debug)]
pub struct TransportSolution {
    /// `(source, bin, amount)` triples with strictly positive amounts.
    pub allocations: Vec<(usize, usize, f64)>,
    /// Total cost of the allocation.
    pub cost: f64,
    /// Total amount shipped (equals the total demand when feasible).
    pub shipped: f64,
}

impl TransportSolution {
    /// Amount shipped from `source` to `bin` (zero if no allocation).
    pub fn amount(&self, source: usize, bin: usize) -> f64 {
        self.allocations
            .iter()
            .filter(|&&(s, b, _)| s == source && b == bin)
            .map(|&(_, _, a)| a)
            .sum()
    }

    /// Total amount shipped out of one source.
    pub fn shipped_from(&self, source: usize) -> f64 {
        self.allocations
            .iter()
            .filter(|&&(s, _, _)| s == source)
            .map(|&(_, _, a)| a)
            .sum()
    }

    /// Total amount received by one bin.
    pub fn received_by(&self, bin: usize) -> f64 {
        self.allocations
            .iter()
            .filter(|&&(_, b, _)| b == bin)
            .map(|&(_, _, a)| a)
            .sum()
    }
}

impl TransportInstance {
    /// Creates an instance with the given number of sources and bins, all
    /// demands and capacities zero and no routes.
    pub fn new(num_sources: usize, num_bins: usize) -> Self {
        TransportInstance {
            demands: vec![0.0; num_sources],
            capacities: vec![0.0; num_bins],
            routes: Vec::new(),
            stable_keys: None,
        }
    }

    /// Attaches stable identities to the sources and bins, forwarded to the
    /// min-cost backend as a [`MinCostBackend::warm_hint`] before solving.
    ///
    /// Keys equal across instances exactly when the node denotes the same
    /// logical entity (the scheduler keys jobs by instance-wide job id and
    /// bins by `(site, interval position)`), letting a basis-carrying
    /// backend warm-start across *events* even though every event builds a
    /// fresh instance of a different shape.  The keys also seed the
    /// backend's deterministic tie-break among equal-cost optima, so two
    /// solves of the same instance are bit-identical exactly when they are
    /// given the same keys (warm or cold, with or without carried state) —
    /// a keyed and an unkeyed solve may legitimately return different
    /// optimal vertices.
    pub fn set_stable_keys(&mut self, source_keys: Vec<u64>, bin_keys: Vec<u64>) {
        assert_eq!(source_keys.len(), self.num_sources(), "one key per source");
        assert_eq!(bin_keys.len(), self.num_bins(), "one key per bin");
        self.stable_keys = Some((source_keys, bin_keys));
    }

    /// [`TransportInstance::set_stable_keys`] copying from slices into the
    /// instance's existing key buffers — the allocation-free variant for
    /// callers that [`TransportInstance::reset`] and refill one persistent
    /// instance per event.
    pub fn set_stable_keys_from(&mut self, source_keys: &[u64], bin_keys: &[u64]) {
        assert_eq!(source_keys.len(), self.num_sources(), "one key per source");
        assert_eq!(bin_keys.len(), self.num_bins(), "one key per bin");
        let (sources, bins) = self
            .stable_keys
            .get_or_insert_with(|| (Vec::new(), Vec::new()));
        sources.clear();
        sources.extend_from_slice(source_keys);
        bins.clear();
        bins.extend_from_slice(bin_keys);
    }

    /// Clears the instance down to `num_sources` zero-demand sources and
    /// `num_bins` zero-capacity bins with no routes, **reusing every
    /// buffer** — the in-place counterpart of [`TransportInstance::new`]
    /// for callers refilling one persistent instance per event.
    ///
    /// Stable keys are kept until overwritten: a caller routing solves
    /// through [`TransportInstance::set_stable_keys_from`] must re-set them
    /// after every reset (the scheduling layer does), since the previous
    /// event's keys are meaningless against the new shape.
    pub fn reset(&mut self, num_sources: usize, num_bins: usize) {
        self.demands.clear();
        self.demands.resize(num_sources, 0.0);
        self.capacities.clear();
        self.capacities.resize(num_bins, 0.0);
        self.routes.clear();
    }

    /// Number of sources (jobs).
    pub fn num_sources(&self) -> usize {
        self.demands.len()
    }

    /// Number of bins (machine × interval slots).
    pub fn num_bins(&self) -> usize {
        self.capacities.len()
    }

    /// Sets the demand (remaining work) of a source.
    pub fn set_demand(&mut self, source: usize, demand: f64) {
        assert!(demand >= 0.0 && demand.is_finite());
        self.demands[source] = demand;
    }

    /// Sets the capacity of a bin.
    pub fn set_capacity(&mut self, bin: usize, capacity: f64) {
        assert!(capacity >= 0.0 && capacity.is_finite());
        self.capacities[bin] = capacity;
    }

    /// Demand of a source.
    pub fn demand(&self, source: usize) -> f64 {
        self.demands[source]
    }

    /// Capacity of a bin.
    pub fn capacity(&self, bin: usize) -> f64 {
        self.capacities[bin]
    }

    /// Declares that `source` may ship through `bin` at the given unit cost.
    pub fn add_route(&mut self, source: usize, bin: usize, cost: f64) {
        assert!(source < self.num_sources() && bin < self.num_bins());
        assert!(cost.is_finite());
        self.routes.push((source, bin, cost));
    }

    /// The declared routes, as `(source, bin, cost)` triples.
    pub fn routes(&self) -> &[(usize, usize, f64)] {
        &self.routes
    }

    /// Total demand of all sources.
    pub fn total_demand(&self) -> f64 {
        self.demands.iter().sum()
    }

    fn build_network(&self) -> (FlowNetwork, Vec<usize>, usize, usize) {
        let mut arena = TransportArena::new();
        let (source, sink) = self.build_network_into(&mut arena);
        (arena.network, arena.route_edges, source, sink)
    }

    /// Builds the residual network into `arena`, reusing its buffers.
    ///
    /// The construction sequence is the single source of truth for *every*
    /// solve path (fresh or arena-reusing): exact degree counts, source
    /// edges for positive demands, sink edges for positive capacities, then
    /// one route edge per declared route, capped at its source's demand.
    fn build_network_into(&self, arena: &mut TransportArena) -> (usize, usize) {
        let ns = self.num_sources();
        let nb = self.num_bins();
        let source = ns + nb;
        let sink = ns + nb + 1;
        arena.network.rebuild(ns + nb + 2);
        // Exact degree counts: the network is rebuilt per solve, so bulk
        // construction without adjacency reallocation matters on hot paths.
        arena.degrees.clear();
        arena.degrees.resize(ns + nb + 2, 0);
        let degrees = &mut arena.degrees;
        degrees[source] = ns;
        degrees[sink] = nb;
        for degree in degrees[..ns].iter_mut() {
            *degree += 1; // source edge
        }
        for degree in degrees[ns..ns + nb].iter_mut() {
            *degree += 1; // sink edge
        }
        for &(j, b, _) in &self.routes {
            degrees[j] += 1;
            degrees[ns + b] += 1;
        }
        let g = &mut arena.network;
        g.reserve(ns + nb + self.routes.len(), degrees);
        for (j, &d) in self.demands.iter().enumerate() {
            if d > 0.0 {
                g.add_edge(source, j, d, 0.0);
            }
        }
        for (b, &c) in self.capacities.iter().enumerate() {
            if c > 0.0 {
                g.add_edge(ns + b, sink, c, 0.0);
            }
        }
        arena.route_edges.clear();
        arena.route_edges.reserve(self.routes.len());
        for &(j, b, cost) in &self.routes {
            // A route can never carry more than its source's demand; using the
            // demand as capacity (instead of "infinity") keeps `flow_on`
            // numerically exact.
            let cap = self.demands[j];
            arena.route_edges.push(g.add_edge(j, ns + b, cap, cost));
        }
        (source, sink)
    }

    /// Maximum total amount that can be shipped (regardless of cost).
    pub fn max_shippable(&self) -> f64 {
        let (mut g, _, s, t) = self.build_network();
        max_flow_with(&mut g, s, t, f64::INFINITY, &mut FlowWorkspace::new()).value
    }

    /// `true` when every source can ship its entire demand.
    pub fn is_feasible(&self) -> bool {
        self.is_feasible_with_tolerance(1e-6)
    }

    /// Feasibility with an explicit relative/absolute tolerance.
    pub fn is_feasible_with_tolerance(&self, tol: f64) -> bool {
        self.is_feasible_with(tol, &mut FlowWorkspace::new())
    }

    /// [`TransportInstance::is_feasible_with_tolerance`] reusing caller
    /// scratch, with an early exit as soon as the demand is covered.
    pub fn is_feasible_with(&self, tol: f64, workspace: &mut FlowWorkspace) -> bool {
        let demand = self.total_demand();
        if demand <= FLOW_EPS {
            return true;
        }
        let slack = tol.max(demand * tol);
        let (mut g, _, s, t) = self.build_network();
        let shipped = max_flow_with(&mut g, s, t, demand - slack, workspace).value;
        shipped >= demand - slack
    }

    /// Ships every demand at minimum total cost.
    ///
    /// Returns `None` when the instance is infeasible (some demand cannot be
    /// routed), in which case callers should treat the corresponding deadline
    /// set as unachievable.
    pub fn solve_min_cost(&self) -> Option<TransportSolution> {
        self.solve_min_cost_with(&mut FlowWorkspace::new())
    }

    /// [`TransportInstance::solve_min_cost`] reusing caller scratch.
    ///
    /// When every route cost is zero the min-cost structure is irrelevant
    /// and the (much faster) blocking-flow max-flow kernel is used instead
    /// of successive shortest paths.
    pub fn solve_min_cost_with(&self, workspace: &mut FlowWorkspace) -> Option<TransportSolution> {
        self.solve_min_cost_with_backend(&mut crate::backend::PrimalDualBackend, workspace)
    }

    /// [`TransportInstance::solve_min_cost_with`] on an explicit
    /// [`MinCostBackend`].
    ///
    /// The zero-cost fast path (pure max-flow) applies whatever the backend:
    /// with an all-zero objective every feasible shipment is minimum-cost,
    /// so the choice of min-cost engine is immaterial.
    pub fn solve_min_cost_with_backend(
        &self,
        backend: &mut dyn MinCostBackend,
        workspace: &mut FlowWorkspace,
    ) -> Option<TransportSolution> {
        self.solve_min_cost_in(backend, workspace, &mut TransportArena::new())
    }

    /// [`TransportInstance::solve_min_cost_with_backend`] building the
    /// network into a caller-held [`TransportArena`] instead of fresh
    /// allocations.
    ///
    /// Bit-identical to the allocating path by construction — both build
    /// the network through the same edge sequence and run the same backend
    /// call — but allocation-free at steady state, which is what makes the
    /// incremental event path of the scheduling layer cheaper than a warm
    /// from-scratch solve.
    pub fn solve_min_cost_in(
        &self,
        backend: &mut dyn MinCostBackend,
        workspace: &mut FlowWorkspace,
        arena: &mut TransportArena,
    ) -> Option<TransportSolution> {
        if self.routes.iter().all(|&(_, _, cost)| cost == 0.0) {
            return self.solve_feasible_with(workspace);
        }
        if let Some((source_keys, bin_keys)) = &self.stable_keys {
            // Node order mirrors `build_network_into`: sources, bins, then
            // the two artificial endpoints under their reserved keys.
            arena.keys.clear();
            arena.keys.reserve(source_keys.len() + bin_keys.len() + 2);
            arena.keys.extend_from_slice(source_keys);
            arena.keys.extend_from_slice(bin_keys);
            arena.keys.push(crate::backend::KEY_SUPER_SOURCE);
            arena.keys.push(crate::backend::KEY_SUPER_SINK);
            backend.warm_hint(&arena.keys);
        }
        let (s, t) = self.build_network_into(arena);
        let demand = self.total_demand();
        // Stopping a hair under the demand keeps the min-cost-per-value
        // invariant while skipping the final no-augmenting-path search; the
        // missing sliver is far below every downstream tolerance.
        let target = demand - FLOW_EPS.max(demand * 1e-12);
        let r = backend.solve_up_to(&mut arena.network, s, t, target, workspace);
        let tol = 1e-6_f64.max(demand * 1e-9);
        if r.flow < demand - tol {
            return None;
        }
        Some(self.extract_solution(&arena.network, &arena.route_edges, r.cost, r.flow))
    }

    /// Ships every demand ignoring costs (all-zero objective): a pure
    /// max-flow, solved with Dinic's algorithm.  Returns `None` when the
    /// instance is infeasible.
    pub fn solve_feasible_with(&self, workspace: &mut FlowWorkspace) -> Option<TransportSolution> {
        let (mut g, route_edges, s, t) = self.build_network();
        let demand = self.total_demand();
        let target = demand - FLOW_EPS.max(demand * 1e-12);
        let shipped = max_flow_with(&mut g, s, t, target, workspace).value;
        let tol = 1e-6_f64.max(demand * 1e-9);
        if shipped < demand - tol {
            return None;
        }
        Some(self.extract_solution(&g, &route_edges, 0.0, shipped))
    }

    fn extract_solution(
        &self,
        g: &FlowNetwork,
        route_edges: &[usize],
        cost: f64,
        shipped: f64,
    ) -> TransportSolution {
        let mut allocations = Vec::new();
        for (idx, &(j, b, _)) in self.routes.iter().enumerate() {
            let amount = g.flow_on(route_edges[idx]);
            if amount > FLOW_EPS {
                allocations.push((j, b, amount));
            }
        }
        TransportSolution {
            allocations,
            cost,
            shipped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_instance_is_feasible() {
        let t = TransportInstance::new(0, 0);
        assert!(t.is_feasible());
        assert_eq!(t.total_demand(), 0.0);
    }

    #[test]
    fn feasibility_requires_capacity_and_routes() {
        let mut t = TransportInstance::new(1, 1);
        t.set_demand(0, 5.0);
        t.set_capacity(0, 10.0);
        // No route yet -> infeasible.
        assert!(!t.is_feasible());
        t.add_route(0, 0, 0.0);
        assert!(t.is_feasible());
    }

    #[test]
    fn infeasible_when_capacity_too_small() {
        let mut t = TransportInstance::new(2, 1);
        t.set_demand(0, 3.0);
        t.set_demand(1, 3.0);
        t.set_capacity(0, 5.0);
        t.add_route(0, 0, 0.0);
        t.add_route(1, 0, 0.0);
        assert!(!t.is_feasible());
        assert!((t.max_shippable() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn min_cost_prefers_cheap_bins() {
        let mut t = TransportInstance::new(1, 2);
        t.set_demand(0, 4.0);
        t.set_capacity(0, 3.0);
        t.set_capacity(1, 3.0);
        t.add_route(0, 0, 1.0);
        t.add_route(0, 1, 10.0);
        let sol = t.solve_min_cost().expect("feasible");
        assert!((sol.shipped - 4.0).abs() < 1e-6);
        assert!((sol.amount(0, 0) - 3.0).abs() < 1e-6);
        assert!((sol.amount(0, 1) - 1.0).abs() < 1e-6);
        assert!((sol.cost - (3.0 + 10.0)).abs() < 1e-6);
    }

    #[test]
    fn solve_returns_none_when_infeasible() {
        let mut t = TransportInstance::new(1, 1);
        t.set_demand(0, 2.0);
        t.set_capacity(0, 1.0);
        t.add_route(0, 0, 1.0);
        assert!(t.solve_min_cost().is_none());
    }

    #[test]
    fn arena_solves_match_fresh_solves_bitwise_across_reuse() {
        use crate::backend::PrimalDualBackend;
        let mut arena = TransportArena::new();
        let mut ws = FlowWorkspace::new();
        let mut t = TransportInstance::new(0, 0);
        // Three "events" of different shapes through one persistent
        // instance + arena, each compared bitwise against a fresh solve.
        for event in 0..3usize {
            let (ns, nb) = (1 + event, 2 + event);
            t.reset(ns, nb);
            let mut fresh = TransportInstance::new(ns, nb);
            for j in 0..ns {
                t.set_demand(j, 1.0 + j as f64);
                fresh.set_demand(j, 1.0 + j as f64);
            }
            for b in 0..nb {
                t.set_capacity(b, 2.5);
                fresh.set_capacity(b, 2.5);
            }
            for j in 0..ns {
                for b in 0..nb {
                    let cost = 1.0 + (j * nb + b) as f64;
                    t.add_route(j, b, cost);
                    fresh.add_route(j, b, cost);
                }
            }
            let keys: Vec<u64> = (0..ns as u64).collect();
            let bin_keys: Vec<u64> = (100..100 + nb as u64).collect();
            t.set_stable_keys_from(&keys, &bin_keys);
            fresh.set_stable_keys(keys.clone(), bin_keys.clone());
            let reused = t
                .solve_min_cost_in(&mut PrimalDualBackend, &mut ws, &mut arena)
                .expect("feasible");
            let scratch = fresh
                .solve_min_cost_with_backend(&mut PrimalDualBackend, &mut FlowWorkspace::new())
                .expect("feasible");
            assert_eq!(reused.cost.to_bits(), scratch.cost.to_bits());
            assert_eq!(reused.shipped.to_bits(), scratch.shipped.to_bits());
            assert_eq!(reused.allocations.len(), scratch.allocations.len());
            for (a, b) in reused.allocations.iter().zip(&scratch.allocations) {
                assert_eq!((a.0, a.1), (b.0, b.1));
                assert_eq!(a.2.to_bits(), b.2.to_bits());
            }
        }
    }

    #[test]
    fn reset_clears_quantities_and_routes_but_keeps_buffers_usable() {
        let mut t = TransportInstance::new(2, 2);
        t.set_demand(0, 3.0);
        t.set_capacity(1, 4.0);
        t.add_route(0, 1, 1.0);
        t.reset(1, 3);
        assert_eq!(t.num_sources(), 1);
        assert_eq!(t.num_bins(), 3);
        assert_eq!(t.demand(0), 0.0);
        assert_eq!(t.capacity(1), 0.0);
        assert!(t.routes().is_empty());
    }

    #[test]
    fn per_source_and_per_bin_accounting() {
        let mut t = TransportInstance::new(2, 2);
        t.set_demand(0, 1.0);
        t.set_demand(1, 2.0);
        t.set_capacity(0, 2.0);
        t.set_capacity(1, 2.0);
        for j in 0..2 {
            for b in 0..2 {
                t.add_route(j, b, (j + b) as f64);
            }
        }
        let sol = t.solve_min_cost().expect("feasible");
        assert!((sol.shipped_from(0) - 1.0).abs() < 1e-6);
        assert!((sol.shipped_from(1) - 2.0).abs() < 1e-6);
        let received: f64 = (0..2).map(|b| sol.received_by(b)).sum();
        assert!((received - 3.0).abs() < 1e-6);
    }
}
