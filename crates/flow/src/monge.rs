//! A Monge/greedy product-form backend for the minimum-cost solve.
//!
//! The System-(2) transportation instances have a very particular cost
//! structure: the cost of routing a unit of job `j`'s work into bin `b`
//! (a `(site, interval)` slot) is `midpoint(interval) / size(j)` — a
//! **product form** `a_j · v_b` with `a_j = 1/size(j)` and `v_b` the interval
//! midpoint.  Product-form cost matrices are *Monge arrays*: sorting jobs by
//! decreasing `a_j` and bins by increasing `v_b` gives
//! `c[j][b] + c[j'][b'] ≤ c[j][b'] + c[j'][b]` for `j < j'`, `b < b'`
//! (the quadrangle inequality, since
//! `(a_j − a_{j'})(v_b − v_{b'}) ≤ 0` under opposite sort orders), and on a
//! Monge array the classical north-west-corner greedy — walk the sorted
//! jobs, give each the cheapest remaining capacity — reaches an optimal
//! vertex with **zero simplex pivoting** (Hoffman's greedy/Monge theorem;
//! the same structural shortcut switch-flow scheduling and total-stretch
//! minimization exploit to beat general LP machinery).
//!
//! [`MongeBackend`] packages that shortcut as a third [`MinCostBackend`]:
//!
//! 1. a **structural detector** certifies the instance: bipartite
//!    transportation shape (source → jobs → bins → sink, zero-cost supply
//!    and drain arcs), strictly positive product-form route costs
//!    (`c[j][b] = a_j · v_b`, verified to relative tolerance by ratio
//!    propagation over the route graph), and **per-job interval-contiguous
//!    bins** — each job's admissible bins cover a gap-free run of the
//!    distinct-`v` ladder, which is exactly the System-(2) shape (a job may
//!    use every interval between its release and its deadline, on every
//!    site hosting its databank; equal-midpoint bins on different sites
//!    share one rung of the ladder);
//! 2. a **greedy allocation kernel** solves certified instances in
//!    near-linear time — two sorts and one linear allocation sweep, no
//!    pivoting: jobs in decreasing `a_j` each fill their admissible bins in
//!    increasing `v_b`.  When heterogeneous databank hosting or
//!    deadline-tight ladders strand demand behind bins a job cannot reach,
//!    an augmenting-path repair reshuffles earlier jobs (cost-neutral
//!    within a rung; towards the cheapest reachable rung otherwise) so the
//!    sweep still ships everything shippable;
//! 3. the greedy vertex then **seeds** the embedded network simplex
//!    ([`NetworkSimplexBackend`]'s seeded entry point), whose shared solve
//!    tail verifies optimality (a single pricing sweep finds no violation
//!    when the greedy was right), walks the tied optimal face to the unique
//!    lexicographic vertex, and canonicalises — so a `monge` solve is
//!    **bit-identical** to a `simplex` solve of the same instance *by
//!    construction*: both run the identical start-basis-independent tail,
//!    only the start vertex differs.  The greedy replaces the phase-1 pivot
//!    sequence; it can never change the answer.
//!
//! Uncertified instances (and certified ones whose demand is unshippable —
//! the greedy then declines rather than emit a partial seed) fall through
//! **transparently** to the plain network simplex, warm-start tiers and
//! all, so the backend is always safe to select.  The
//! [`MongeBackend::certified_count`] / [`MongeBackend::uncertified_count`] /
//! [`MongeBackend::greedy_declined_count`] diagnostics let tests prove
//! which path a solve took.

use crate::backend::MinCostBackend;
use crate::graph::FlowNetwork;
use crate::mincost::MinCostResult;
use crate::simplex::NetworkSimplexBackend;
use crate::workspace::FlowWorkspace;
use crate::FLOW_EPS;

/// Relative tolerance of the product-form ratio check and of the
/// distinct-`v` ladder grouping.
///
/// The System-(2) costs are computed as `midpoint / size`, so the
/// propagated ratios agree to a few ulp; `1e-9` is far above numerical
/// noise yet far below any structural violation.
const RATIO_RTOL: f64 = 1e-9;

/// Node has no role yet.
const ROLE_NONE: i8 = 0;
/// Node is a job (demand side).
const ROLE_JOB: i8 = 1;
/// Node is a bin (capacity side).
const ROLE_BIN: i8 = 2;

/// One job → bin route of the extracted transportation view.
#[derive(Clone, Copy, Debug)]
struct Route {
    /// Real arc index in the flow network (forward-edge order).
    arc: usize,
    /// Job node.
    job: usize,
    /// Bin node.
    bin: usize,
    /// Unit cost (strictly positive on certified instances).
    cost: f64,
    /// Arc capacity.
    cap: f64,
}

/// Min-cost max-flow by Monge/greedy allocation with a seeded-simplex
/// verification tail; see the module docs.
///
/// Hold one per solver and feed it every instance, exactly like the
/// simplex: the embedded [`NetworkSimplexBackend`] keeps its scratch and
/// cross-event basis memory alive across solves (the memory serves the
/// fallback path, and every certified solve refreshes it with the canonical
/// basis for the next event).
pub struct MongeBackend {
    /// The embedded simplex: runs the verification tail of certified solves
    /// and the whole of uncertified ones.
    simplex: NetworkSimplexBackend,
    // --- diagnostics ---
    certified_solves: usize,
    uncertified_solves: usize,
    greedy_declined: usize,
    // --- detector / greedy scratch (reused across solves) ---
    role: Vec<i8>,
    supply_edge: Vec<usize>,
    drain_edge: Vec<usize>,
    demand: Vec<f64>,
    capacity: Vec<f64>,
    value: Vec<f64>,
    assigned: Vec<bool>,
    rank: Vec<usize>,
    adj_start: Vec<usize>,
    adj_cursor: Vec<usize>,
    adj_items: Vec<(usize, f64)>,
    queue: Vec<usize>,
    bins: Vec<usize>,
    routes: Vec<Route>,
    span: Vec<(usize, usize)>,
    order: Vec<usize>,
    seed: Vec<f64>,
    total_demand: f64,
    // --- augmenting-repair scratch ---
    by_bin: Vec<usize>,
    bin_span: Vec<(usize, usize)>,
    by_bin_valid: bool,
    bfs_parent: Vec<(usize, usize)>,
    bfs_queue: Vec<usize>,
}

impl Default for MongeBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl MongeBackend {
    /// Creates a backend with empty scratch (grows on first use) and every
    /// warm-start tier of the embedded simplex enabled.
    pub fn new() -> Self {
        Self::with_warm_start(true)
    }

    /// Creates a backend selecting whether the embedded simplex may keep
    /// solver state across solves (see
    /// [`NetworkSimplexBackend::with_warm_start`]).  The greedy kernel
    /// itself is stateless, so the knob only affects the fallback path —
    /// and, per the repository-wide contract, results are bit-identical
    /// either way.
    pub fn with_warm_start(warm_start: bool) -> Self {
        MongeBackend {
            simplex: NetworkSimplexBackend::with_warm_start(warm_start),
            certified_solves: 0,
            uncertified_solves: 0,
            greedy_declined: 0,
            role: Vec::new(),
            supply_edge: Vec::new(),
            drain_edge: Vec::new(),
            demand: Vec::new(),
            capacity: Vec::new(),
            value: Vec::new(),
            assigned: Vec::new(),
            rank: Vec::new(),
            adj_start: Vec::new(),
            adj_cursor: Vec::new(),
            adj_items: Vec::new(),
            queue: Vec::new(),
            bins: Vec::new(),
            routes: Vec::new(),
            span: Vec::new(),
            order: Vec::new(),
            seed: Vec::new(),
            total_demand: 0.0,
            by_bin: Vec::new(),
            bin_span: Vec::new(),
            by_bin_valid: false,
            bfs_parent: Vec::new(),
            bfs_queue: Vec::new(),
        }
    }

    /// Solves that were certified product-form/Monge and took the greedy
    /// seeded path (diagnostic; the differential tests assert on it).
    pub fn certified_count(&self) -> usize {
        self.certified_solves
    }

    /// Solves the detector declined (or the greedy declined — see
    /// [`Self::greedy_declined_count`]), routed through the plain simplex.
    pub fn uncertified_count(&self) -> usize {
        self.uncertified_solves
    }

    /// Certified-structure solves where the greedy sweep stranded demand
    /// and handed the instance to the fallback anyway (a subset of
    /// [`Self::uncertified_count`]).
    pub fn greedy_declined_count(&self) -> usize {
        self.greedy_declined
    }

    /// Pivot-budget blow-ups of the embedded simplex (delegates to
    /// [`NetworkSimplexBackend::fallback_count`]; should stay at zero).
    pub fn pivot_fallback_count(&self) -> usize {
        self.simplex.fallback_count()
    }

    /// Extracts the transportation view of `network` and certifies the
    /// Monge structure (see the module docs); `false` means the instance
    /// must take the fallback path.  Fills the detector scratch: roles,
    /// demands/capacities, product-form factors (`value`), the distinct-`v`
    /// ladder ranks, the routes sorted by `(job, rank, bin)` with per-job
    /// spans, and the greedy job order.
    fn certify(&mut self, network: &FlowNetwork, source: usize, sink: usize) -> bool {
        let n = network.num_nodes();
        let m = network.num_edges();
        self.role.clear();
        self.role.resize(n, ROLE_NONE);
        self.supply_edge.clear();
        self.supply_edge.resize(n, usize::MAX);
        self.drain_edge.clear();
        self.drain_edge.resize(n, usize::MAX);
        self.demand.clear();
        self.demand.resize(n, 0.0);
        self.capacity.clear();
        self.capacity.resize(n, 0.0);
        self.routes.clear();

        // 1. Transportation shape: every arc is a supply arc (source → job,
        //    zero cost), a drain arc (bin → sink, zero cost) or a route
        //    (job → bin, positive cost); no node plays two roles.
        for a in 0..m {
            let fwd = network.edge(2 * a);
            let u = network.edge((2 * a) ^ 1).to;
            let v = fwd.to;
            if u == source {
                if v == source || v == sink || fwd.cost != 0.0 {
                    return false;
                }
                if self.role[v] == ROLE_BIN || self.supply_edge[v] != usize::MAX {
                    return false;
                }
                self.role[v] = ROLE_JOB;
                self.supply_edge[v] = a;
                self.demand[v] = fwd.cap;
            } else if v == sink {
                if u == sink || fwd.cost != 0.0 {
                    return false;
                }
                if self.role[u] == ROLE_JOB || self.drain_edge[u] != usize::MAX {
                    return false;
                }
                self.role[u] = ROLE_BIN;
                self.drain_edge[u] = a;
                self.capacity[u] = fwd.cap;
            } else if v == source || u == sink || u == v {
                return false;
            } else {
                if !(fwd.cost.is_finite() && fwd.cost > 0.0) {
                    return false;
                }
                if self.role[u] == ROLE_BIN || self.role[v] == ROLE_JOB {
                    return false;
                }
                self.role[u] = ROLE_JOB;
                self.role[v] = ROLE_BIN;
                self.routes.push(Route {
                    arc: a,
                    job: u,
                    bin: v,
                    cost: fwd.cost,
                    cap: fwd.cap,
                });
            }
        }
        self.total_demand = self.demand.iter().sum();

        // 2. Product form: propagate `a_j` / `v_b` factors over the route
        //    graph (BFS per connected component, deterministic index order),
        //    then verify every route against its factors.  The adjacency is
        //    CSR over three reused flat vectors — this runs once per
        //    scheduling event, so allocation-free steady state matters.
        self.adj_start.clear();
        self.adj_start.resize(n + 1, 0);
        for r in &self.routes {
            self.adj_start[r.job + 1] += 1;
            self.adj_start[r.bin + 1] += 1;
        }
        for i in 0..n {
            self.adj_start[i + 1] += self.adj_start[i];
        }
        self.adj_cursor.clear();
        self.adj_cursor.extend_from_slice(&self.adj_start[..n]);
        self.adj_items.clear();
        self.adj_items.resize(2 * self.routes.len(), (0, 0.0));
        for r in &self.routes {
            self.adj_items[self.adj_cursor[r.job]] = (r.bin, r.cost);
            self.adj_cursor[r.job] += 1;
            self.adj_items[self.adj_cursor[r.bin]] = (r.job, r.cost);
            self.adj_cursor[r.bin] += 1;
        }
        self.value.clear();
        self.value.resize(n, 0.0);
        self.assigned.clear();
        self.assigned.resize(n, false);
        self.queue.clear();
        for start in 0..n {
            if self.assigned[start] || self.adj_start[start] == self.adj_start[start + 1] {
                continue;
            }
            self.assigned[start] = true;
            self.value[start] = 1.0;
            self.queue.push(start);
            while let Some(x) = self.queue.pop() {
                for i in self.adj_start[x]..self.adj_start[x + 1] {
                    let (y, cost) = self.adj_items[i];
                    if self.assigned[y] {
                        continue;
                    }
                    let val = cost / self.value[x];
                    if !(val.is_finite() && val > 0.0) {
                        return false;
                    }
                    self.assigned[y] = true;
                    self.value[y] = val;
                    self.queue.push(y);
                }
            }
        }
        for r in &self.routes {
            let predicted = self.value[r.job] * self.value[r.bin];
            if (r.cost - predicted).abs() > RATIO_RTOL * r.cost {
                return false;
            }
        }

        // 3. The distinct-`v` ladder: bins sorted by their factor, grouped
        //    to relative tolerance (equal-midpoint bins on different sites
        //    share one rung), rung index stored per bin.
        self.bins.clear();
        self.bins
            .extend((0..n).filter(|&v| self.role[v] == ROLE_BIN && self.assigned[v]));
        {
            let value = &self.value;
            self.bins
                .sort_unstable_by(|&a, &b| value[a].total_cmp(&value[b]).then(a.cmp(&b)));
        }
        self.rank.clear();
        self.rank.resize(n, 0);
        let mut rung = 0usize;
        let mut prev = f64::NAN;
        for &b in &self.bins {
            let v = self.value[b];
            if !prev.is_nan() && v - prev > RATIO_RTOL * v.max(prev) {
                rung += 1;
            }
            self.rank[b] = rung;
            prev = v;
        }

        // 4. Per-job contiguity: routes sorted by (job, rung, bin); each
        //    job's rung sequence must be gap-free.  The sort doubles as the
        //    greedy's cheapest-first allocation order, and the same pass
        //    records each job's route span.
        {
            let rank = &self.rank;
            self.routes.sort_unstable_by(|r1, r2| {
                (r1.job, rank[r1.bin], r1.bin, r1.arc).cmp(&(r2.job, rank[r2.bin], r2.bin, r2.arc))
            });
        }
        self.span.clear();
        self.span.resize(n, (0, 0));
        let mut k = 0;
        while k < self.routes.len() {
            let job = self.routes[k].job;
            let begin = k;
            let mut prev_rank = self.rank[self.routes[k].bin];
            k += 1;
            while k < self.routes.len() && self.routes[k].job == job {
                let rk = self.rank[self.routes[k].bin];
                if rk > prev_rank + 1 {
                    return false; // a hole in the job's interval ladder
                }
                prev_rank = rk;
                k += 1;
            }
            self.span[job] = (begin, k);
        }

        // 5. Greedy job order: decreasing `a_j` (the most expensive-per-unit
        //    jobs claim the cheapest rungs first), ties by node index.
        self.order.clear();
        self.order
            .extend((0..n).filter(|&v| self.role[v] == ROLE_JOB));
        {
            let value = &self.value;
            self.order
                .sort_unstable_by(|&a, &b| value[b].total_cmp(&value[a]).then(a.cmp(&b)));
        }
        true
    }

    /// The north-west-corner greedy sweep over the certified structure:
    /// jobs in decreasing `a_j` fill their admissible bins in increasing
    /// `v_b`, consuming `self.capacity` in place and accumulating the
    /// result into `self.seed` (one flow per real arc).
    ///
    /// When a job exhausts its reachable bins while free capacity survives
    /// elsewhere (heterogeneous databank hosting within a rung, or a
    /// deadline-tight ladder whose prefix earlier jobs consumed), the
    /// augmenting [`Self::repair`] reshuffles earlier jobs to free
    /// reachable capacity.  Returns `false` when demand is stranded even so
    /// — then no assignment ships every demand and the fallback's max-flow
    /// semantics take over.
    fn greedy(&mut self, num_edges: usize) -> bool {
        self.seed.clear();
        self.seed.resize(num_edges, 0.0);
        self.by_bin_valid = false;
        let eps = FLOW_EPS.max(self.total_demand * 1e-12);
        for oi in 0..self.order.len() {
            let j = self.order[oi];
            let mut rem = self.demand[j];
            if rem <= 0.0 {
                continue;
            }
            let (begin, end) = self.span[j];
            for k in begin..end {
                if rem <= 0.0 {
                    break;
                }
                let r = self.routes[k];
                let amt = rem.min(self.capacity[r.bin]).min(r.cap - self.seed[r.arc]);
                if amt > 0.0 {
                    self.seed[r.arc] += amt;
                    self.seed[self.drain_edge[r.bin]] += amt;
                    self.capacity[r.bin] -= amt;
                    rem -= amt;
                }
            }
            if rem > eps {
                self.repair(begin, end, eps, &mut rem);
            }
            if rem > eps {
                return false;
            }
            self.seed[self.supply_edge[j]] = self.demand[j] - rem;
        }
        true
    }

    /// Sorts route indices by bin (`by_bin`) with per-bin spans
    /// (`bin_span`), the occupant lookup of [`Self::repair`].  Built lazily:
    /// most solves never strand, and then never pay for the index.
    fn build_bin_index(&mut self) {
        if self.by_bin_valid {
            return;
        }
        self.by_bin.clear();
        self.by_bin.extend(0..self.routes.len());
        {
            let routes = &self.routes;
            self.by_bin.sort_unstable_by_key(|&ri| (routes[ri].bin, ri));
        }
        self.bin_span.clear();
        self.bin_span.resize(self.capacity.len(), (0, 0));
        let mut k = 0;
        while k < self.by_bin.len() {
            let bin = self.routes[self.by_bin[k]].bin;
            let begin = k;
            while k < self.by_bin.len() && self.routes[self.by_bin[k]].bin == bin {
                k += 1;
            }
            self.bin_span[bin] = (begin, k);
        }
        self.by_bin_valid = true;
    }

    /// Augmenting-path repair for a stranded job (routes
    /// `routes[jr_begin..jr_end]`, its span slice): BFS over alternating
    /// `bin → (occupying job) → bin` moves — an occupant may shift work to
    /// *any* bin of its own ladder — until a bin with free capacity is
    /// reached, then shift along the path and place the stranded demand at
    /// its head.  Repeats until the demand is placed or no augmenting path
    /// remains (then the instance cannot ship every demand at all, and the
    /// fallback's max-flow semantics take over).
    ///
    /// Two flavours of move do the work: **within-rung** shifts (same
    /// interval, different site) are cost-neutral — every bin of a rung
    /// prices identically — and fix pure site-reachability strands;
    /// **cross-rung** shifts displace an earlier job towards dearer rungs,
    /// which some job must occupy anyway once a deadline-tight job needs
    /// the prefix (the System-(2) ladders are deadline-nested).  Both BFS
    /// frontiers expand in ladder order, so displaced work lands on the
    /// cheapest reachable rung first.  The seed stays near-optimal, not
    /// provably optimal — by contract that costs the seeded simplex a few
    /// phase-1 pivots and can never change the answer.
    fn repair(&mut self, jr_begin: usize, jr_end: usize, eps: f64, rem: &mut f64) {
        self.build_bin_index();
        // One augmentation per iteration; each one saturates a route, fills
        // a bin or finishes the demand, so the count is bounded.
        let max_augments = 2 * self.routes.len() + 2;
        for _ in 0..max_augments {
            if *rem <= eps {
                return;
            }
            // BFS from the stranded job's bins towards free capacity.
            self.bfs_parent.clear();
            self.bfs_parent
                .resize(self.capacity.len(), (usize::MAX, usize::MAX));
            self.bfs_queue.clear();
            let mut target = usize::MAX;
            'seedbins: for k in jr_begin..jr_end {
                let r = self.routes[k];
                if r.cap - self.seed[r.arc] <= 0.0 {
                    continue; // the job's own route is saturated
                }
                if self.bfs_parent[r.bin].1 != usize::MAX {
                    continue;
                }
                self.bfs_parent[r.bin] = (usize::MAX, k);
                if self.capacity[r.bin] > 0.0 {
                    target = r.bin; // direct free capacity (route-cap strand)
                    break 'seedbins;
                }
                self.bfs_queue.push(r.bin);
            }
            let mut head = 0;
            'bfs: while target == usize::MAX && head < self.bfs_queue.len() {
                let b = self.bfs_queue[head];
                head += 1;
                let (ob, oe) = self.bin_span[b];
                for i in ob..oe {
                    let out = self.routes[self.by_bin[i]];
                    if self.seed[out.arc] <= 0.0 {
                        continue; // nothing to move out of `b` via this route
                    }
                    let (kb, ke) = self.span[out.job];
                    for rj in kb..ke {
                        let inr = self.routes[rj];
                        if self.bfs_parent[inr.bin].1 != usize::MAX
                            || inr.cap - self.seed[inr.arc] <= 0.0
                        {
                            continue;
                        }
                        self.bfs_parent[inr.bin] = (self.by_bin[i], rj);
                        if self.capacity[inr.bin] > 0.0 {
                            target = inr.bin;
                            break 'bfs;
                        }
                        self.bfs_queue.push(inr.bin);
                    }
                }
            }
            if target == usize::MAX {
                return; // no augmenting path: demand cannot be shipped
            }
            // Bottleneck pass.
            let mut x = rem.min(self.capacity[target]);
            let mut b = target;
            loop {
                let (route_out, route_in) = self.bfs_parent[b];
                let inr = self.routes[route_in];
                x = x.min(inr.cap - self.seed[inr.arc]);
                if route_out == usize::MAX {
                    break; // reached the stranded job's own route
                }
                x = x.min(self.seed[self.routes[route_out].arc]);
                b = self.routes[route_out].bin;
            }
            if x <= 0.0 {
                return; // numerically empty path: treat as stranded
            }
            // Apply pass: shift occupants along the path, place the
            // stranded demand at the head, land the net inflow on `target`.
            self.capacity[target] -= x;
            self.seed[self.drain_edge[target]] += x;
            let mut b = target;
            loop {
                let (route_out, route_in) = self.bfs_parent[b];
                self.seed[self.routes[route_in].arc] += x;
                if route_out == usize::MAX {
                    break;
                }
                self.seed[self.routes[route_out].arc] -= x;
                b = self.routes[route_out].bin;
            }
            *rem -= x;
        }
    }

    /// Monge-certification post-conditions of an accepted greedy seed
    /// (feature `invariant-audit`): every route flow within its capacity,
    /// every job's demand shipped exactly (routes, supply edge and drain
    /// edges all consistent), no bin oversubscribed.  A seed violating any
    /// of these could still solve correctly — the seeded simplex verifies —
    /// but it would break the zero-pivot contract the certification is
    /// supposed to guarantee, so the audit makes it loud.
    #[cfg(feature = "invariant-audit")]
    fn audit_seed(&self) {
        use crate::audit::fail;
        let eps = 1e-6 * (1.0 + self.total_demand);
        let mut total = 0.0;
        let mut drained = vec![0.0f64; self.capacity.len()];
        for (j, &(begin, end)) in self.span.iter().enumerate() {
            let mut shipped = 0.0;
            for k in begin..end {
                let r = self.routes[k];
                let f = self.seed[r.arc];
                if !(-eps..=r.cap + eps).contains(&f) {
                    fail(
                        "monge-seed",
                        &format!(
                            "route {k} (job {j} -> bin {}) carries {f:.6e} of capacity {:.6e}",
                            r.bin, r.cap
                        ),
                    );
                }
                shipped += f;
                drained[r.bin] += f;
            }
            if (shipped - self.demand[j]).abs() > eps {
                fail(
                    "monge-seed",
                    &format!(
                        "job {j} ships {shipped:.6e} of demand {:.6e}",
                        self.demand[j]
                    ),
                );
            }
            if self.supply_edge[j] != usize::MAX
                && (self.seed[self.supply_edge[j]] - shipped).abs() > eps
            {
                fail(
                    "monge-seed",
                    &format!(
                        "job {j} supply edge carries {:.6e} but routes ship {shipped:.6e}",
                        self.seed[self.supply_edge[j]]
                    ),
                );
            }
            total += shipped;
        }
        for (b, &d) in drained.iter().enumerate() {
            if self.drain_edge[b] == usize::MAX {
                continue;
            }
            if d > 0.0 && (self.seed[self.drain_edge[b]] - d).abs() > eps {
                fail(
                    "monge-seed",
                    &format!(
                        "bin {b} drain edge carries {:.6e} but routes deliver {d:.6e}",
                        self.seed[self.drain_edge[b]]
                    ),
                );
            }
            if self.capacity[b] < -eps {
                fail(
                    "monge-seed",
                    &format!("bin {b} oversubscribed by {:.6e}", -self.capacity[b]),
                );
            }
        }
        if (total - self.total_demand).abs() > eps {
            fail(
                "monge-seed",
                &format!(
                    "seed ships {total:.6e} of total demand {:.6e}",
                    self.total_demand
                ),
            );
        }
    }
}

impl MinCostBackend for MongeBackend {
    fn name(&self) -> &'static str {
        "monge"
    }

    fn warm_hint(&mut self, node_keys: &[u64]) {
        // Forwarded wholesale: the keys seed the embedded simplex's
        // lexicographic tie-break (which certified and fallback solves
        // share — the bit-identity contract) and its cross-event basis
        // memory.
        self.simplex.warm_hint(node_keys);
    }

    fn solve_up_to(
        &mut self,
        network: &mut FlowNetwork,
        source: usize,
        sink: usize,
        target: f64,
        workspace: &mut FlowWorkspace,
    ) -> MinCostResult {
        if target > 0.0 && self.certify(network, source, sink) {
            if self.greedy(network.num_edges()) {
                #[cfg(feature = "invariant-audit")]
                self.audit_seed();
                self.certified_solves += 1;
                return self
                    .simplex
                    .solve_up_to_seeded(network, source, sink, target, workspace, &self.seed);
            }
            self.greedy_declined += 1;
        }
        if target > 0.0 {
            self.uncertified_solves += 1;
        }
        self.simplex
            .solve_up_to(network, source, sink, target, workspace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a jobs × bins transportation network (transport.rs layout:
    /// jobs, bins, then source and sink) with explicit route costs.
    fn transport_network(
        demands: &[f64],
        caps: &[f64],
        routes: &[(usize, usize, f64)],
    ) -> (FlowNetwork, usize, usize) {
        let (nj, nb) = (demands.len(), caps.len());
        let s = nj + nb;
        let t = s + 1;
        let mut g = FlowNetwork::new(nj + nb + 2);
        for (j, &d) in demands.iter().enumerate() {
            if d > 0.0 {
                g.add_edge(s, j, d, 0.0);
            }
        }
        for (b, &c) in caps.iter().enumerate() {
            if c > 0.0 {
                g.add_edge(nj + b, t, c, 0.0);
            }
        }
        for &(j, b, cost) in routes {
            g.add_edge(j, nj + b, demands[j], cost);
        }
        (g, s, t)
    }

    /// Solves the same instance on `monge` and on a cold `simplex` and
    /// asserts bit-identical flows, returning the monge backend for
    /// counter assertions.
    fn assert_bitwise_matches_simplex(
        demands: &[f64],
        caps: &[f64],
        routes: &[(usize, usize, f64)],
    ) -> MongeBackend {
        let mut monge = MongeBackend::new();
        let (mut g_m, s, t) = transport_network(demands, caps, routes);
        let r_m = monge.solve_up_to(&mut g_m, s, t, f64::INFINITY, &mut FlowWorkspace::new());
        let mut simplex = NetworkSimplexBackend::new();
        let (mut g_s, s, t) = transport_network(demands, caps, routes);
        let r_s = simplex.solve_up_to(&mut g_s, s, t, f64::INFINITY, &mut FlowWorkspace::new());
        assert_eq!(r_m.flow.to_bits(), r_s.flow.to_bits(), "flow diverged");
        assert_eq!(r_m.cost.to_bits(), r_s.cost.to_bits(), "cost diverged");
        for a in 0..g_m.num_edges() {
            assert_eq!(
                g_m.flow_on(2 * a).to_bits(),
                g_s.flow_on(2 * a).to_bits(),
                "edge {a} flow diverged between monge and simplex"
            );
        }
        monge
    }

    #[test]
    fn product_form_instances_take_the_greedy_path_and_match_simplex_bitwise() {
        // Product costs a_j * v_b with a = [2, 1], v = [1, 3]: certified.
        let monge = assert_bitwise_matches_simplex(
            &[2.0, 3.0],
            &[2.5, 4.0],
            &[(0, 0, 2.0), (0, 1, 6.0), (1, 0, 1.0), (1, 1, 3.0)],
        );
        assert_eq!(monge.certified_count(), 1);
        assert_eq!(monge.uncertified_count(), 0);
        assert_eq!(monge.pivot_fallback_count(), 0);
    }

    #[test]
    fn non_product_costs_route_through_the_fallback_and_still_match() {
        // c[0][1] breaks the product form (6.0 would be product).
        let monge = assert_bitwise_matches_simplex(
            &[2.0, 3.0],
            &[2.5, 4.0],
            &[(0, 0, 2.0), (0, 1, 5.0), (1, 0, 1.0), (1, 1, 3.0)],
        );
        assert_eq!(monge.certified_count(), 0);
        assert_eq!(monge.uncertified_count(), 1);
        assert_eq!(monge.greedy_declined_count(), 0);
    }

    #[test]
    fn interval_holes_are_uncertified() {
        // Job 0 reaches rungs {0, 2} of the three-rung ladder but not rung
        // 1: contiguity fails, fallback fires, results still agree.
        let monge = assert_bitwise_matches_simplex(
            &[2.0, 1.0],
            &[2.0, 2.0, 2.0],
            &[
                (0, 0, 1.0),
                (0, 2, 4.0),
                (1, 0, 0.5),
                (1, 1, 1.0),
                (1, 2, 2.0),
            ],
        );
        assert_eq!(monge.certified_count(), 0);
        assert_eq!(monge.uncertified_count(), 1);
    }

    #[test]
    fn stranded_demand_is_recovered_by_the_augmenting_repair() {
        // Product form (a = [2, 1], v = [1, 2]) and contiguous, but job 1
        // only reaches the cheap bin, which the greedy hands to job 0 first.
        // The sweep strands job 1; the augmenting repair moves job 0 to the
        // dear bin (which some job must occupy anyway), job 1 takes the
        // cheap one, and the solve stays on the certified path.
        let monge = assert_bitwise_matches_simplex(
            &[1.0, 1.0],
            &[1.0, 1.0],
            &[(0, 0, 2.0), (0, 1, 4.0), (1, 0, 1.0)],
        );
        assert_eq!(monge.certified_count(), 1);
        assert_eq!(monge.greedy_declined_count(), 0);
        assert_eq!(monge.uncertified_count(), 0);
    }

    #[test]
    fn infeasible_instances_fall_back_and_ship_the_maximum() {
        // Total capacity below demand: the greedy strands demand, the
        // fallback ships the max flow like any other backend.
        let mut monge = MongeBackend::new();
        let (mut g, s, t) = transport_network(&[2.0, 2.0], &[1.0], &[(0, 0, 2.0), (1, 0, 1.0)]);
        let r = monge.solve_up_to(&mut g, s, t, f64::INFINITY, &mut FlowWorkspace::new());
        assert!((r.flow - 1.0).abs() < 1e-9);
        assert_eq!(monge.greedy_declined_count(), 1);
    }

    #[test]
    fn zero_target_ships_nothing_without_classifying() {
        let mut monge = MongeBackend::new();
        let (mut g, s, t) = transport_network(&[1.0], &[1.0], &[(0, 0, 1.0)]);
        let r = monge.solve_up_to(&mut g, s, t, 0.0, &mut FlowWorkspace::new());
        assert_eq!(r.flow, 0.0);
        assert_eq!(monge.certified_count() + monge.uncertified_count(), 0);
    }

    #[test]
    fn greedy_prefers_cheap_rungs_for_expensive_jobs() {
        // a = [4, 1] (job 0 is 4× as expensive per unit), v = [1, 10]:
        // the optimum gives job 0 the entire cheap bin.  The greedy must
        // find it alone — certified, zero pivot fallbacks.
        let mut monge = MongeBackend::new();
        let (mut g, s, t) = transport_network(
            &[2.0, 2.0],
            &[2.0, 3.0],
            &[(0, 0, 4.0), (0, 1, 40.0), (1, 0, 1.0), (1, 1, 10.0)],
        );
        let r = monge.solve_up_to(&mut g, s, t, f64::INFINITY, &mut FlowWorkspace::new());
        assert_eq!(monge.certified_count(), 1);
        assert!((r.flow - 4.0).abs() < 1e-9);
        // job 0 fully on bin 0 (cost 4·2), job 1 fully on bin 1 (cost 10·2).
        assert!((r.cost - 28.0).abs() < 1e-9);
        let route_base = g.num_edges() - 4;
        assert!((g.flow_on(2 * route_base) - 2.0).abs() < 1e-9);
        assert!((g.flow_on(2 * (route_base + 3)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn shared_backend_stays_bit_identical_across_events() {
        // Two product-form events of different shapes through one shared
        // backend (certified path + remembered basis) versus fresh cold
        // backends: bitwise identical, and both events take the greedy.
        type Event<'a> = (&'a [f64], &'a [f64], &'a [(usize, usize, f64)]);
        let events: [Event; 2] = [
            (
                &[2.0, 3.0],
                &[2.5, 4.0],
                &[(0, 0, 2.0), (0, 1, 6.0), (1, 0, 1.0), (1, 1, 3.0)],
            ),
            (
                &[3.0, 1.0],
                &[2.5, 4.0],
                &[(0, 0, 1.0), (0, 1, 3.0), (1, 1, 1.5)],
            ),
        ];
        let keys: [&[u64]; 2] = [
            &[10, 11, 1 << 32, (1 << 32) | 1, u64::MAX - 1, u64::MAX - 2],
            &[11, 12, 1 << 32, (1 << 32) | 1, u64::MAX - 1, u64::MAX - 2],
        ];
        let mut shared = MongeBackend::new();
        let mut ws = FlowWorkspace::new();
        for (e, (demands, caps, routes)) in events.iter().enumerate() {
            let (mut g_w, s, t) = transport_network(demands, caps, routes);
            shared.warm_hint(keys[e]);
            shared.solve_up_to(&mut g_w, s, t, f64::INFINITY, &mut ws);
            let mut cold = MongeBackend::with_warm_start(false);
            cold.warm_hint(keys[e]);
            let (mut g_c, s, t) = transport_network(demands, caps, routes);
            cold.solve_up_to(&mut g_c, s, t, f64::INFINITY, &mut FlowWorkspace::new());
            for a in 0..g_w.num_edges() {
                assert_eq!(
                    g_w.flow_on(2 * a).to_bits(),
                    g_c.flow_on(2 * a).to_bits(),
                    "event {e}, edge {a}: shared/warm diverged from cold"
                );
            }
        }
        assert_eq!(shared.certified_count(), 2);
        assert_eq!(shared.pivot_fallback_count(), 0);
    }
}
